//! End-to-end tests of the O++-flavoured *surface syntax*: schemas defined
//! from declaration text and queries run from `forall …` statements — the
//! paper's "one integrated language" experience.

use ode::prelude::*;

fn university() -> Database {
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        // §3.1.1's hierarchy, §5's constraint, §6's trigger — as text.
        class person {
            string name;
            int    income = 0;
            constraint: income >= 0;
        }
        class student : public person {
            int stipend = 0;
        }
        class faculty : public person {
            int salary = 0;
            int deptno = 0;
        }
        class teaching_assistant : public student, public faculty { }
        class department {
            string dname;
            int    dno;
        }
        class stockitem {
            string name;
            int    quantity = 100;
            int    reorder_level = 10;
            int    on_order = 0;
            trigger reorder(amount) : quantity <= reorder_level {
                on_order = on_order + $amount;
            }
        }
        "#,
    )
    .unwrap();
    for c in [
        "person",
        "student",
        "faculty",
        "teaching_assistant",
        "department",
        "stockitem",
    ] {
        db.create_cluster(c).unwrap();
    }
    db.transaction(|tx| {
        for d in 0..3i64 {
            tx.pnew(
                "department",
                &[
                    ("dname", Value::from(format!("dept-{d}"))),
                    ("dno", Value::Int(d)),
                ],
            )?;
        }
        tx.pnew(
            "person",
            &[("name", Value::from("pat")), ("income", Value::Int(100))],
        )?;
        tx.pnew(
            "student",
            &[("name", Value::from("sam")), ("income", Value::Int(20))],
        )?;
        for (n, d) in [("fran", 0i64), ("felix", 1), ("fay", 1)] {
            tx.pnew(
                "faculty",
                &[
                    ("name", Value::from(n)),
                    ("income", Value::Int(500)),
                    ("deptno", Value::Int(d)),
                ],
            )?;
        }
        tx.pnew(
            "teaching_assistant",
            &[("name", Value::from("terry")), ("income", Value::Int(30))],
        )?;
        Ok(())
    })
    .unwrap();
    db
}

#[test]
fn single_variable_statement_with_hierarchy() {
    let db = university();
    let mut tx = db.begin();
    // Deep by default: all 6 persons.
    assert_eq!(tx.query("forall p in person").unwrap().len(), 6);
    // `only` restricts to the exact class.
    assert_eq!(tx.query("forall p in only person").unwrap().len(), 1);
    // `for all` spelling, suchthat, ordering.
    let rows = tx
        .query("for all p in person suchthat (income >= 100) by (name) desc")
        .unwrap();
    let names: Vec<String> = rows
        .oids()
        .unwrap()
        .into_iter()
        .map(|o| tx.get(o, "name").unwrap().as_str().unwrap().to_string())
        .collect();
    assert_eq!(names, vec!["pat", "fran", "felix", "fay"]);
    tx.commit().unwrap();
}

#[test]
fn bound_variable_enables_is_tests_and_qualified_fields() {
    let db = university();
    let mut tx = db.begin();
    // `p is student` — the §3.1.1 idiom, directly in the statement.
    let students = tx
        .query("forall p in person suchthat (p is student)")
        .unwrap();
    assert_eq!(students.len(), 2); // sam + terry
                                   // Qualified and bare field references may mix.
    let rich_students = tx
        .query("forall p in person suchthat (p is student && p.income > 25)")
        .unwrap();
    assert_eq!(rich_students.len(), 1); // terry
    tx.commit().unwrap();
}

#[test]
fn join_statement() {
    let db = university();
    let mut tx = db.begin();
    let rows = tx
        .query("forall f in faculty, d in department suchthat (f.deptno == d.dno)")
        .unwrap();
    assert_eq!(rows.vars, vec!["f", "d"]);
    assert_eq!(rows.len(), 4); // fran→0, felix→1, fay→1, terry→0
    for m in rows.maps() {
        let f = m["f"];
        let d = m["d"];
        assert_eq!(tx.get(f, "deptno").unwrap(), tx.get(d, "dno").unwrap());
    }
    tx.commit().unwrap();
}

#[test]
fn query_run_callback_form() {
    let db = university();
    let mut tx = db.begin();
    let mut total = 0i64;
    let n = tx
        .query_run("forall p in person suchthat (income > 0)", |tx, m| {
            total += tx.get(m["p"], "income")?.as_int()?;
            Ok(())
        })
        .unwrap();
    assert_eq!(n, 6);
    assert_eq!(total, 100 + 20 + 500 * 3 + 30);
    tx.commit().unwrap();
}

#[test]
fn statement_queries_use_indexes() {
    let db = university();
    db.create_index("person", "income").unwrap();
    let mut tx = db.begin();
    // Qualified conjunct over the indexed field plans through the index
    // (equivalence checked against the unindexed answer).
    let via_stmt = tx
        .query("forall p in person suchthat (p.income == 500)")
        .unwrap()
        .len();
    assert_eq!(via_stmt, 3);
    let bare = tx
        .query("forall p in person suchthat (income == 500)")
        .unwrap()
        .len();
    assert_eq!(bare, 3);
    tx.commit().unwrap();
}

#[test]
fn text_defined_triggers_fire() {
    let db = university();
    let oid = db
        .transaction(|tx| {
            let oid = tx.query("forall s in stockitem")?.oids()?.first().copied();
            let oid = match oid {
                Some(o) => o,
                None => tx.pnew("stockitem", &[("name", Value::from("dram"))])?,
            };
            tx.activate_trigger(oid, "reorder", vec![Value::Int(250)])?;
            Ok(oid)
        })
        .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "on_order")?, Value::Int(250));
        Ok(())
    })
    .unwrap();
}

#[test]
fn text_defined_constraints_enforce() {
    let db = university();
    let err = db
        .transaction(|tx| {
            tx.pnew(
                "person",
                &[("name", Value::from("broke")), ("income", Value::Int(-1))],
            )
        })
        .unwrap_err();
    assert!(matches!(
        err,
        ode::core::OdeError::ConstraintViolation { .. }
    ));
}

#[test]
fn text_schema_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("ode-opp-reopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        db.define_from_source("class doc { string title; int rev = 0; constraint: rev >= 0; }")
            .unwrap();
        db.create_cluster("doc").unwrap();
        db.transaction(|tx| tx.pnew("doc", &[("title", Value::from("spec"))]))
            .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let mut tx = db.begin();
        assert_eq!(tx.query("forall d in doc").unwrap().len(), 1);
        tx.commit().unwrap();
        // Constraint still enforced after catalog reload.
        assert!(db
            .transaction(|tx| tx.pnew("doc", &[("rev", Value::Int(-1))]))
            .is_err());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_statements_report_errors() {
    let db = university();
    let mut tx = db.begin();
    assert!(tx.query("forall p in ghost_class").is_err());
    assert!(tx
        .query("forall p in person by (name), q in person")
        .is_err());
    assert!(
        tx.query("forall a in person, b in person by (name)")
            .is_err(),
        "by on joins is rejected"
    );
    assert!(
        tx.query("forall a in only person, b in person suchthat (a.income == b.income)")
            .is_err(),
        "only on join variables is rejected"
    );
    tx.commit().unwrap();
}
