//! Counter-delta tests for the engine-wide telemetry layer: plan choice
//! (index probe vs deep extent scan), fixpoint round accounting, abort
//! cause taxonomy, trace-span ordering, and the snapshot/delta/JSON API.

use std::sync::{Arc, Mutex};

use ode::core::{TracePhase, TraceScope};
use ode::model::SetValue;
use ode::prelude::*;

fn parts_db() -> Database {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("part")
            .field("pname", Type::Str)
            .field_default("weight", Type::Int, 0),
    )
    .unwrap();
    db.create_cluster("part").unwrap();
    db.transaction(|tx| {
        for i in 0..50i64 {
            tx.pnew(
                "part",
                &[
                    ("pname", Value::from(format!("p{i}").as_str())),
                    ("weight", Value::Int(i)),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
    db
}

#[test]
fn indexed_selection_does_no_deep_extent_scan() {
    let db = parts_db();
    db.create_index("part", "weight").unwrap();

    let before = db.telemetry();
    let mut tx = db.begin();
    let mut prof = QueryProfile::default();
    let hits = tx
        .forall("part")
        .unwrap()
        .suchthat("weight == 7")
        .unwrap()
        .collect_oids_profiled(&mut prof)
        .unwrap();
    tx.commit().unwrap();
    let d = db.telemetry().delta(&before);

    assert_eq!(hits.len(), 1);
    assert_eq!(d.query.deep_extent_scans, 0, "index probe must not scan");
    assert!(d.query.index_probes >= 1);
    // The probe touches only the matching object, not the whole extent.
    assert_eq!(d.query.objects_scanned, 1);
    assert!(matches!(
        prof.strategy,
        ode::core::PlanStrategy::IndexProbe { .. }
    ));

    // The same predicate on an unindexed field falls back to a deep scan.
    let before = db.telemetry();
    let mut tx = db.begin();
    let hits = tx
        .forall("part")
        .unwrap()
        .suchthat("pname == \"p7\"")
        .unwrap()
        .collect_oids()
        .unwrap();
    tx.commit().unwrap();
    let d = db.telemetry().delta(&before);

    assert_eq!(hits.len(), 1);
    assert!(d.query.deep_extent_scans >= 1);
    assert_eq!(d.query.objects_scanned, 50, "scan visits the whole extent");
    assert_eq!(d.query.predicate_evals, 50);
}

#[test]
fn fixpoint_query_reports_rounds() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("usage")
            .field("parent", Type::Str)
            .field("child", Type::Str),
    )
    .unwrap();
    db.define_class(ClassBuilder::new("reached").field("part", Type::Str))
        .unwrap();
    db.create_cluster("usage").unwrap();
    db.create_cluster("reached").unwrap();
    db.transaction(|tx| {
        for (p, c) in [("engine", "block"), ("block", "piston"), ("piston", "ring")] {
            tx.pnew(
                "usage",
                &[("parent", Value::from(p)), ("child", Value::from(c))],
            )?;
        }
        Ok(())
    })
    .unwrap();

    let before = db.telemetry();
    let mut prof = QueryProfile::default();
    db.transaction(|tx| {
        tx.pnew("reached", &[("part", Value::from("engine"))])?;
        tx.forall("reached")?
            .fixpoint()
            .run_profiled(&mut prof, |tx, r| {
                let part = tx.get(r, "part")?.as_str()?.to_string();
                let children: Vec<String> = tx
                    .forall("usage")?
                    .suchthat(&format!("parent == \"{part}\""))?
                    .collect_values("child")?
                    .into_iter()
                    .map(|v| v.as_str().unwrap().to_string())
                    .collect();
                for c in children {
                    tx.pnew("reached", &[("part", Value::from(c.as_str()))])?;
                }
                Ok(())
            })?;
        Ok(())
    })
    .unwrap();
    let d = db.telemetry().delta(&before);

    // engine → block → piston → ring: the chain forces one new object per
    // round, so the iteration needs several rounds to drain.
    assert!(
        prof.fixpoint_rounds >= 2,
        "rounds: {}",
        prof.fixpoint_rounds
    );
    assert_eq!(
        prof.fixpoint_rounds as usize,
        prof.fixpoint_new_by_round.len()
    );
    assert_eq!(prof.fixpoint_new_by_round.iter().sum::<u64>(), 4);
    assert!(d.query.fixpoint_rounds >= 2);
    assert_eq!(d.query.fixpoint_new_objects, 4);
}

#[test]
fn abort_causes_are_split_by_kind() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("stockitem")
            .field_default("quantity", Type::Int, 0)
            .constraint("quantity >= 0"),
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
    let oid = db
        .transaction(|tx| tx.pnew("stockitem", &[("quantity", Value::Int(5))]))
        .unwrap();

    let before = db.telemetry();

    // Constraint violation rolls the transaction back (§5).
    let mut tx = db.begin();
    let err = tx.set(oid, "quantity", -1i64);
    assert!(err.is_err());
    drop(tx);

    // Explicit abort is counted under the other cause.
    let mut tx = db.begin();
    tx.set(oid, "quantity", 9i64).unwrap();
    tx.abort();

    let d = db.telemetry().delta(&before);
    assert_eq!(d.txn.aborted_constraint, 1);
    assert_eq!(d.txn.aborted_other, 1);
    assert_eq!(d.txn.committed, 0);
    assert_eq!(d.txn.begun, 2);

    // The object is untouched by either rollback.
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "quantity")?.as_int()?, 5);
        Ok(())
    })
    .unwrap();
}

#[test]
fn trace_spans_nest_txn_query_and_trigger() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("stockitem")
            .field_default("quantity", Type::Int, 100)
            .field_default("on_order", Type::Int, 0)
            .trigger("reorder", &[], false, "quantity < 10")
            .action_assign("on_order", "on_order + 25"),
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
    let oid = db.transaction(|tx| tx.pnew("stockitem", &[])).unwrap();
    db.transaction(|tx| {
        tx.activate_trigger(oid, "reorder", vec![])?;
        Ok(())
    })
    .unwrap();

    let events: Arc<Mutex<Vec<(TraceScope, TracePhase, String)>>> =
        Arc::new(Mutex::new(Vec::new()));
    let sink = {
        let events = Arc::clone(&events);
        Arc::new(move |e: &TraceEvent| {
            events
                .lock()
                .unwrap()
                .push((e.scope, e.phase, e.detail.clone()));
        })
    };
    db.set_trace_sink(Some(sink));

    // One transaction: a query finds the item, an update trips the trigger,
    // commit fires the action in its own (traced) transaction.
    db.transaction(|tx| {
        let hit = tx
            .forall("stockitem")?
            .suchthat("quantity > 50")?
            .collect_oids()?;
        assert_eq!(hit.len(), 1);
        tx.set(oid, "quantity", 5i64)?;
        Ok(())
    })
    .unwrap();
    db.set_trace_sink(None);

    let ev = events.lock().unwrap().clone();
    let pos = |scope: TraceScope, phase: TracePhase, detail: &str| {
        ev.iter()
            .position(|(s, p, d)| *s == scope && *p == phase && d.contains(detail))
            .unwrap_or_else(|| panic!("missing {scope:?}/{phase:?} `{detail}` in {ev:?}"))
    };

    let txn_begin = pos(TraceScope::Transaction, TracePhase::Begin, "begin");
    let q_begin = pos(TraceScope::Query, TracePhase::Begin, "stockitem");
    let q_end = pos(TraceScope::Query, TracePhase::End, "stockitem");
    let txn_end = pos(TraceScope::Transaction, TracePhase::End, "commit");
    let trig_begin = pos(TraceScope::Trigger, TracePhase::Begin, "reorder");
    let trig_end = pos(TraceScope::Trigger, TracePhase::End, "ok");

    // Query span nests inside its transaction; the trigger span opens only
    // after the activating transaction committed (the paper's post-commit
    // firing) and closes after its own inner transaction.
    assert!(txn_begin < q_begin && q_begin < q_end && q_end < txn_end);
    assert!(txn_end < trig_begin && trig_begin < trig_end);
    let inner_commit = ev
        .iter()
        .enumerate()
        .filter(|(_, (s, p, d))| {
            *s == TraceScope::Transaction && *p == TracePhase::End && d == "commit"
        })
        .map(|(i, _)| i)
        .find(|&i| i > trig_begin)
        .expect("trigger action runs in a traced transaction");
    assert!(inner_commit < trig_end);

    // Detaching the sink stops delivery.
    let n = ev.len();
    db.transaction(|tx| {
        tx.set(oid, "quantity", 80i64)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(events.lock().unwrap().len(), n);

    let d = db.telemetry();
    assert!(d.triggers.firings >= 1);
    assert!(d.triggers.max_cascade_depth >= 1);
}

#[test]
fn snapshot_delta_reset_and_json() {
    let dir = std::env::temp_dir().join(format!("ode-telemetry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir).unwrap();
    db.define_class(
        ClassBuilder::new("doc")
            .field_default("rev", Type::Int, 0)
            .field_default(
                "tags",
                Type::Set(Box::new(Type::Int)),
                Value::Set(SetValue::new()),
            ),
    )
    .unwrap();
    db.create_cluster("doc").unwrap();

    let before = db.telemetry();
    let oid = db.transaction(|tx| tx.pnew("doc", &[])).unwrap();
    db.transaction(|tx| {
        tx.newversion(oid)?;
        tx.set(oid, "rev", 1i64)?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        let v = tx.vref(oid)?;
        tx.read_version(v)?;
        let _ = tx.get(oid, "rev")?;
        Ok(())
    })
    .unwrap();
    let snap = db.telemetry();
    let d = snap.delta(&before);

    assert_eq!(d.txn.committed, 3);
    assert_eq!(d.versions.newversions, 1);
    assert!(d.versions.specific_derefs >= 1);
    // Two of the three commits wrote; the read-only one claims no epoch
    // and appends nothing (the multi-writer read-only short-circuit).
    assert!(
        d.storage.wal_appends >= 2,
        "durable write commits hit the WAL"
    );
    assert!(d.storage.record_writes >= 2);
    assert!(d.txn.commit_latency.count >= 3);

    // JSON is a single flat-ish object with every section present.
    let json = snap.to_json();
    for key in [
        "\"storage\"",
        "\"txn\"",
        "\"query\"",
        "\"versions\"",
        "\"triggers\"",
        "\"wal_appends\"",
        "\"commit_latency\"",
        "\"p99_ns\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert_eq!(json.matches('{').count(), json.matches('}').count());

    // rows() names every counter with its dotted path.
    let rows = snap.rows();
    assert!(rows.iter().any(|(k, _)| k == "storage.wal_appends"));
    assert!(rows.iter().any(|(k, _)| k == "txn.committed"));

    // reset_telemetry zeroes engine counters and the store's stats.
    db.reset_telemetry();
    let zero = db.telemetry();
    assert_eq!(zero.txn.committed, 0);
    assert_eq!(zero.versions.newversions, 0);
    assert_eq!(zero.storage.wal_appends, 0);

    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}
