//! Full walkthrough of the paper in one durable database: every linguistic
//! facility of O++ (ODE, SIGMOD 1989) exercised end-to-end, with a
//! close/reopen in the middle to prove the whole state is persistent.

use ode::model::SetValue;
use ode::prelude::*;

fn temp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ode-walkthrough-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn the_whole_paper() {
    let dir = temp("all");

    // Object ids captured in phase one, used after reopen.
    let dram;
    let fran;
    let engine_part;

    // ------------------------------------------------------- phase one
    {
        let db = Database::open(&dir).unwrap();

        // §2: classes with encapsulation and multiple inheritance.
        db.define_class(
            ClassBuilder::new("person")
                .field("name", Type::Str)
                .field_default("income", Type::Int, 0),
        )
        .unwrap();
        db.define_class(ClassBuilder::new("student").base("person").field_default(
            "stipend",
            Type::Int,
            0,
        ))
        .unwrap();
        db.define_class(ClassBuilder::new("faculty").base("person").field_default(
            "salary",
            Type::Int,
            0,
        ))
        .unwrap();
        // §5: constraint-based specialization.
        db.define_class(
            ClassBuilder::new("female")
                .base("person")
                .field("sex", Type::Str)
                .constraint("sex == 'f' || sex == 'F'"),
        )
        .unwrap();
        // §2.3 + §6: the stockitem with constraint and trigger.
        db.define_class(
            ClassBuilder::new("stockitem")
                .field("name", Type::Str)
                .field_default("quantity", Type::Int, 0)
                .field_default("reorder_level", Type::Int, 0)
                .field_default("on_order", Type::Int, 0)
                .constraint("quantity >= 0")
                .trigger("reorder", &["amount"], false, "quantity <= reorder_level")
                .action_assign("on_order", "$amount"),
        )
        .unwrap();
        // §2.6 + §3.2: parts with set-valued members.
        db.define_class(
            ClassBuilder::new("part")
                .field("pname", Type::Str)
                .field_default(
                    "subparts",
                    Type::Set(Box::new(Type::Ref("part".into()))),
                    Value::Set(SetValue::new()),
                ),
        )
        .unwrap();

        // §2.5: clusters must exist before pnew.
        for c in [
            "person",
            "student",
            "faculty",
            "female",
            "stockitem",
            "part",
        ] {
            db.create_cluster(c).unwrap();
        }

        // §2.4: pnew; §4: versioning.
        let ids = db
            .transaction(|tx| {
                let dram = tx.pnew(
                    "stockitem",
                    &[
                        ("name", Value::from("512 dram")),
                        ("quantity", Value::Int(100)),
                        ("reorder_level", Value::Int(10)),
                    ],
                )?;
                tx.pnew(
                    "person",
                    &[("name", Value::from("pat")), ("income", Value::Int(30_000))],
                )?;
                tx.pnew(
                    "student",
                    &[("name", Value::from("sam")), ("income", Value::Int(8_000))],
                )?;
                let fran = tx.pnew(
                    "faculty",
                    &[
                        ("name", Value::from("fran")),
                        ("income", Value::Int(60_000)),
                    ],
                )?;
                tx.pnew(
                    "female",
                    &[
                        ("name", Value::from("f. lovelace")),
                        ("sex", Value::from("f")),
                        ("income", Value::Int(90_000)),
                    ],
                )?;
                // Bill of materials with object references in sets.
                let bolt = tx.pnew("part", &[("pname", Value::from("bolt"))])?;
                let block = tx.pnew("part", &[("pname", Value::from("block"))])?;
                tx.set_insert(block, "subparts", Value::Ref(bolt))?;
                let engine = tx.pnew("part", &[("pname", Value::from("engine"))])?;
                tx.set_insert(engine, "subparts", Value::Ref(block))?;
                Ok((dram, fran, engine))
            })
            .unwrap();
        dram = ids.0;
        fran = ids.1;
        engine_part = ids.2;

        // §4: newversion + specific refs.
        db.transaction(|tx| {
            tx.newversion(dram)?;
            tx.set(dram, "quantity", 80i64)?;
            Ok(())
        })
        .unwrap();

        // §6: activate the reorder trigger.
        db.transaction(|tx| {
            tx.activate_trigger(dram, "reorder", vec![Value::Int(500)])?;
            Ok(())
        })
        .unwrap();

        // §5: constraint violations abort.
        assert!(db
            .transaction(|tx| tx.set(dram, "quantity", -5i64))
            .is_err());
        // The female specialization rejects wrong data.
        assert!(db
            .transaction(|tx| tx.pnew(
                "female",
                &[("name", Value::from("x")), ("sex", Value::from("m"))],
            ))
            .is_err());

        // §3.1: indexes for query optimization.
        db.create_index("person", "income").unwrap();
    }

    // ---------------------------------------------------- phase two
    // Everything persisted: schema, objects, versions, activations, index.
    {
        let db = Database::open(&dir).unwrap();

        // §3.1.1: hierarchy iteration with `is`.
        db.transaction(|tx| {
            let mut names = Vec::new();
            tx.forall("person")?
                .suchthat("income >= 30000")?
                .by("name")?
                .run(|tx, p| {
                    let mut tag = "person";
                    if tx.instance_of(p, "faculty")? {
                        tag = "faculty";
                    } else if tx.instance_of(p, "female")? {
                        tag = "female";
                    }
                    names.push(format!("{} ({tag})", tx.get(p, "name")?.as_str()?));
                    Ok(())
                })?;
            assert_eq!(
                names,
                vec![
                    "f. lovelace (female)".to_string(),
                    "fran (faculty)".to_string(),
                    "pat (person)".to_string(),
                ]
            );
            Ok(())
        })
        .unwrap();

        // Versions survived.
        db.transaction(|tx| {
            assert_eq!(tx.versions(dram)?, vec![0, 1]);
            let signed = tx.read_version(VersionRef {
                oid: dram,
                version: 0,
            })?;
            let qty_field = 1; // name, quantity, ...
            assert_eq!(signed.fields[qty_field], Value::Int(100));
            assert_eq!(tx.get(dram, "quantity")?, Value::Int(80));
            Ok(())
        })
        .unwrap();

        // §6: the persisted trigger fires at the right commit.
        let mut tx = db.begin();
        tx.set(dram, "quantity", 5i64).unwrap();
        let info = tx.commit().unwrap();
        assert_eq!(info.fired.len(), 1);
        db.transaction(|tx| {
            assert_eq!(tx.get(dram, "on_order")?, Value::Int(500));
            Ok(())
        })
        .unwrap();

        // §3.2: set-based traversal of the BOM with object refs.
        db.transaction(|tx| {
            let mut reachable = Vec::new();
            let mut frontier = vec![engine_part];
            while let Some(p) = frontier.pop() {
                reachable.push(tx.get(p, "pname")?.as_str()?.to_string());
                let subs = tx.get(p, "subparts")?;
                for v in subs.as_set()?.iter() {
                    frontier.push(v.as_ref_oid()?);
                }
            }
            reachable.sort();
            assert_eq!(reachable, vec!["block", "bolt", "engine"]);
            Ok(())
        })
        .unwrap();

        // §2.4: pdelete.
        db.transaction(|tx| tx.pdelete(fran)).unwrap();
        assert_eq!(db.extent_size("faculty", true).unwrap(), 0);
        // Dangling references report cleanly.
        let tx = db.begin();
        assert!(tx.read(fran).is_err());
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schema_errors_are_rejected_up_front() {
    let db = Database::in_memory();
    db.define_class(ClassBuilder::new("a").field("x", Type::Int))
        .unwrap();
    // Unknown base class.
    assert!(db
        .define_class(ClassBuilder::new("b").base("ghost"))
        .is_err());
    // Duplicate class.
    assert!(db.define_class(ClassBuilder::new("a")).is_err());
    // Constraint referencing an unknown field.
    assert!(db
        .define_class(
            ClassBuilder::new("c")
                .field("y", Type::Int)
                .constraint("z > 0")
        )
        .is_err());
    // Cluster for an unknown class.
    assert!(db.create_cluster("ghost").is_err());
    // Index on an unknown field.
    assert!(db.create_index("a", "ghost").is_err());
}

#[test]
fn destroy_cluster_removes_objects_and_metadata() {
    let db = Database::in_memory();
    db.define_class(ClassBuilder::new("tmp").field("v", Type::Int))
        .unwrap();
    db.create_cluster("tmp").unwrap();
    db.create_index("tmp", "v").unwrap();
    db.transaction(|tx| {
        for i in 0..50 {
            tx.pnew("tmp", &[("v", Value::Int(i))])?;
        }
        Ok(())
    })
    .unwrap();
    assert_eq!(db.extent_size("tmp", true).unwrap(), 50);
    db.destroy_cluster("tmp").unwrap();
    assert!(!db.has_cluster("tmp"));
    // Re-creating yields an empty extent and queries still work.
    db.create_cluster("tmp").unwrap();
    assert_eq!(db.extent_size("tmp", true).unwrap(), 0);
    db.transaction(|tx| {
        assert_eq!(tx.forall("tmp")?.suchthat("v == 1")?.count()?, 0);
        Ok(())
    })
    .unwrap();
}
