//! Property-based tests for the surface-syntax parsers (DDL class
//! declarations and query/DML statements): totality on arbitrary input,
//! and generated-program round-trips through a live database.

use proptest::prelude::*;

use ode::core::parse_query;
use ode::model::parse_classes;
use ode::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The DDL parser never panics, whatever the input.
    #[test]
    fn ddl_parser_is_total(src in ".{0,200}") {
        let _ = parse_classes(&src);
    }

    /// The statement parser never panics, whatever the input.
    #[test]
    fn query_parser_is_total(src in ".{0,200}") {
        let _ = parse_query(&src);
    }

    /// Statement-shaped garbage also doesn't panic.
    #[test]
    fn statement_shaped_inputs(
        kw in prop::sample::select(vec!["forall", "for all", "pnew", "update", "delete", "class"]),
        tail in ".{0,120}",
    ) {
        let src = format!("{kw} {tail}");
        let _ = parse_query(&src);
        let _ = parse_classes(&src);
        let db = Database::in_memory();
        let mut tx = db.begin();
        let _ = tx.execute(&src);
        tx.abort();
    }
}

// Generate a small schema + dataset, then check that generated DDL text
// and generated field predicates agree with the builder-based API.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_schemas_roundtrip(
        n_fields in 1usize..6,
        n_objects in 0usize..12,
        seedvals in prop::collection::vec(0i64..100, 12),
    ) {
        // DDL text with n_fields int fields f0..fn.
        let mut ddl = String::from("class gen {\n");
        for i in 0..n_fields {
            ddl.push_str(&format!("    int f{i} = {i};\n"));
        }
        ddl.push('}');
        let db = Database::in_memory();
        db.define_from_source(&ddl).unwrap();
        db.create_cluster("gen").unwrap();
        db.transaction(|tx| {
            for j in 0..n_objects {
                let v = seedvals[j % seedvals.len()];
                tx.execute(&format!("pnew gen (f0 = {v})"))?;
            }
            Ok(())
        }).unwrap();
        // Query through the statement layer and the builder layer; agree.
        let cut = seedvals[0];
        let via_stmt = db.transaction(|tx| {
            Ok(tx.query(&format!("forall g in gen suchthat (f0 <= {cut})"))?.len())
        }).unwrap();
        let via_builder = db.transaction(|tx| {
            tx.forall("gen")?.suchthat(&format!("f0 <= {cut}"))?.count()
        }).unwrap();
        prop_assert_eq!(via_stmt, via_builder);
        // Aggregates agree with manual fold.
        let manual: i64 = (0..n_objects)
            .map(|j| seedvals[j % seedvals.len()])
            .sum();
        let agg = db.transaction(|tx| tx.forall("gen")?.sum("f0")).unwrap();
        prop_assert_eq!(agg, Value::Int(manual));
    }
}
