//! Crash-recovery tests at the engine level.
//!
//! A "crash" is simulated by leaking the database (`std::mem::forget`), so
//! the destructor's checkpoint never runs: the data file is left in
//! whatever state the buffer pool happened to flush, and recovery must
//! rebuild everything from the WAL + page scan. These tests pin the
//! engine-level ACID story: committed transactions survive, uncommitted
//! work vanishes completely, and catalog state (classes, clusters, indexes,
//! trigger activations) recovers.

use ode::prelude::*;

fn temp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ode-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn inventory_schema(db: &Database) {
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 0)
            .trigger("low", &[], false, "quantity < 5")
            .action_assign("quantity", "quantity + 100"),
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
}

/// Crash right after commit: the committed data must survive even though
/// no checkpoint ran.
#[test]
fn committed_transactions_survive_crash() {
    let dir = temp("committed");
    let oid;
    {
        let db = Database::open(&dir).unwrap();
        inventory_schema(&db);
        oid = db
            .transaction(|tx| {
                tx.pnew(
                    "stockitem",
                    &[("name", Value::from("dram")), ("quantity", Value::Int(42))],
                )
            })
            .unwrap();
        std::mem::forget(db); // crash
    }
    let db = Database::open(&dir).unwrap();
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(42));
        Ok(())
    })
    .unwrap();
    // NOTE: the leaked FileStore still holds the old file descriptors, but
    // all further access goes through the new handle; the files are
    // removed at the end.
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash with a transaction in flight: nothing of it may survive,
/// including its reserved object slots.
#[test]
fn in_flight_transaction_vanishes() {
    let dir = temp("inflight");
    let committed;
    {
        let db = Database::open(&dir).unwrap();
        inventory_schema(&db);
        committed = db
            .transaction(|tx| {
                tx.pnew(
                    "stockitem",
                    &[("name", Value::from("keep")), ("quantity", Value::Int(1))],
                )
            })
            .unwrap();
        let mut tx = db.begin();
        let _doomed = tx
            .pnew(
                "stockitem",
                &[("name", Value::from("doomed")), ("quantity", Value::Int(9))],
            )
            .unwrap();
        tx.set(committed, "quantity", 999i64).unwrap();
        // Force the dirty/reserved pages toward disk to make it hard.
        db.checkpoint().unwrap();
        std::mem::forget(tx);
        std::mem::forget(db); // crash mid-transaction
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 1);
    db.transaction(|tx| {
        assert_eq!(tx.get(committed, "quantity")?, Value::Int(1));
        Ok(())
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Repeated crash/recover cycles make progress and never corrupt.
#[test]
fn repeated_crash_cycles() {
    let dir = temp("cycles");
    let mut expected = Vec::new();
    for round in 0..5i64 {
        let db = Database::open(&dir).unwrap();
        if round == 0 {
            inventory_schema(&db);
        }
        let oid = db
            .transaction(|tx| {
                tx.pnew(
                    "stockitem",
                    &[
                        ("name", Value::from(format!("round-{round}"))),
                        ("quantity", Value::Int(round)),
                    ],
                )
            })
            .unwrap();
        expected.push((oid, round));
        // Leave an uncommitted transaction hanging at every crash.
        let mut tx = db.begin();
        let _ = tx
            .pnew("stockitem", &[("name", Value::from("ghost"))])
            .unwrap();
        std::mem::forget(tx);
        std::mem::forget(db);
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 5);
    db.transaction(|tx| {
        for (oid, qty) in &expected {
            assert_eq!(tx.get(*oid, "quantity")?, Value::Int(*qty));
        }
        Ok(())
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Catalog state (classes, clusters, indexes, trigger activations)
/// recovers from the WAL without a clean shutdown.
#[test]
fn catalog_recovers_without_clean_shutdown() {
    let dir = temp("catalog");
    let oid;
    {
        let db = Database::open(&dir).unwrap();
        inventory_schema(&db);
        db.create_index("stockitem", "quantity").unwrap();
        oid = db
            .transaction(|tx| {
                let oid = tx.pnew(
                    "stockitem",
                    &[("name", Value::from("dram")), ("quantity", Value::Int(50))],
                )?;
                tx.activate_trigger(oid, "low", vec![])?;
                Ok(oid)
            })
            .unwrap();
        std::mem::forget(db);
    }
    let db = Database::open(&dir).unwrap();
    // Schema + cluster survived.
    assert!(db.has_cluster("stockitem"));
    // Index survived (and is queried through).
    db.transaction(|tx| {
        assert_eq!(
            tx.forall("stockitem")?
                .suchthat("quantity == 50")?
                .count()?,
            1
        );
        Ok(())
    })
    .unwrap();
    // The trigger activation survived and fires.
    let mut tx = db.begin();
    tx.set(oid, "quantity", 2i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(102));
        Ok(())
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Versions and version tables recover across a crash.
#[test]
fn versions_recover_after_crash() {
    let dir = temp("versions");
    let oid;
    {
        let db = Database::open(&dir).unwrap();
        inventory_schema(&db);
        oid = db
            .transaction(|tx| {
                tx.pnew(
                    "stockitem",
                    &[("name", Value::from("doc")), ("quantity", Value::Int(10))],
                )
            })
            .unwrap();
        db.transaction(|tx| {
            tx.newversion(oid)?;
            tx.set(oid, "quantity", 20i64)?;
            tx.newversion(oid)?;
            tx.set(oid, "quantity", 30i64)?;
            Ok(())
        })
        .unwrap();
        std::mem::forget(db);
    }
    let db = Database::open(&dir).unwrap();
    db.transaction(|tx| {
        assert_eq!(tx.versions(oid)?, vec![0, 1, 2]);
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(30));
        for (v, expect) in [(0u32, 10i64), (1, 20), (2, 30)] {
            let s = tx.read_version(VersionRef { oid, version: v })?;
            assert_eq!(s.fields[1], Value::Int(expect), "version {v}");
        }
        Ok(())
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
