//! Property-based testing of the engine against a reference model.
//!
//! A random sequence of operations (create / update / delete / newversion /
//! abort / reopen) is applied both to a durable Ode database and to a plain
//! in-process model. After every transaction boundary the two must agree on
//! every object's current state, its version history, and the extent
//! contents. Reopen steps exercise catalog replay, WAL replay, and index
//! rebuild under arbitrary interleavings.

use std::collections::HashMap;

use proptest::prelude::*;

use ode::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    New { qty: i64 },
    Set { pick: usize, qty: i64 },
    Delete { pick: usize },
    NewVersion { pick: usize },
    AbortedTxn { pick: usize, qty: i64 },
    Reopen,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0i64..1000).prop_map(|qty| Op::New { qty }),
        4 => (any::<usize>(), 0i64..1000).prop_map(|(pick, qty)| Op::Set { pick, qty }),
        1 => any::<usize>().prop_map(|pick| Op::Delete { pick }),
        2 => any::<usize>().prop_map(|pick| Op::NewVersion { pick }),
        1 => (any::<usize>(), 0i64..1000).prop_map(|(pick, qty)| Op::AbortedTxn { pick, qty }),
        1 => Just(Op::Reopen),
    ]
}

#[derive(Debug, Clone, Default)]
struct ModelObj {
    qty: i64,
    /// Frozen version states (version number -> qty); current is `qty`.
    versions: Vec<i64>,
}

fn setup(dir: &std::path::Path) -> Database {
    let db = Database::open(dir).unwrap();
    if !db.has_cluster("item") {
        db.define_class(
            ClassBuilder::new("item")
                .field_default("qty", Type::Int, 0)
                .constraint("qty >= 0"),
        )
        .unwrap();
        db.create_cluster("item").unwrap();
        db.create_index("item", "qty").unwrap();
    }
    db
}

fn check(db: &Database, model: &HashMap<Oid, ModelObj>) {
    let mut tx = db.begin();
    // Extent agreement.
    let oids = tx.forall("item").unwrap().collect_oids().unwrap();
    assert_eq!(oids.len(), model.len(), "extent size");
    for oid in &oids {
        assert!(model.contains_key(oid), "unexpected object {oid}");
    }
    for (oid, m) in model {
        // Current state.
        assert_eq!(
            tx.get(*oid, "qty").unwrap(),
            Value::Int(m.qty),
            "current qty of {oid}"
        );
        // Version history: model.versions[i] = frozen qty of version i.
        let versions = tx.versions(*oid).unwrap();
        assert_eq!(
            versions.len(),
            m.versions.len() + 1,
            "version count of {oid}"
        );
        for (i, frozen) in m.versions.iter().enumerate() {
            let s = tx
                .read_version(VersionRef {
                    oid: *oid,
                    version: i as u32,
                })
                .unwrap();
            assert_eq!(s.fields[0], Value::Int(*frozen), "version {i} of {oid}");
        }
        // Index agreement (query through the indexed field).
        let hits = tx
            .forall("item")
            .unwrap()
            .suchthat(&format!("qty == {}", m.qty))
            .unwrap()
            .collect_oids()
            .unwrap();
        assert!(hits.contains(oid), "index lookup must find {oid}");
    }
    tx.commit().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_reference_model(
        ops in prop::collection::vec(op(), 1..40),
        case in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "ode-prop-engine-{}-{case}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = setup(&dir);
        let mut model: HashMap<Oid, ModelObj> = HashMap::new();
        let mut order: Vec<Oid> = Vec::new();

        for op in ops {
            match op {
                Op::New { qty } => {
                    let oid = db
                        .transaction(|tx| tx.pnew("item", &[("qty", Value::Int(qty))]))
                        .unwrap();
                    model.insert(oid, ModelObj { qty, versions: Vec::new() });
                    order.push(oid);
                }
                Op::Set { pick, qty } => {
                    if order.is_empty() { continue; }
                    let oid = order[pick % order.len()];
                    db.transaction(|tx| tx.set(oid, "qty", qty)).unwrap();
                    model.get_mut(&oid).unwrap().qty = qty;
                }
                Op::Delete { pick } => {
                    if order.is_empty() { continue; }
                    let oid = order[pick % order.len()];
                    db.transaction(|tx| tx.pdelete(oid)).unwrap();
                    model.remove(&oid);
                    order.retain(|&o| o != oid);
                }
                Op::NewVersion { pick } => {
                    if order.is_empty() { continue; }
                    let oid = order[pick % order.len()];
                    db.transaction(|tx| { tx.newversion(oid)?; Ok(()) }).unwrap();
                    let m = model.get_mut(&oid).unwrap();
                    let frozen = m.qty;
                    m.versions.push(frozen);
                }
                Op::AbortedTxn { pick, qty } => {
                    if order.is_empty() { continue; }
                    let oid = order[pick % order.len()];
                    let mut tx = db.begin();
                    tx.set(oid, "qty", qty).unwrap();
                    tx.newversion(oid).unwrap();
                    tx.abort();
                    // Model unchanged.
                }
                Op::Reopen => {
                    drop(db);
                    db = setup(&dir);
                }
            }
            check(&db, &model);
        }
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
