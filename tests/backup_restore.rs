//! Export/import round-trips: schema, objects, references (including
//! cycles), version histories, indexes, and trigger activations all
//! survive a dump into a fresh database — with remapped identities.

use ode::core::DumpStats;
use ode::prelude::*;

fn build_source_db() -> (Database, Oid, Oid, Oid) {
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class person {
            string name;
            int income = 0;
            ref<person> spouse;
            constraint: income >= 0;
        }
        class student : public person {
            int stipend = 0;
        }
        class document {
            string title;
            int rev = 0;
            vref<document> predecessor;
        }
        class stockitem {
            string name;
            int quantity = 100;
            int on_order = 0;
            trigger reorder(amount) : quantity < 10 {
                on_order = $amount;
            }
        }
        "#,
    )
    .unwrap();
    for c in ["person", "student", "document", "stockitem"] {
        db.create_cluster(c).unwrap();
    }
    db.create_index("person", "income").unwrap();

    let (alice, bob, doc) = db
        .transaction(|tx| {
            // A reference *cycle* (spouses) across the hierarchy.
            let alice = tx.pnew(
                "person",
                &[("name", Value::from("alice")), ("income", Value::Int(50))],
            )?;
            let bob = tx.pnew(
                "student",
                &[
                    ("name", Value::from("bob")),
                    ("income", Value::Int(20)),
                    ("stipend", Value::Int(5)),
                    ("spouse", Value::Ref(alice)),
                ],
            )?;
            tx.set(alice, "spouse", Value::Ref(bob))?;
            // A versioned document whose later version pins its earlier one.
            let doc = tx.pnew("document", &[("title", Value::from("spec"))])?;
            Ok((alice, bob, doc))
        })
        .unwrap();
    db.transaction(|tx| {
        let v0 = tx.vref(doc)?;
        tx.newversion(doc)?;
        tx.update(doc, |w| {
            w.set("rev", 1i64)?;
            w.set("predecessor", Value::VRef(v0))
        })?;
        tx.newversion(doc)?;
        tx.set(doc, "rev", 2i64)?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        let item = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
        tx.activate_trigger(item, "reorder", vec![Value::Int(500)])?;
        Ok(())
    })
    .unwrap();
    (db, alice, bob, doc)
}

fn import_into_fresh(dump: &[u8]) -> (Database, DumpStats) {
    let db = Database::in_memory();
    let stats = db.import(dump).unwrap();
    (db, stats)
}

#[test]
fn full_roundtrip_preserves_everything() {
    let (src, ..) = build_source_db();
    let dump = src.export().unwrap();
    let (dst, stats) = import_into_fresh(&dump);

    assert_eq!(stats.classes, 4);
    assert_eq!(stats.clusters, 4);
    assert_eq!(stats.indexes, 1);
    assert_eq!(stats.objects, 4);
    assert_eq!(stats.versions, 2);
    assert_eq!(stats.activations, 1);
    assert_eq!(stats.dangling_refs, 0);

    // Hierarchy + extents.
    assert_eq!(dst.extent_size("person", true).unwrap(), 2);
    assert_eq!(dst.extent_size("student", true).unwrap(), 1);

    dst.transaction(|tx| {
        // The spouse cycle survived with remapped oids.
        let alice = tx
            .forall("person")?
            .suchthat("name == \"alice\"")?
            .collect_oids()?[0];
        let bob_ref = tx.get(alice, "spouse")?.as_ref_oid()?;
        assert_eq!(tx.get(bob_ref, "name")?, Value::from("bob"));
        assert_eq!(tx.get(bob_ref, "spouse")?.as_ref_oid()?, alice);
        assert!(tx.instance_of(bob_ref, "student")?);

        // Version history: three versions, linear chain, current rev 2.
        let doc = tx.forall("document")?.collect_oids()?[0];
        assert_eq!(tx.versions(doc)?, vec![0, 1, 2]);
        assert_eq!(tx.get(doc, "rev")?, Value::Int(2));
        let v1 = tx.read_version(VersionRef {
            oid: doc,
            version: 1,
        })?;
        assert_eq!(v1.fields[1], Value::Int(1));
        // v1's pinned predecessor points at the *new* doc oid, version 0.
        let Value::VRef(pred) = v1.fields[2].clone() else {
            panic!("predecessor not a vref: {:?}", v1.fields[2])
        };
        assert_eq!(pred.oid, doc);
        assert_eq!(pred.version, 0);
        let v0 = tx.read_version(pred)?;
        assert_eq!(v0.fields[1], Value::Int(0));
        Ok(())
    })
    .unwrap();

    // The index was rebuilt and answers queries.
    dst.transaction(|tx| {
        assert_eq!(tx.forall("person")?.suchthat("income == 50")?.count()?, 1);
        Ok(())
    })
    .unwrap();

    // The restored activation fires.
    let item = dst
        .transaction(|tx| Ok(tx.forall("stockitem")?.collect_oids()?[0]))
        .unwrap();
    let mut tx = dst.begin();
    tx.set(item, "quantity", 5i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    dst.transaction(|tx| {
        assert_eq!(tx.get(item, "on_order")?, Value::Int(500));
        Ok(())
    })
    .unwrap();
}

#[test]
fn dump_is_stable_under_double_roundtrip() {
    let (src, ..) = build_source_db();
    let dump1 = src.export().unwrap();
    let (mid, _) = import_into_fresh(&dump1);
    let dump2 = mid.export().unwrap();
    let (dst, stats2) = import_into_fresh(&dump2);
    // Same shape after two hops.
    assert_eq!(stats2.objects, 4);
    assert_eq!(stats2.versions, 2);
    assert_eq!(dst.extent_size("person", true).unwrap(), 2);
    dst.transaction(|tx| {
        let doc = tx.forall("document")?.collect_oids()?[0];
        assert_eq!(tx.versions(doc)?, vec![0, 1, 2]);
        Ok(())
    })
    .unwrap();
}

#[test]
fn version_gaps_are_compacted() {
    let db = Database::in_memory();
    db.define_from_source("class doc { int rev = 0; }").unwrap();
    db.create_cluster("doc").unwrap();
    let oid = db.transaction(|tx| tx.pnew("doc", &[])).unwrap();
    db.transaction(|tx| {
        for i in 1..=4 {
            tx.newversion(oid)?;
            tx.set(oid, "rev", i as i64)?;
        }
        // Delete middle versions: live numbers {0, 3, 4}.
        tx.delete_version(VersionRef { oid, version: 1 })?;
        tx.delete_version(VersionRef { oid, version: 2 })?;
        Ok(())
    })
    .unwrap();
    let dump = db.export().unwrap();
    let (dst, stats) = import_into_fresh(&dump);
    assert_eq!(stats.versions, 2);
    dst.transaction(|tx| {
        let doc = tx.forall("doc")?.collect_oids()?[0];
        // Renumbered densely; states preserved in order (rev 0, 3, 4).
        assert_eq!(tx.versions(doc)?, vec![0, 1, 2]);
        assert_eq!(
            tx.read_version(VersionRef {
                oid: doc,
                version: 0
            })?
            .fields[0],
            Value::Int(0)
        );
        assert_eq!(
            tx.read_version(VersionRef {
                oid: doc,
                version: 1
            })?
            .fields[0],
            Value::Int(3)
        );
        assert_eq!(tx.get(doc, "rev")?, Value::Int(4));
        Ok(())
    })
    .unwrap();
}

#[test]
fn dangling_refs_become_null_and_are_counted() {
    let db = Database::in_memory();
    db.define_from_source("class n { ref<n> next; }").unwrap();
    db.create_cluster("n").unwrap();
    let (a, _b) = db
        .transaction(|tx| {
            let b = tx.pnew("n", &[])?;
            let a = tx.pnew("n", &[("next", Value::Ref(b))])?;
            Ok((a, b))
        })
        .unwrap();
    // Delete the target: a.next dangles.
    db.transaction(|tx| {
        let b = tx.get(a, "next")?.as_ref_oid()?;
        tx.pdelete(b)
    })
    .unwrap();
    let dump = db.export().unwrap();
    let (dst, stats) = import_into_fresh(&dump);
    assert_eq!(stats.objects, 1);
    assert_eq!(stats.dangling_refs, 1);
    dst.transaction(|tx| {
        let a = tx.forall("n")?.collect_oids()?[0];
        assert_eq!(tx.get(a, "next")?, Value::Null);
        Ok(())
    })
    .unwrap();
}

#[test]
fn import_requires_empty_database() {
    let (src, ..) = build_source_db();
    let dump = src.export().unwrap();
    let dst = Database::in_memory();
    dst.define_from_source("class occupied { int x; }").unwrap();
    let err = dst.import(&dump).unwrap_err();
    assert!(matches!(err, ode::core::OdeError::Usage(_)), "{err}");
}

#[test]
fn import_rejects_garbage() {
    let db = Database::in_memory();
    assert!(db.import(b"not a dump").is_err());
    assert!(db.import(&[]).is_err());
}

#[test]
fn constraints_enforced_at_import_commit() {
    // Craft a source whose data is valid, then verify the import commits
    // (constraints checked over final states) — and that a dump of
    // cyclically-constrained data loads even though intermediate states
    // (null refs in pass 1) would violate an eager check.
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class node {
            ref<node> partner;
            constraint: partner != null;
        }
        "#,
    )
    .unwrap();
    db.create_cluster("node").unwrap();
    // Build the mutual pair with deferred constraints (the same mechanism
    // import uses).
    {
        let mut tx = db.begin();
        tx.defer_constraints();
        let a = tx.pnew("node", &[]).unwrap();
        let b = tx.pnew("node", &[]).unwrap();
        tx.set(a, "partner", Value::Ref(b)).unwrap();
        tx.set(b, "partner", Value::Ref(a)).unwrap();
        tx.commit().unwrap();
    }
    let dump = db.export().unwrap();
    let (dst, stats) = import_into_fresh(&dump);
    assert_eq!(stats.objects, 2);
    dst.transaction(|tx| {
        let nodes = tx.forall("node")?.collect_oids()?;
        for n in nodes {
            assert!(tx.get(n, "partner")?.as_ref_oid().is_ok());
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn durable_dump_file_workflow() {
    // Export from an in-memory db, write to disk, import into a durable db,
    // reopen, verify.
    let (src, ..) = build_source_db();
    let dump = src.export().unwrap();
    let dir = std::env::temp_dir().join(format!("ode-backup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dump_path = std::env::temp_dir().join(format!("ode-dump-{}.odd", std::process::id()));
    std::fs::write(&dump_path, &dump).unwrap();
    {
        let db = Database::open(&dir).unwrap();
        let bytes = std::fs::read(&dump_path).unwrap();
        db.import(&bytes).unwrap();
    }
    let db = Database::open(&dir).unwrap();
    assert_eq!(db.extent_size("person", true).unwrap(), 2);
    db.transaction(|tx| {
        let doc = tx.forall("document")?.collect_oids()?[0];
        assert_eq!(tx.versions(doc)?.len(), 3);
        Ok(())
    })
    .unwrap();
    std::fs::remove_dir_all(&dir).ok();
    std::fs::remove_file(&dump_path).ok();
}
