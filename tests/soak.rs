//! Soak test: a sustained mixed workload against a durable database with
//! periodic reopens, checking global invariants throughout. Deterministic
//! (seeded RNG), sized to run in a few seconds.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ode::prelude::*;

const ROUNDS: usize = 6;
const OPS_PER_ROUND: usize = 300;

struct Model {
    /// (oid, expected qty, expected versions)
    live: Vec<(Oid, i64, usize)>,
    total_created: usize,
    total_deleted: usize,
}

#[test]
fn mixed_workload_with_reopens_keeps_invariants() {
    let dir = std::env::temp_dir().join(format!("ode-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut rng = StdRng::seed_from_u64(0xDEC0DE);
    let mut model = Model {
        live: Vec::new(),
        total_created: 0,
        total_deleted: 0,
    };

    for round in 0..ROUNDS {
        let db = Database::open(&dir).unwrap();
        if round == 0 {
            db.define_from_source(
                r#"
                class item {
                    string name;
                    int qty = 0;
                    int touched = 0;
                    constraint: qty >= 0;
                }
                "#,
            )
            .unwrap();
            db.create_cluster("item").unwrap();
            db.create_index("item", "qty").unwrap();
        }

        for _ in 0..OPS_PER_ROUND {
            match rng.gen_range(0..100) {
                // 40%: create
                0..=39 => {
                    let qty = rng.gen_range(0..1000i64);
                    let oid = db
                        .transaction(|tx| {
                            tx.pnew(
                                "item",
                                &[
                                    ("name", Value::from(format!("i{}", model.total_created))),
                                    ("qty", Value::Int(qty)),
                                ],
                            )
                        })
                        .unwrap();
                    model.live.push((oid, qty, 1));
                    model.total_created += 1;
                }
                // 30%: update a random object
                40..=69 if !model.live.is_empty() => {
                    let i = rng.gen_range(0..model.live.len());
                    let qty = rng.gen_range(0..1000i64);
                    let (oid, ..) = model.live[i];
                    db.transaction(|tx| {
                        tx.update(oid, |w| {
                            w.set("qty", qty)?;
                            let t = w.get("touched")?.as_int()?;
                            w.set("touched", t + 1)
                        })
                    })
                    .unwrap();
                    model.live[i].1 = qty;
                }
                // 10%: newversion
                70..=79 if !model.live.is_empty() => {
                    let i = rng.gen_range(0..model.live.len());
                    let (oid, ..) = model.live[i];
                    db.transaction(|tx| {
                        tx.newversion(oid)?;
                        Ok(())
                    })
                    .unwrap();
                    model.live[i].2 += 1;
                }
                // 10%: delete
                80..=89 if !model.live.is_empty() => {
                    let i = rng.gen_range(0..model.live.len());
                    let (oid, ..) = model.live.swap_remove(i);
                    db.transaction(|tx| tx.pdelete(oid)).unwrap();
                    model.total_deleted += 1;
                }
                // 5%: aborted transaction (must leave no trace)
                90..=94 if !model.live.is_empty() => {
                    let i = rng.gen_range(0..model.live.len());
                    let (oid, ..) = model.live[i];
                    let mut tx = db.begin();
                    tx.set(oid, "qty", 999_999i64).unwrap();
                    tx.newversion(oid).unwrap();
                    let _ = tx.pnew("item", &[("name", Value::from("ghost"))]).unwrap();
                    tx.abort();
                }
                // 5%: constraint violation (auto-rolled back)
                _ if !model.live.is_empty() => {
                    let i = rng.gen_range(0..model.live.len());
                    let (oid, ..) = model.live[i];
                    let mut tx = db.begin();
                    assert!(tx.set(oid, "qty", -1i64).is_err());
                    drop(tx);
                }
                _ => {}
            }
        }

        // Invariants at the end of every round.
        assert_eq!(
            db.extent_size("item", true).unwrap(),
            model.live.len(),
            "extent size after round {round}"
        );
        db.transaction(|tx| {
            // Spot-check a sample of objects exactly.
            for &(oid, qty, versions) in model.live.iter().take(40) {
                assert_eq!(tx.get(oid, "qty")?, Value::Int(qty), "{oid} qty");
                assert_eq!(tx.versions(oid)?.len(), versions, "{oid} versions");
            }
            // Index agrees with a manual count for a random cut.
            let cut = 500i64;
            let via_index = tx
                .forall("item")?
                .suchthat(&format!("qty < {cut}"))?
                .count()?;
            let manual = model.live.iter().filter(|(_, q, _)| *q < cut).count();
            assert_eq!(via_index, manual, "index agreement after round {round}");
            Ok(())
        })
        .unwrap();
        // Close (checkpoints) and reopen next round.
    }

    assert!(model.total_created > 400, "workload actually ran");
    assert!(model.total_deleted > 50);
    std::fs::remove_dir_all(&dir).ok();
}
