//! Failure-injection tests: a store wrapper that fails on command proves
//! the engine turns storage failures into clean aborts — no partial
//! commits, no corrupted in-memory catalogs, usable afterwards.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use ode::core::{Database, DbConfig};
use ode::prelude::*;
use ode::storage::{HeapId, MemStore, Store, StoreOp, StoreStats};
use ode_storage::{RecordId, StorageError};

/// Wraps a store; when armed, the next `commit` fails (before reaching the
/// inner store, like a full disk or an I/O error at the WAL append).
struct FaultStore {
    inner: MemStore,
    fail_next_commit: AtomicBool,
    commits: AtomicUsize,
}

impl FaultStore {
    fn new() -> Arc<FaultStore> {
        Arc::new(FaultStore {
            inner: MemStore::new(),
            fail_next_commit: AtomicBool::new(false),
            commits: AtomicUsize::new(0),
        })
    }

    fn arm(&self) {
        self.fail_next_commit.store(true, Ordering::SeqCst);
    }
}

impl Store for FaultStore {
    fn create_heap(&self) -> ode_storage::Result<HeapId> {
        self.inner.create_heap()
    }
    fn drop_heap(&self, heap: HeapId) -> ode_storage::Result<()> {
        self.inner.drop_heap(heap)
    }
    fn has_heap(&self, heap: HeapId) -> bool {
        self.inner.has_heap(heap)
    }
    fn reserve(&self, heap: HeapId, size_hint: usize) -> ode_storage::Result<RecordId> {
        self.inner.reserve(heap, size_hint)
    }
    fn release(&self, heap: HeapId, rid: RecordId) -> ode_storage::Result<()> {
        self.inner.release(heap, rid)
    }
    fn read(&self, heap: HeapId, rid: RecordId) -> ode_storage::Result<Vec<u8>> {
        self.inner.read(heap, rid)
    }
    fn commit(&self, ops: Vec<StoreOp>) -> ode_storage::Result<()> {
        if self.fail_next_commit.swap(false, Ordering::SeqCst) {
            return Err(StorageError::io(
                "append wal record",
                std::io::Error::new(std::io::ErrorKind::StorageFull, "disk full (injected)"),
            ));
        }
        self.commits.fetch_add(1, Ordering::SeqCst);
        self.inner.commit(ops)
    }
    fn scan(
        &self,
        heap: HeapId,
        visit: &mut dyn FnMut(RecordId, &[u8]) -> ode_storage::Result<bool>,
    ) -> ode_storage::Result<()> {
        self.inner.scan(heap, visit)
    }
    fn checkpoint(&self) -> ode_storage::Result<()> {
        self.inner.checkpoint()
    }
    fn stats(&self) -> StoreStats {
        self.inner.stats()
    }
    fn reset_stats(&self) {
        self.inner.reset_stats()
    }
    fn clear_cache(&self) -> ode_storage::Result<()> {
        self.inner.clear_cache()
    }
    fn set_sync(&self, sync: bool) {
        self.inner.set_sync(sync)
    }
}

/// Retries off: these tests pin the *abort* path, and the injected fault
/// is transient, so the default `commit_retries` would paper over it.
fn no_retry() -> DbConfig {
    DbConfig {
        commit_retries: 0,
        ..DbConfig::default()
    }
}

fn setup(store: Arc<FaultStore>) -> Database {
    let db = Database::from_store(store, no_retry()).unwrap();
    db.define_from_source("class item { string name; int qty = 0; }")
        .unwrap();
    db.create_cluster("item").unwrap();
    db.create_index("item", "qty").unwrap();
    db
}

#[test]
fn failed_commit_aborts_cleanly_and_database_stays_usable() {
    let store = FaultStore::new();
    let db = setup(store.clone());
    let keeper = db
        .transaction(|tx| {
            tx.pnew(
                "item",
                &[("name", Value::from("keep")), ("qty", Value::Int(1))],
            )
        })
        .unwrap();

    // Inject a failure into the next commit.
    store.arm();
    let mut tx = db.begin();
    let doomed = tx
        .pnew(
            "item",
            &[("name", Value::from("doomed")), ("qty", Value::Int(2))],
        )
        .unwrap();
    tx.set(keeper, "qty", 99i64).unwrap();
    let err = tx.commit().unwrap_err();
    assert!(matches!(err, OdeError::Storage(_)), "{err}");

    // Nothing of the failed transaction is visible.
    let mut tx = db.begin();
    assert!(!tx.exists(doomed));
    assert_eq!(tx.get(keeper, "qty").unwrap(), Value::Int(1));
    // The index was not poisoned by the failed commit.
    assert_eq!(
        tx.forall("item")
            .unwrap()
            .suchthat("qty == 99")
            .unwrap()
            .count()
            .unwrap(),
        0
    );
    assert_eq!(
        tx.forall("item")
            .unwrap()
            .suchthat("qty == 1")
            .unwrap()
            .count()
            .unwrap(),
        1
    );
    drop(tx);

    // The database keeps working afterwards.
    db.transaction(|tx| {
        tx.set(keeper, "qty", 5i64)?;
        Ok(())
    })
    .unwrap();
    let tx = db.begin();
    assert_eq!(tx.get(keeper, "qty").unwrap(), Value::Int(5));
}

#[test]
fn failed_commit_fires_no_triggers() {
    let store = FaultStore::new();
    let db = Database::from_store(store.clone(), no_retry()).unwrap();
    db.define_from_source(
        "class item { int qty = 100; int hits = 0; perpetual trigger low() : qty < 10 { hits = hits + 1; qty = 100; } }",
    )
    .unwrap();
    db.create_cluster("item").unwrap();
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("item", &[])?;
            tx.activate_trigger(oid, "low", vec![])?;
            Ok(oid)
        })
        .unwrap();

    store.arm();
    let mut tx = db.begin();
    tx.set(oid, "qty", 1i64).unwrap();
    assert!(tx.commit().is_err());

    // Weak coupling from a *failed* commit: nothing fired.
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "hits")?, Value::Int(0));
        assert_eq!(tx.get(oid, "qty")?, Value::Int(100));
        Ok(())
    })
    .unwrap();

    // A successful retry fires normally (the action restocks, quenching
    // the perpetual condition after one firing).
    let mut tx = db.begin();
    tx.set(oid, "qty", 1i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "hits")?, Value::Int(1));
        assert_eq!(tx.get(oid, "qty")?, Value::Int(100));
        Ok(())
    })
    .unwrap();
}

#[test]
fn failure_during_trigger_action_commit_is_reported_not_propagated() {
    let store = FaultStore::new();
    let db = Database::from_store(store.clone(), no_retry()).unwrap();
    // The action runs a callback (which arms the fault) and then assigns a
    // marker; the action transaction's own commit then fails.
    db.define_from_source(
        "class item { int qty = 100; int marker = 0; trigger low() : qty < 10 { call sabotage; marker = 1; } }",
    )
    .unwrap();
    db.create_cluster("item").unwrap();
    let armer = store.clone();
    db.register_callback("sabotage", move |_tx, _oid, _args| {
        armer.arm(); // makes the *action* transaction's commit fail
        Ok(())
    });
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("item", &[])?;
            tx.activate_trigger(oid, "low", vec![])?;
            Ok(oid)
        })
        .unwrap();

    // The triggering commit succeeds; the weak-coupled action fails and is
    // reported, not propagated as a rollback of the trigger source.
    let mut tx = db.begin();
    tx.set(oid, "qty", 1i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1, "the trigger did fire");
    assert_eq!(info.failures.len(), 1, "its action's commit failed");
    assert!(matches!(info.failures[0].error, OdeError::Storage(_)));
    db.transaction(|tx| {
        // The triggering write persisted; the action's write did not.
        assert_eq!(tx.get(oid, "qty")?, Value::Int(1));
        assert_eq!(tx.get(oid, "marker")?, Value::Int(0));
        Ok(())
    })
    .unwrap();
}

#[test]
fn transient_commit_failure_is_retried_transparently() {
    // Under the default config (DESIGN.md §10) a one-shot transient
    // commit failure is absorbed by the engine's bounded retry: the
    // caller sees a successful commit, and the retry shows up in
    // telemetry rather than as an error.
    let store = FaultStore::new();
    let db = Database::from_store(store.clone(), DbConfig::default()).unwrap();
    db.define_from_source("class item { int qty = 0; }")
        .unwrap();
    db.create_cluster("item").unwrap();

    let commits_before = store.commits.load(Ordering::SeqCst);
    store.arm();
    let oid = db
        .transaction(|tx| tx.pnew("item", &[("qty", Value::Int(7))]))
        .expect("a transient failure within the retry budget must not surface");
    assert_eq!(
        store.commits.load(Ordering::SeqCst),
        commits_before + 1,
        "the retry reached the store exactly once"
    );
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "qty")?, Value::Int(7));
        Ok(())
    })
    .unwrap();
    assert!(
        db.telemetry().txn.commit_retries >= 1,
        "the absorbed failure must be visible as txn.commit_retries"
    );
}

#[test]
fn sequential_transactions_from_many_threads() {
    // The paper excludes concurrency; the engine serializes transactions
    // behind a gate. Hammer it from several threads to prove the gate and
    // the shared catalogs are sound (Database is Sync).
    let db = Arc::new(Database::in_memory());
    db.define_from_source("class counter { int n = 0; }")
        .unwrap();
    db.create_cluster("counter").unwrap();
    let oid = db.transaction(|tx| tx.pnew("counter", &[])).unwrap();

    let threads: Vec<_> = (0..8)
        .map(|_| {
            let db = db.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    db.transaction(|tx| {
                        let n = tx.get(oid, "n")?.as_int()?;
                        tx.set(oid, "n", n + 1)?;
                        Ok(())
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "n")?, Value::Int(400));
        Ok(())
    })
    .unwrap();
}
