//! The paper's §3.1.1 example: iterating over cluster hierarchies.
//!
//! Builds the person/student/faculty hierarchy (with a diamond:
//! teaching assistants are both), then reproduces the paper's
//! income-averaging query — one `forall` over the `person` cluster with
//! virtual `income()` dispatch and `is` type tests — and a join query
//! with multiple loop variables (employee ⋈ department).
//!
//! Run with: `cargo run --example university`

use ode::prelude::*;

fn main() -> Result<()> {
    let db = Database::in_memory();

    // ----------------------------------------------------------- schema
    db.define_class(
        ClassBuilder::new("person")
            .field("name", Type::Str)
            .field_default("base_income", Type::Int, 0),
    )?;
    db.define_class(ClassBuilder::new("student").base("person").field_default(
        "stipend",
        Type::Int,
        0,
    ))?;
    db.define_class(
        ClassBuilder::new("faculty")
            .base("person")
            .field_default("salary", Type::Int, 0)
            .field_default("deptno", Type::Int, 0),
    )?;
    // Multiple inheritance with a shared (diamond) base.
    db.define_class(
        ClassBuilder::new("teaching_assistant")
            .base("student")
            .base("faculty"),
    )?;
    db.define_class(
        ClassBuilder::new("department")
            .field("dname", Type::Str)
            .field("dno", Type::Int),
    )?;
    for c in [
        "person",
        "student",
        "faculty",
        "teaching_assistant",
        "department",
    ] {
        db.create_cluster(c)?;
    }

    // income(): the virtual member function of the paper's example.
    db.register_method("person", "income", |s, _| {
        Ok(Value::Int(s.fields[1].as_int()?))
    })?;
    db.register_method("student", "income", |s, _| {
        Ok(Value::Int(s.fields[1].as_int()? + s.fields[2].as_int()?))
    })?;
    db.register_method("faculty", "income", |s, _| {
        Ok(Value::Int(s.fields[1].as_int()? + s.fields[2].as_int()?))
    })?;

    // ------------------------------------------------------------- data
    db.transaction(|tx| {
        for (i, name) in ["ritchie", "thompson", "kernighan"].iter().enumerate() {
            tx.pnew(
                "department",
                &[
                    ("dname", Value::from(format!("{name} lab"))),
                    ("dno", Value::Int(i as i64)),
                ],
            )?;
        }
        tx.pnew(
            "person",
            &[
                ("name", Value::from("pat")),
                ("base_income", Value::Int(30_000)),
            ],
        )?;
        for (name, stipend) in [("sam", 12_000i64), ("sue", 15_000)] {
            tx.pnew(
                "student",
                &[
                    ("name", Value::from(name)),
                    ("base_income", Value::Int(3_000)),
                    ("stipend", Value::Int(stipend)),
                ],
            )?;
        }
        for (name, salary, dept) in [("fran", 90_000i64, 0i64), ("felix", 80_000, 1)] {
            tx.pnew(
                "faculty",
                &[
                    ("name", Value::from(name)),
                    ("base_income", Value::Int(5_000)),
                    ("salary", Value::Int(salary)),
                    ("deptno", Value::Int(dept)),
                ],
            )?;
        }
        tx.pnew(
            "teaching_assistant",
            &[
                ("name", Value::from("terry")),
                ("base_income", Value::Int(2_000)),
                ("stipend", Value::Int(8_000)),
                ("salary", Value::Int(10_000)),
                ("deptno", Value::Int(2)),
            ],
        )?;
        Ok(())
    })?;

    // ----------------------------------------------------- §3.1.1 query
    // "Compute the average income of persons, students and faculty" — one
    // pass over the person cluster *hierarchy*.
    db.transaction(|tx| {
        let (mut inc_p, mut np) = (0i64, 0i64);
        let (mut inc_s, mut ns) = (0i64, 0i64);
        let (mut inc_f, mut nf) = (0i64, 0i64);
        tx.forall("person")?.run(|tx, p| {
            let income = tx.call(p, "income", &[])?.as_int()?;
            inc_p += income;
            np += 1;
            if tx.instance_of(p, "student")? {
                inc_s += income;
                ns += 1;
            } else if tx.instance_of(p, "faculty")? {
                inc_f += income;
                nf += 1;
            }
            Ok(())
        })?;
        println!("average income over the person hierarchy ({np} people):");
        println!("  persons overall : {}", inc_p / np);
        println!("  students ({ns})   : {}", inc_s / ns);
        println!("  faculty  ({nf})   : {}", inc_f / nf);
        Ok(())
    })?;

    // --------------------------------------------- §3.1 join query
    // forall f in faculty, d in department suchthat (f.deptno == d.dno)
    db.transaction(|tx| {
        println!("\nfaculty ⋈ department (multiple loop variables):");
        tx.forall_join(&[("f", "faculty"), ("d", "department")])?
            .suchthat("f.deptno == d.dno")?
            .run(|tx, b| {
                println!(
                    "  {:8} works in {}",
                    tx.get(b["f"], "name")?.as_str()?,
                    tx.get(b["d"], "dname")?.as_str()?
                );
                Ok(())
            })?;
        Ok(())
    })?;

    // --------------------------------------- suchthat + by on a subset
    db.transaction(|tx| {
        println!("\nstudents by descending income:");
        let rows = tx
            .forall("student")?
            .by_desc("base_income + stipend")?
            .collect_values("name")?;
        for r in rows {
            println!("  {}", r.as_str()?);
        }
        Ok(())
    })?;

    Ok(())
}
