//! The paper's §3.2 example: fixpoint (recursive) queries.
//!
//! A bill-of-materials database: parts contain subparts. "Which parts does
//! an engine transitively contain, and how many of each?" is a least-
//! fixpoint query — exactly what O++ expresses by letting an iteration
//! also visit elements *added during* the iteration.
//!
//! This example computes the same closure three ways and checks they
//! agree:
//!   1. Ode fixpoint iteration over a result cluster (the paper's way),
//!   2. set fixpoint via `iterate_set` (insert-during-iteration),
//!   3. a hand-written semi-naive evaluation in plain Rust (baseline).
//!
//! Run with: `cargo run --example parts_explosion`

use std::collections::{BTreeMap, BTreeSet};

use ode::model::SetValue;
use ode::prelude::*;

/// (parent, child, how many children per parent)
const BOM: &[(&str, &str, i64)] = &[
    ("engine", "block", 1),
    ("engine", "piston", 8),
    ("engine", "crankshaft", 1),
    ("block", "cylinder_liner", 8),
    ("block", "bolt", 24),
    ("piston", "ring", 3),
    ("piston", "pin", 1),
    ("crankshaft", "bearing", 5),
    ("bearing", "bolt", 2),
    ("cylinder_liner", "seal", 1),
    // A different assembly, not reachable from engine:
    ("gearbox", "gear", 6),
    ("gear", "bolt", 4),
];

fn main() -> Result<()> {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("usage")
            .field("parent", Type::Str)
            .field("child", Type::Str)
            .field_default("count", Type::Int, 1),
    )?;
    db.define_class(
        ClassBuilder::new("contains")
            .field("part", Type::Str)
            .field_default("total", Type::Int, 0),
    )?;
    db.define_class(ClassBuilder::new("worklist").field_default(
        "parts",
        Type::Set(Box::new(Type::Str)),
        Value::Set(SetValue::new()),
    ))?;
    for c in ["usage", "contains", "worklist"] {
        db.create_cluster(c)?;
    }
    db.create_index("usage", "parent")?;

    db.transaction(|tx| {
        for (p, c, n) in BOM {
            tx.pnew(
                "usage",
                &[
                    ("parent", Value::from(*p)),
                    ("child", Value::from(*c)),
                    ("count", Value::Int(*n)),
                ],
            )?;
        }
        Ok(())
    })?;

    // ---------------------------------------------------------------
    // 1. The paper's way: fixpoint iteration over a growing cluster.
    //    Seed `contains` with the root; each visit adds the children of
    //    the visited part; the iteration chases the additions.
    // ---------------------------------------------------------------
    let mut via_cluster: BTreeMap<String, i64> = BTreeMap::new();
    db.transaction(|tx| {
        tx.pnew(
            "contains",
            &[("part", Value::from("engine")), ("total", Value::Int(1))],
        )?;
        tx.forall("contains")?.fixpoint().run(|tx, row| {
            let part = tx.get(row, "part")?.as_str()?.to_string();
            let multiplier = tx.get(row, "total")?.as_int()?;
            let children: Vec<(String, i64)> = {
                let mut out = Vec::new();
                let usages = tx
                    .forall("usage")?
                    .suchthat(&format!("parent == \"{part}\""))?
                    .collect_oids()?;
                for u in usages {
                    out.push((
                        tx.get(u, "child")?.as_str()?.to_string(),
                        tx.get(u, "count")?.as_int()?,
                    ));
                }
                out
            };
            for (child, count) in children {
                let existing = tx
                    .forall("contains")?
                    .suchthat(&format!("part == \"{child}\""))?
                    .collect_oids()?;
                let add = multiplier * count;
                match existing.first() {
                    Some(&row) => {
                        let t = tx.get(row, "total")?.as_int()?;
                        tx.set(row, "total", t + add)?;
                    }
                    None => {
                        tx.pnew(
                            "contains",
                            &[
                                ("part", Value::from(child.as_str())),
                                ("total", Value::Int(add)),
                            ],
                        )?;
                    }
                }
            }
            Ok(())
        })?;
        tx.forall("contains")?.run(|tx, row| {
            via_cluster.insert(
                tx.get(row, "part")?.as_str()?.to_string(),
                tx.get(row, "total")?.as_int()?,
            );
            Ok(())
        })?;
        Ok(())
    })?;

    println!("parts explosion of `engine` (cluster fixpoint):");
    for (part, total) in &via_cluster {
        println!("  {total:>4} × {part}");
    }

    // ---------------------------------------------------------------
    // 2. Set fixpoint: reachability only, via insert-during-iteration.
    // ---------------------------------------------------------------
    let mut via_set: BTreeSet<String> = BTreeSet::new();
    db.transaction(|tx| {
        let wl = tx.pnew("worklist", &[])?;
        tx.set_insert(wl, "parts", "engine")?;
        tx.iterate_set(wl, "parts", |tx, v| {
            let part = v.as_str()?.to_string();
            via_set.insert(part.clone());
            let children = tx
                .forall("usage")?
                .suchthat(&format!("parent == \"{part}\""))?
                .collect_values("child")?;
            for c in children {
                tx.set_insert(wl, "parts", c)?;
            }
            Ok(())
        })?;
        Ok(())
    })?;

    // ---------------------------------------------------------------
    // 3. Baseline: semi-naive transitive closure in plain Rust.
    // ---------------------------------------------------------------
    let edges: Vec<(String, String)> = BOM
        .iter()
        .map(|(p, c, _)| (p.to_string(), c.to_string()))
        .collect();
    let mut closure: BTreeSet<String> = BTreeSet::new();
    let mut delta: BTreeSet<String> = ["engine".to_string()].into();
    while !delta.is_empty() {
        closure.extend(delta.iter().cloned());
        let mut next = BTreeSet::new();
        for (p, c) in &edges {
            if delta.contains(p) && !closure.contains(c) {
                next.insert(c.clone());
            }
        }
        delta = next;
    }

    // All three agree on reachability.
    let cluster_parts: BTreeSet<String> = via_cluster.keys().cloned().collect();
    assert_eq!(cluster_parts, closure, "cluster fixpoint = semi-naive");
    assert_eq!(via_set, closure, "set fixpoint = semi-naive");
    println!(
        "\nreachable part kinds: {} (all three evaluation strategies agree)",
        closure.len()
    );
    assert!(!closure.contains("gear"), "unrelated assembly excluded");

    // Spot-check a derived quantity: bolts = 24 (block) + 2*5 (bearings) = 34.
    assert_eq!(via_cluster["bolt"], 34);
    println!("an engine needs {} bolts in total.", via_cluster["bolt"]);
    Ok(())
}
