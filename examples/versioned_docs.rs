//! The paper's §4 facility: object versioning for historical databases.
//!
//! A contracts database where amendments create explicit versions
//! (`newversion`), auditors hold *specific* (pinned) references, everyone
//! else holds *generic* references that track the current version, and one
//! contract branches into a version tree (the footnote-15 extension).
//!
//! Run with: `cargo run --example versioned_docs`

use ode::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("ode-versioned-docs");
    let _ = std::fs::remove_dir_all(&dir);
    let db = Database::open(&dir)?;

    db.define_class(
        ClassBuilder::new("contract")
            .field("party", Type::Str)
            .field("terms", Type::Str)
            .field_default("fee", Type::Int, 0),
    )?;
    db.define_class(
        ClassBuilder::new("audit_entry")
            .field("note", Type::Str)
            .field("snapshot", Type::VRef("contract".into())),
    )?;
    db.create_cluster("contract")?;
    db.create_cluster("audit_entry")?;

    // Original contract.
    let contract = db.transaction(|tx| {
        tx.pnew(
            "contract",
            &[
                ("party", Value::from("western electric")),
                ("terms", Value::from("net 30, 10k units")),
                ("fee", Value::Int(50_000)),
            ],
        )
    })?;

    // The auditor pins the signing state with a specific reference.
    let audit = db.transaction(|tx| {
        let vref = tx.vref(contract)?;
        tx.pnew(
            "audit_entry",
            &[
                ("note", Value::from("as signed")),
                ("snapshot", Value::VRef(vref)),
            ],
        )
    })?;

    // Two amendments, each an explicit newversion (§4: plain updates do
    // NOT create versions).
    db.transaction(|tx| {
        tx.newversion(contract)?;
        tx.update(contract, |w| {
            w.set("terms", "net 45, 12k units")?;
            w.set("fee", 60_000i64)
        })
    })?;
    db.transaction(|tx| {
        tx.newversion(contract)?;
        tx.set(contract, "fee", 65_000i64)
    })?;

    db.transaction(|tx| {
        println!("version history of the contract:");
        for v in tx.versions(contract)? {
            let s = tx.read_version(VersionRef {
                oid: contract,
                version: v,
            })?;
            let parent = tx.parent_version(VersionRef {
                oid: contract,
                version: v,
            })?;
            println!(
                "  v{v} (parent {:?}): fee {}, terms {}",
                parent, s.fields[2], s.fields[1]
            );
        }
        // Generic reference → current version.
        println!("current fee (generic ref): {}", tx.get(contract, "fee")?);
        // The auditor's specific reference is frozen at v0.
        let Value::VRef(pinned) = tx.get(audit, "snapshot")? else {
            unreachable!()
        };
        let signed = tx.read_version(pinned)?;
        println!("auditor's pinned fee (specific ref): {}", signed.fields[2]);
        assert_eq!(signed.fields[2], Value::Int(50_000));
        assert_eq!(tx.get(contract, "fee")?, Value::Int(65_000));
        Ok(())
    })?;

    // Branch a renegotiation from v1 — a version *tree*.
    db.transaction(|tx| {
        let branch = tx.newversion_from(VersionRef {
            oid: contract,
            version: 1,
        })?;
        tx.set(contract, "terms", "net 45, 12k units, renegotiated")?;
        println!("\nbranched v{branch} from v1 (version tree):");
        for v in tx.versions(contract)? {
            let p = tx.parent_version(VersionRef {
                oid: contract,
                version: v,
            })?;
            println!("  v{v} <- parent {p:?}");
        }
        let kids = tx.child_versions(VersionRef {
            oid: contract,
            version: 1,
        })?;
        assert_eq!(kids, vec![2, 3]);
        Ok(())
    })?;

    // Everything survives a reopen.
    drop(db);
    let db = Database::open(&dir)?;
    db.transaction(|tx| {
        assert_eq!(tx.versions(contract)?.len(), 4);
        assert_eq!(
            tx.get(contract, "terms")?,
            Value::from("net 45, 12k units, renegotiated")
        );
        Ok(())
    })?;
    println!("\nversion tree intact after reopen.");
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
