//! The paper's §6 example: an active database with triggers.
//!
//! An inventory where each stock item carries a once-only `reorder`
//! trigger (fire when quantity falls to the reorder level; action places a
//! purchase order in its own, weakly-coupled transaction) and a perpetual
//! `audit` trigger that records every large withdrawal.
//!
//! Run with: `cargo run --example active_inventory`

use ode::prelude::*;

fn main() -> Result<()> {
    let db = Database::in_memory();

    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 0)
            .field_default("reorder_level", Type::Int, 0)
            .field_default("on_order", Type::Int, 0)
            .constraint("quantity >= 0")
            // §6: once-only trigger (default): fires once, must be
            // re-activated explicitly.
            .trigger(
                "reorder",
                &["amount"],
                false,
                "quantity <= reorder_level && on_order == 0",
            )
            .action_assign("on_order", "$amount")
            .action_callback("notify_purchasing")
            // Perpetual trigger with an argument: audit large stock drops.
            .trigger("audit_low", &["floor"], true, "quantity < $floor")
            .action_callback("audit"),
    )?;
    db.define_class(
        ClassBuilder::new("audit_log")
            .field("item", Type::Str)
            .field("quantity", Type::Int),
    )?;
    db.create_cluster("stockitem")?;
    db.create_cluster("audit_log")?;

    db.register_callback("notify_purchasing", |tx, oid, args| {
        let name = tx.get(oid, "name")?.as_str()?.to_string();
        println!(
            "  [purchasing] reorder {} units of {name}",
            args.first().map(|v| v.to_string()).unwrap_or_default()
        );
        Ok(())
    });
    db.register_callback("audit", |tx, oid, _args| {
        let name = tx.get(oid, "name")?.as_str()?.to_string();
        let qty = tx.get(oid, "quantity")?.as_int()?;
        tx.pnew(
            "audit_log",
            &[
                ("item", Value::from(name.as_str())),
                ("quantity", Value::Int(qty)),
            ],
        )?;
        Ok(())
    });

    // Stock the shelves and arm the triggers.
    let dram = db.transaction(|tx| {
        let dram = tx.pnew(
            "stockitem",
            &[
                ("name", Value::from("512 dram")),
                ("quantity", Value::Int(100)),
                ("reorder_level", Value::Int(20)),
            ],
        )?;
        tx.activate_trigger(dram, "reorder", vec![Value::Int(500)])?;
        tx.activate_trigger(dram, "audit_low", vec![Value::Int(50)])?;
        Ok(dram)
    })?;

    // Simulate sales. Each sale is one transaction; trigger conditions are
    // evaluated at the end of each (§6).
    println!("selling dram in lots of 30:");
    for sale in 1..=3 {
        let info = {
            let mut tx = db.begin();
            let qty = tx.get(dram, "quantity")?.as_int()?;
            tx.set(dram, "quantity", qty - 30)?;
            tx.commit()?
        };
        let fired: Vec<&str> = info.fired.iter().map(|f| f.trigger.as_str()).collect();
        println!("  sale {sale}: fired {fired:?}");
    }

    let (qty, on_order, audits) = db.transaction(|tx| {
        let qty = tx.get(dram, "quantity")?.as_int()?;
        let on_order = tx.get(dram, "on_order")?.as_int()?;
        let audits = tx.forall("audit_log")?.count()?;
        Ok((qty, on_order, audits))
    })?;
    println!("\nfinal quantity {qty}, on order {on_order}, audit entries {audits}");
    assert_eq!(qty, 10);
    assert_eq!(on_order, 500, "once-only reorder fired exactly once");
    // Sales 2 and 3 dropped below the floor; the reorder *action
    // transaction* also wrote the item while it was below the floor, so
    // the perpetual audit fired a third time — trigger conditions are
    // evaluated at the end of every transaction that writes the subject,
    // including weak-coupled action transactions.
    assert_eq!(audits, 3, "perpetual audit fired on every qualifying txn");

    // Weak coupling: an aborted sale fires nothing.
    {
        let mut tx = db.begin();
        tx.set(dram, "quantity", 1i64)?;
        tx.abort();
    }
    let audits_after = db.transaction(|tx| tx.forall("audit_log")?.count())?;
    assert_eq!(audits_after, audits, "aborted transaction fired nothing");
    println!("aborted sale fired nothing (weak coupling).");
    Ok(())
}
