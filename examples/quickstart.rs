//! Quickstart: the paper's stockitem example (§2), end to end.
//!
//! Demonstrates the Ode basics: defining a class, creating its cluster
//! (type extent), creating persistent objects with `pnew`, reading and
//! updating them in transactions, declarative `forall … suchthat … by`
//! iteration, and durability across a close/reopen.
//!
//! Run with: `cargo run --example quickstart`

use ode::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join("ode-quickstart");
    let _ = std::fs::remove_dir_all(&dir);

    // ---------------------------------------------------------------
    // 1. Open a database and declare the schema (O++ `class stockitem`).
    // ---------------------------------------------------------------
    let db = Database::open(&dir)?;
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("allowance", Type::Float, 0.0)
            .field_default("quantity", Type::Int, 0)
            .field_default("max_quantity", Type::Int, 0)
            .field_default("price", Type::Float, 0.0)
            .field_default("reorder_level", Type::Int, 0)
            .field("supplier", Type::Str)
            .field("supplier_address", Type::Str)
            // §5: integrity constraints live with the class.
            .constraint_named("sane_quantity", "quantity >= 0 && quantity <= max_quantity"),
    )?;

    // §2.5: the cluster (type extent) must exist before `pnew`.
    db.create_cluster("stockitem")?;

    // ---------------------------------------------------------------
    // 2. Create persistent objects — the paper's `pnew stockitem(...)`.
    // ---------------------------------------------------------------
    let dram = db.transaction(|tx| {
        let dram = tx.pnew(
            "stockitem",
            &[
                ("name", Value::from("512 dram")),
                ("allowance", Value::Float(0.05)),
                ("quantity", Value::Int(7500)),
                ("max_quantity", Value::Int(15000)),
                ("price", Value::Float(5.00)),
                ("reorder_level", Value::Int(15)),
                ("supplier", Value::from("at&t")),
                ("supplier_address", Value::from("berkeley hts, nj")),
            ],
        )?;
        for (i, qty) in [1200i64, 40, 9000].iter().enumerate() {
            tx.pnew(
                "stockitem",
                &[
                    ("name", Value::from(format!("part-{i}"))),
                    ("quantity", Value::Int(*qty)),
                    ("max_quantity", Value::Int(20000)),
                    ("price", Value::Float(1.25 * (i as f64 + 1.0))),
                    ("reorder_level", Value::Int(100)),
                    ("supplier", Value::from("western electric")),
                ],
            )?;
        }
        Ok(dram)
    })?;
    println!("created 4 stock items; dram has object id {dram}");

    // ---------------------------------------------------------------
    // 3. Read and update through generic references (object ids).
    // ---------------------------------------------------------------
    db.transaction(|tx| {
        let qty = tx.get(dram, "quantity")?.as_int()?;
        tx.set(dram, "quantity", qty - 500)?; // ship 500 units
        Ok(())
    })?;

    // ---------------------------------------------------------------
    // 4. Declarative iteration (§3.1): forall ... suchthat ... by.
    // ---------------------------------------------------------------
    db.transaction(|tx| {
        println!("\nitems that need reordering (quantity <= reorder_level):");
        tx.forall("stockitem")?
            .suchthat("quantity <= reorder_level")?
            .run(|tx, item| {
                println!(
                    "  {} (qty {})",
                    tx.get(item, "name")?.as_str()?,
                    tx.get(item, "quantity")?
                );
                Ok(())
            })?;

        println!("\nall items by descending stock value (price * quantity):");
        tx.forall("stockitem")?
            .by_desc("price * quantity")?
            .run(|tx, item| {
                let name = tx.get(item, "name")?.as_str()?.to_string();
                let value =
                    tx.get(item, "price")?.as_float()? * tx.get(item, "quantity")?.as_int()? as f64;
                println!("  {name:12} ${value:>10.2}");
                Ok(())
            })?;
        Ok(())
    })?;

    // ---------------------------------------------------------------
    // 5. Constraints abort violating transactions (§5).
    // ---------------------------------------------------------------
    let err = db
        .transaction(|tx| tx.set(dram, "quantity", -1i64))
        .unwrap_err();
    println!("\nas expected, a bad update was rejected:\n  {err}");

    // ---------------------------------------------------------------
    // 6. Durability: close and reopen.
    // ---------------------------------------------------------------
    drop(db);
    let db = Database::open(&dir)?;
    let qty = db.transaction(|tx| tx.get(dram, "quantity")?.as_int().map_err(Into::into))?;
    println!("\nafter reopen, dram quantity is still {qty}");
    assert_eq!(qty, 7000);

    std::fs::remove_dir_all(&dir).ok();
    println!("\nquickstart complete.");
    Ok(())
}
