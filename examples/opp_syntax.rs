//! The "single integrated language" experience (§1 of the paper): the
//! database is *defined* and *queried* in O++-flavoured text, with Rust as
//! the host for statement bodies — mirroring how O++ embeds the database
//! sublanguage in C++.
//!
//! Run with: `cargo run --example opp_syntax`

use ode::prelude::*;

fn main() -> Result<()> {
    let db = Database::in_memory();

    // -------- data definition, straight out of the paper's §2 ----------
    db.define_from_source(
        r#"
        class supplier {
            string sname;
            string address;
        }

        class stockitem {
            string name;
            double allowance   = 0.05;
            int    quantity    = 0;
            int    max_quantity = 15000;
            double price       = 0.0;
            int    reorder_level = 15;
            int    on_order    = 0;
            ref<supplier> supplied_by;

            constraint sane: quantity >= 0 && quantity <= max_quantity;

            trigger reorder(amount) : quantity <= reorder_level && on_order == 0 {
                on_order = $amount;
                call purchasing;
            }
        }
        "#,
    )?;
    db.create_cluster("supplier")?;
    db.create_cluster("stockitem")?;

    db.register_callback("purchasing", |tx, oid, args| {
        println!(
            "  [purchasing] ordering {} more {}",
            args[0],
            tx.get(oid, "name")?.as_str()?
        );
        Ok(())
    });

    // ------------------------------ data -------------------------------
    db.transaction(|tx| {
        let att = tx.pnew(
            "supplier",
            &[
                ("sname", Value::from("at&t")),
                ("address", Value::from("berkeley hts, nj")),
            ],
        )?;
        for (name, qty, price) in [
            ("512 dram", 7500i64, 5.00f64),
            ("1 meg dram", 80, 11.00),
            ("eprom", 18, 4.50),
            ("pal", 9000, 1.75),
        ] {
            let item = tx.pnew(
                "stockitem",
                &[
                    ("name", Value::from(name)),
                    ("quantity", Value::Int(qty)),
                    ("price", Value::Float(price)),
                    ("supplied_by", Value::Ref(att)),
                ],
            )?;
            tx.activate_trigger(item, "reorder", vec![Value::Int(1000)])?;
        }
        Ok(())
    })?;

    // --------------------- queries as statements -----------------------
    db.transaction(|tx| {
        println!("inventory by descending stock value:");
        tx.query_run(
            "forall s in stockitem by (price * quantity) desc",
            |tx, m| {
                let s = m["s"];
                println!(
                    "  {:10}  qty {:>6}  @ {:>6}",
                    tx.get(s, "name")?.as_str()?,
                    tx.get(s, "quantity")?,
                    tx.get(s, "price")?,
                );
                Ok(())
            },
        )?;

        println!("\nitems at or below their reorder level:");
        tx.query_run(
            "forall s in stockitem suchthat (s.quantity <= s.reorder_level)",
            |tx, m| {
                println!("  {}", tx.get(m["s"], "name")?.as_str()?);
                Ok(())
            },
        )?;

        // A join through the reference: which items does each supplier
        // provide? (value join over the printable key)
        println!("\nsupplier ⋈ stockitem:");
        tx.query_run(
            "forall v in supplier, s in stockitem suchthat (s.supplied_by == v)",
            |tx, m| {
                println!(
                    "  {} supplies {}",
                    tx.get(m["v"], "sname")?.as_str()?,
                    tx.get(m["s"], "name")?.as_str()?
                );
                Ok(())
            },
        )?;
        Ok(())
    })?;

    // A sale drives one item to its reorder level: the text-declared
    // trigger fires and the callback runs in its own transaction.
    println!("\nselling 4 eproms:");
    let mut tx = db.begin();
    let eprom = tx
        .query("forall s in stockitem suchthat (s.name == \"eprom\")")?
        .oids()?[0];
    let qty = tx.get(eprom, "quantity")?.as_int()?;
    tx.set(eprom, "quantity", qty - 4)?;
    let info = tx.commit()?;
    assert_eq!(info.fired.len(), 1);

    db.transaction(|tx| {
        println!(
            "eprom: quantity {}, on order {}",
            tx.get(eprom, "quantity")?,
            tx.get(eprom, "on_order")?
        );
        Ok(())
    })?;
    Ok(())
}
