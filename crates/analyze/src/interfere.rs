//! The interference pass: intersect statement footprints to find
//! conflicts *before* anything runs.
//!
//! Two footprints interfere when a write access of one can touch the
//! same objects as a read or write access of the other. "Can touch" is
//! decided conservatively from the key ranges: accesses on the same
//! class are assumed to overlap **unless** some field is constrained in
//! both and the two intervals are provably disjoint — the exact dual of
//! the commit-time narrowed validation in `ode-core` (DESIGN.md §14).
//!
//! * **A301** — two statements in a batch have interfering footprints:
//!   run under one transaction they serialize on the same objects; run
//!   as concurrent transactions one of them is guaranteed to abort.
//! * **A302** — two triggers are write-skew-prone: each one's condition
//!   reads members the other's action writes, so decoupled firing order
//!   decides the outcome (the classic write-skew anomaly, §6).

use std::collections::BTreeSet;

use crate::footprint::{ClusterAccess, Footprint};
use crate::{Diagnostic, Severity, A301, A302};

/// Can `a` and `b` touch the same objects? Disjointness must be proven;
/// everything unprovable counts as overlap.
fn accesses_overlap(a: &ClusterAccess, b: &ClusterAccess) -> bool {
    // Distinct classes only provably share objects through a common
    // hierarchy; footprints record the binding class, and the engine
    // stores every object in its exact class's heap — a deep access of
    // class C touches heaps of C and its subclasses, so identical names
    // are the conservative overlap test at this layer. (Sub/superclass
    // pairs are handled by the runtime's heap-level validation.)
    if a.class != b.class {
        return false;
    }
    // One field pinned to provably disjoint intervals on both sides is
    // enough: no object satisfies both predicates.
    for ra in &a.ranges {
        for rb in &b.ranges {
            if ra.field == rb.field && ra.range.disjoint(&rb.range) {
                return false;
            }
        }
    }
    true
}

/// A write access interferes with any overlapping access; two reads
/// never interfere.
fn interferes(a: &Footprint, b: &Footprint) -> Option<String> {
    for wa in &a.writes {
        for wb in &b.writes {
            if accesses_overlap(wa, wb) {
                return Some(format!("both write `{}`", wa.class));
            }
        }
    }
    for wa in &a.writes {
        for rb in &b.reads {
            if accesses_overlap(wa, rb) {
                return Some(format!(
                    "one writes `{}` while the other reads it",
                    wa.class
                ));
            }
        }
    }
    for wb in &b.writes {
        for ra in &a.reads {
            if accesses_overlap(wb, ra) {
                return Some(format!(
                    "one writes `{}` while the other reads it",
                    wb.class
                ));
            }
        }
    }
    None
}

/// A301 over a batch: every pair of statements whose footprints cannot
/// be proven disjoint. `stmts` carries `(line, footprint)`; lines label
/// the diagnostics.
pub fn batch_interference(stmts: &[(usize, Footprint)]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, (line_a, fp_a)) in stmts.iter().enumerate() {
        for (line_b, fp_b) in stmts.iter().skip(i + 1) {
            if let Some(why) = interferes(fp_a, fp_b) {
                diags.push(Diagnostic::new(
                    A301,
                    Severity::Warning,
                    format!(
                        "statements at lines {line_a} and {line_b} interfere: {why}; \
                         run concurrently one is guaranteed to abort \
                         (disjoint `suchthat` ranges would decouple them)"
                    ),
                ));
            }
        }
    }
    diags
}

/// A302 over a class's triggers: `(name, perpetual, members-read-by-
/// condition, members-written-by-actions)` per trigger; every pair that
/// reads the other's writes *in both directions* is write-skew-prone
/// under decoupled firing. Pairs where both triggers are perpetual are
/// skipped: a mutual read/write crossing between perpetual triggers is
/// a two-trigger cycle, which the A009 cycle check already reports.
pub(crate) fn trigger_write_skew(
    triggers: &[(String, bool, BTreeSet<String>, BTreeSet<String>)],
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (i, (name_a, perp_a, reads_a, writes_a)) in triggers.iter().enumerate() {
        for (name_b, perp_b, reads_b, writes_b) in triggers.iter().skip(i + 1) {
            if *perp_a && *perp_b {
                continue;
            }
            let a_reads_b: Vec<&String> = reads_a.intersection(writes_b).collect();
            let b_reads_a: Vec<&String> = reads_b.intersection(writes_a).collect();
            if !a_reads_b.is_empty() && !b_reads_a.is_empty() {
                let fmt = |xs: &[&String]| {
                    xs.iter()
                        .map(|s| format!("`{s}`"))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                diags.push(Diagnostic::new(
                    A302,
                    Severity::Warning,
                    format!(
                        "triggers `{name_a}` and `{name_b}` are write-skew-prone: \
                         `{name_a}` reads {} which `{name_b}` writes, and `{name_b}` \
                         reads {} which `{name_a}` writes; decoupled firing order \
                         decides the outcome",
                        fmt(&a_reads_b),
                        fmt(&b_reads_a),
                    ),
                ));
            }
        }
    }
    diags
}
