//! The footprint pass: infer, per statement, a sound over-approximation
//! of the clusters it reads and writes — which classes, deep or shallow,
//! which index could answer it, which key ranges the predicate pins, and
//! which fields an update assigns.
//!
//! A footprint is a *proof obligation carrier*: everything a statement
//! can read is inside `reads`, everything it can write inside `writes`.
//! The interference analyzer ([`crate::interfere`]) intersects footprints
//! to find statically-guaranteed conflicts, and the engine narrows its
//! commit-time validation to the proven key ranges (DESIGN.md §14).

use ode_model::range::{extract_field_ranges, extract_qualified_ranges, FieldRange, ValueRange};
use ode_model::{Expr, Schema, Value};

use crate::{CatalogView, StmtKind};

/// One cluster touched by a statement: the class (hence its extent
/// heaps), how much of the hierarchy, the index that could answer it,
/// the key ranges the predicate pins, and — for writes — the assigned
/// fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterAccess {
    /// Class whose extent is touched.
    pub class: String,
    /// Deep (hierarchy) access, or shallow (`only`).
    pub deep: bool,
    /// Indexed field an index probe could answer this access from.
    pub index: Option<String>,
    /// Per-field intervals the predicate implies for every touched
    /// object (empty = whole extent).
    pub ranges: Vec<FieldRange>,
    /// Fields written (`update … set`, `pnew` initializers). Empty for
    /// reads and for whole-object writes (`delete`).
    pub fields: Vec<String>,
}

impl ClusterAccess {
    fn read(class: &str, deep: bool) -> ClusterAccess {
        ClusterAccess {
            class: class.to_string(),
            deep,
            index: None,
            ranges: Vec::new(),
            fields: Vec::new(),
        }
    }
}

impl std::fmt::Display for ClusterAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.deep {
            write!(f, "only ")?;
        }
        write!(f, "{}", self.class)?;
        if !self.ranges.is_empty() {
            let parts: Vec<String> = self.ranges.iter().map(|r| r.to_string()).collect();
            write!(f, "[{}]", parts.join(", "))?;
        }
        if let Some(field) = &self.index {
            write!(f, " via index({field})")?;
        }
        if !self.fields.is_empty() {
            write!(f, " set {}", self.fields.join(", "))?;
        }
        Ok(())
    }
}

/// A statement's inferred read/write footprint.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Footprint {
    /// Clusters (and ranges) the statement may read.
    pub reads: Vec<ClusterAccess>,
    /// Clusters (and ranges/fields) the statement may write.
    pub writes: Vec<ClusterAccess>,
}

impl Footprint {
    /// Is the statement proven to write nothing? A read-only statement
    /// needs no epoch claim, no commit validation, and can run on the
    /// snapshot read path.
    pub fn read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

impl std::fmt::Display for Footprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let join = |accs: &[ClusterAccess]| -> String {
            if accs.is_empty() {
                "-".to_string()
            } else {
                accs.iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join("; ")
            }
        };
        write!(
            f,
            "reads {}; writes {}{}",
            join(&self.reads),
            join(&self.writes),
            if self.read_only() { " (read-only)" } else { "" }
        )
    }
}

/// Infer the footprint of one statement. Sound by construction: ranges
/// come from [`extract_field_ranges`], which only narrows on conjuncts
/// the predicate implies; anything unanalyzable widens to whole-extent.
pub fn footprint_of(
    schema: &Schema,
    catalog: Option<&CatalogView>,
    stmt: &StmtKind<'_>,
) -> Footprint {
    match stmt {
        StmtKind::Query {
            bindings, suchthat, ..
        } => Footprint {
            reads: read_accesses(schema, catalog, bindings, *suchthat),
            writes: Vec::new(),
        },
        StmtKind::Update {
            bindings,
            suchthat,
            assigns,
        } => {
            let reads = read_accesses(schema, catalog, bindings, *suchthat);
            let mut write = reads.first().cloned().unwrap_or_default_access(bindings);
            write.fields = assigns.iter().map(|(f, _)| f.clone()).collect();
            write.fields.sort();
            write.fields.dedup();
            // An assigned field's range only holds for the *pre-write*
            // state (`suchthat k == 1 set k = 5` writes objects whose
            // post-state escapes [1,1]); drop those ranges so no
            // disjointness proof leans on them.
            write.ranges.retain(|r| !write.fields.contains(&r.field));
            Footprint {
                reads,
                writes: vec![write],
            }
        }
        StmtKind::Delete {
            bindings, suchthat, ..
        } => {
            let reads = read_accesses(schema, catalog, bindings, *suchthat);
            let write = reads.first().cloned().unwrap_or_default_access(bindings);
            Footprint {
                reads,
                writes: vec![write],
            }
        }
        StmtKind::Pnew { class, inits } => {
            let mut ranges = Vec::new();
            let mut fields = Vec::new();
            for (field, expr) in inits.iter() {
                fields.push(field.clone());
                if let Some(v) = literal_value(expr) {
                    ranges.push(FieldRange {
                        field: field.clone(),
                        range: ValueRange::point(v),
                    });
                }
            }
            fields.sort();
            fields.dedup();
            Footprint {
                reads: Vec::new(),
                writes: vec![ClusterAccess {
                    class: class.to_string(),
                    deep: false,
                    index: None,
                    ranges,
                    fields,
                }],
            }
        }
    }
}

/// Per-binding read accesses for the query-shaped statements.
fn read_accesses(
    schema: &Schema,
    catalog: Option<&CatalogView>,
    bindings: &[(String, String, bool)],
    suchthat: Option<&Expr>,
) -> Vec<ClusterAccess> {
    let single = bindings.len() == 1;
    bindings
        .iter()
        .map(|(var, class, deep)| {
            let mut acc = ClusterAccess::read(class, *deep);
            if let Some(pred) = suchthat {
                // In a join, a bare identifier could resolve against any
                // binding — only `var.field` references are attributable.
                acc.ranges = if single {
                    extract_field_ranges(pred, Some(var))
                } else {
                    extract_qualified_ranges(pred, var)
                };
                // The engine probes an index only over the deep extent
                // (committed index entries summarize the hierarchy).
                if *deep {
                    if let (Some(cat), Ok(def)) = (catalog, schema.class_by_name(class)) {
                        acc.index = acc
                            .ranges
                            .iter()
                            .map(|r| r.field.as_str())
                            .find(|f| cat.is_indexed(def.id, f))
                            .map(str::to_string);
                    }
                }
            }
            acc
        })
        .collect()
}

/// A literal initializer value, for `pnew` point ranges.
fn literal_value(e: &Expr) -> Option<Value> {
    match e {
        Expr::Lit(v) => Some(v.clone()),
        Expr::Unary(ode_model::UnOp::Neg, inner) => match inner.as_ref() {
            Expr::Lit(Value::Int(i)) => Some(Value::Int(-i)),
            Expr::Lit(Value::Float(x)) => Some(Value::Float(-x)),
            _ => None,
        },
        _ => None,
    }
}

/// Fallback write access when the read side produced nothing (unknown
/// class): still name the class so interference stays conservative.
trait OrDefaultAccess {
    fn unwrap_or_default_access(self, bindings: &[(String, String, bool)]) -> ClusterAccess;
}

impl OrDefaultAccess for Option<ClusterAccess> {
    fn unwrap_or_default_access(self, bindings: &[(String, String, bool)]) -> ClusterAccess {
        self.unwrap_or_else(|| {
            let (_, class, deep) = &bindings[0];
            ClusterAccess::read(class, *deep)
        })
    }
}
