//! Static semantic analysis for O++ statements and schemas.
//!
//! The paper's O++ is a *compiled* language: unknown members, type
//! mismatches, and ill-formed constraints are rejected by the compiler,
//! never discovered halfway through a `forall` that has already visited
//! thousands of objects. This crate restores that front-end: a
//! catalog-aware checker that runs on every parsed statement *before* a
//! write transaction is opened or a snapshot is taken (§2 classes, §3.1
//! `suchthat`/`by` typing, §3.2 fixpoint safety, §5 constraints, §6
//! triggers).
//!
//! The crate deliberately depends only on `ode-model`: the engine
//! (`ode-core`) parses its statement forms, lowers them to the
//! plain-data [`StmtKind`] IR here, and supplies catalog facts (which
//! `(class, field)` pairs are indexed) as a [`CatalogView`]. That keeps
//! the dependency arrow pointing the same way as the rest of the stack
//! (model ← analyze ← core ← shell/server).
//!
//! Three families of passes, each producing [`Diagnostic`]s with stable
//! codes (see DESIGN.md §9 for the full table):
//!
//! * **statement analysis** ([`analyze_stmt`]) — name/type resolution of
//!   every member access, method call, and loop variable; per-binding
//!   checks for multi-variable joins; lints for provably unsatisfiable
//!   `suchthat` ranges, non-orderable `by` keys, unindexed equality
//!   predicates, and `is`-tests outside the cluster hierarchy.
//! * **schema analysis** ([`analyze_class`]) — at DDL time: constraint
//!   contradictions across a class and its superclasses (§5
//!   constraint-based specialization), perpetual-trigger dependency
//!   cycles (§6), and type checks over constraint/trigger expressions.
//! * **fixpoint safety** ([`check_fixpoint_body`]) — a §3.2 recursive
//!   `forall` body may only *add* to the iterated cluster; a body that
//!   deletes from it is rejected.

mod ddl;
pub mod footprint;
mod infer;
pub mod interfere;
mod sat;

use std::collections::HashSet;
use std::fmt;

use ode_model::{ClassId, Expr, Schema};

pub use ddl::{analyze_class, check_fixpoint_body};
pub use footprint::{footprint_of, ClusterAccess, Footprint};
pub use interfere::batch_interference;

// ------------------------------------------------------------ diagnostics

/// Where in the statement source a diagnostic points (byte offsets).
///
/// Spans are best-effort: the expression AST carries no positions, so
/// the analyzer locates the offending token by searching the statement
/// text. A span is omitted when the token cannot be found verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub offset: usize,
    /// Length in bytes.
    pub len: usize,
}

/// Diagnostic severity. Errors abort the statement before any
/// transaction work; warnings are advisory and never block execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Advisory: the statement runs, but is probably not what was meant.
    Warning,
    /// The statement is rejected before a transaction is opened.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analyzer finding: a stable code, severity, message, and an
/// optional span into the statement source.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code (`A001` …). Codes never change meaning; tools may
    /// match on them.
    pub code: &'static str,
    /// Error (blocks execution) or warning (advisory).
    pub severity: Severity,
    /// Human-readable explanation.
    pub message: String,
    /// Best-effort location in the statement source.
    pub span: Option<Span>,
}

impl Diagnostic {
    pub(crate) fn new(code: &'static str, severity: Severity, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            message,
            span: None,
        }
    }

    /// A001 for a class the schema does not know — the engine uses this
    /// for `create cluster`-style statements it classifies itself.
    pub fn unknown_class(class: &str, src: &str) -> Diagnostic {
        Diagnostic::new(A001, Severity::Error, format!("unknown class `{class}`"))
            .locate(src, class)
    }

    /// A000 for a statement the engine could not parse at all — used by
    /// batch lint (`.check`), where a parse failure must still be a
    /// coded, per-statement finding rather than aborting the whole file.
    pub fn parse_failure(message: String) -> Diagnostic {
        Diagnostic::new(A000, Severity::Error, message)
    }

    /// A002 for a member the class does not declare.
    pub fn unknown_member(class: &str, member: &str, src: &str) -> Diagnostic {
        Diagnostic::new(
            A002,
            Severity::Error,
            format!("class `{class}` has no member `{member}`"),
        )
        .locate(src, member)
    }

    /// Attach a span by locating `token` in `src` (first occurrence).
    pub(crate) fn locate(mut self, src: &str, token: &str) -> Diagnostic {
        if !token.is_empty() {
            if let Some(offset) = src.find(token) {
                self.span = Some(Span {
                    offset,
                    len: token.len(),
                });
            }
        }
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(span) = self.span {
            write!(f, " (at byte {})", span.offset)?;
        }
        Ok(())
    }
}

/// Do any of the diagnostics carry [`Severity::Error`]?
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}

// Stable diagnostic codes. `A0xx` are errors, `A1xx` are warnings —
// except A009 (trigger cycle), which is advisory because the read/write
// graph cannot prove non-termination and the engine bounds cascades at
// runtime.
pub(crate) const A000: &str = "A000"; // statement does not parse
pub(crate) const A001: &str = "A001"; // unknown class
pub(crate) const A002: &str = "A002"; // unknown member
pub(crate) const A003: &str = "A003"; // unknown method
pub(crate) const A004: &str = "A004"; // unresolved variable
pub(crate) const A005: &str = "A005"; // type mismatch
pub(crate) const A006: &str = "A006"; // `by` key not totally ordered
pub(crate) const A007: &str = "A007"; // DML assignment type mismatch
pub(crate) const A008: &str = "A008"; // contradictory constraints (DDL)
pub(crate) const A009: &str = "A009"; // perpetual trigger cycle (DDL, warning)
pub(crate) const A010: &str = "A010"; // fixpoint body deletes from cluster
pub(crate) const A101: &str = "A101"; // suchthat provably unsatisfiable
pub(crate) const A102: &str = "A102"; // unindexed equality predicate
pub(crate) const A103: &str = "A103"; // is-test outside the hierarchy

// `A2xx` are active-database lints (warnings): trigger/scheduler shapes
// that run, but probably not the way the author meant.
pub(crate) const A201: &str = "A201"; // perpetual trigger re-satisfies itself

// `A3xx` are interference lints (warnings): footprints that cannot be
// proven disjoint, so the statements or triggers are going to serialize
// — or abort each other — at run time.
pub(crate) const A301: &str = "A301"; // interfering statement pair in a batch
pub(crate) const A302: &str = "A302"; // write-skew-prone trigger pair

// ------------------------------------------------------------ inputs

/// Catalog facts the analyzer cannot learn from the [`Schema`] alone.
/// Built by the engine from its live catalog under the schema lock.
#[derive(Debug, Clone, Default)]
pub struct CatalogView {
    /// `(class, field)` pairs backed by a B-tree index — the basis for
    /// the unindexed-predicate lint (A102, cross-referenced in
    /// `explain`'s plan strategy).
    pub indexed: HashSet<(ClassId, String)>,
}

impl CatalogView {
    fn is_indexed(&self, class: ClassId, field: &str) -> bool {
        self.indexed.contains(&(class, field.to_string()))
    }
}

/// The analyzer's statement IR: a borrowed, plain-data view of a parsed
/// statement. The engine lowers its own parse trees into this shape.
#[derive(Debug)]
pub enum StmtKind<'a> {
    /// `forall v in cluster [only] (, w in cluster2 …) suchthat (…) by (…)`
    /// — also the payload of `explain`.
    Query {
        /// `(variable, class, only)` per binding, join order preserved.
        bindings: &'a [(String, String, bool)],
        /// The `suchthat` predicate, if any.
        suchthat: Option<&'a Expr>,
        /// The `by` ordering key and descending flag, if any.
        by: Option<(&'a Expr, bool)>,
    },
    /// `pnew class (field = expr, …)`.
    Pnew {
        /// Target class.
        class: &'a str,
        /// Field initializers.
        inits: &'a [(String, Expr)],
    },
    /// `update v in cluster suchthat (…) set field = expr, …`.
    Update {
        /// `(variable, class, only)` bindings.
        bindings: &'a [(String, String, bool)],
        /// The `suchthat` predicate, if any.
        suchthat: Option<&'a Expr>,
        /// `set` assignments.
        assigns: &'a [(String, Expr)],
    },
    /// `delete v in cluster suchthat (…)`.
    Delete {
        /// `(variable, class, only)` bindings.
        bindings: &'a [(String, String, bool)],
        /// The `suchthat` predicate, if any.
        suchthat: Option<&'a Expr>,
    },
}

// ------------------------------------------------------------ statements

/// Analyze one statement against the schema and catalog. `src` is the
/// statement's source text (used only for spans); `catalog` enables the
/// index-awareness lints when present.
pub fn analyze_stmt(
    schema: &Schema,
    catalog: Option<&CatalogView>,
    src: &str,
    stmt: &StmtKind<'_>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    match stmt {
        StmtKind::Query {
            bindings,
            suchthat,
            by,
        } => {
            analyze_query(
                schema, catalog, src, bindings, *suchthat, *by, &mut diags, true,
            );
        }
        StmtKind::Pnew { class, inits } => {
            analyze_pnew(schema, src, class, inits, &mut diags);
        }
        StmtKind::Update {
            bindings,
            suchthat,
            assigns,
        } => {
            analyze_query(
                schema, catalog, src, bindings, *suchthat, None, &mut diags, false,
            );
            if let Some(scope) = infer::Scope::for_bindings(schema, bindings) {
                for (field, expr) in assigns.iter() {
                    check_assignment(schema, src, &scope, bindings, field, expr, &mut diags);
                }
            }
        }
        StmtKind::Delete {
            bindings, suchthat, ..
        } => {
            analyze_query(
                schema, catalog, src, bindings, *suchthat, None, &mut diags, false,
            );
        }
    }
    dedup(diags)
}

/// Shared analysis for the query-shaped statements (`forall`, `update`,
/// `delete`): binding resolution, predicate typing, satisfiability,
/// `by`-key orderability, and the unindexed-predicate lint.
#[allow(clippy::too_many_arguments)]
fn analyze_query(
    schema: &Schema,
    catalog: Option<&CatalogView>,
    src: &str,
    bindings: &[(String, String, bool)],
    suchthat: Option<&Expr>,
    by: Option<(&Expr, bool)>,
    diags: &mut Vec<Diagnostic>,
    lint_index: bool,
) {
    for (_, class, _) in bindings {
        if schema.class_by_name(class).is_err() {
            diags.push(
                Diagnostic::new(A001, Severity::Error, format!("unknown class `{class}`"))
                    .locate(src, class),
            );
        }
    }
    // Name/type resolution needs every binding resolved; bail out of the
    // deeper passes when a class is unknown rather than cascade.
    let Some(scope) = infer::Scope::for_bindings(schema, bindings) else {
        return;
    };
    if let Some(pred) = suchthat {
        let ty = infer::infer(schema, &scope, src, pred, diags);
        if !ty.is_boolish() {
            diags.push(Diagnostic::new(
                A005,
                Severity::Error,
                format!(
                    "suchthat predicate has type {}, expected bool",
                    ty.describe(schema)
                ),
            ));
        }
        sat::check_satisfiable(src, pred, diags);
        if lint_index {
            if let Some(cat) = catalog {
                lint_unindexed(schema, cat, src, bindings, pred, diags);
            }
        }
    }
    if let Some((key, _)) = by {
        let ty = infer::infer(schema, &scope, src, key, diags);
        if !ty.is_orderable() {
            diags.push(Diagnostic::new(
                A006,
                Severity::Error,
                format!(
                    "`by` key has type {}, which is not totally ordered \
                     (only numbers and strings sort)",
                    ty.describe(schema)
                ),
            ));
        }
    }
}

fn analyze_pnew(
    schema: &Schema,
    src: &str,
    class: &str,
    inits: &[(String, Expr)],
    diags: &mut Vec<Diagnostic>,
) {
    let Ok(def) = schema.class_by_name(class) else {
        diags.push(
            Diagnostic::new(A001, Severity::Error, format!("unknown class `{class}`"))
                .locate(src, class),
        );
        return;
    };
    // Initializers evaluate with no object in scope: bare identifiers
    // would be unresolved at run time, so only literal-ish expressions
    // and parameters of already-checked shape appear here.
    let scope = infer::Scope::free(schema);
    for (field, expr) in inits {
        let value_ty = infer::infer(schema, &scope, src, expr, diags);
        match def.field(field) {
            Ok(layout) => {
                if !value_ty.assignable_to(schema, &layout.ty) {
                    diags.push(
                        Diagnostic::new(
                            A007,
                            Severity::Error,
                            format!(
                                "cannot initialize `{class}.{field}` ({}) with a value of type {}",
                                layout.ty.name(),
                                value_ty.describe(schema)
                            ),
                        )
                        .locate(src, field),
                    );
                }
            }
            Err(_) => diags.push(
                Diagnostic::new(
                    A002,
                    Severity::Error,
                    format!("class `{class}` has no member `{field}`"),
                )
                .locate(src, field),
            ),
        }
    }
}

/// Check one `set field = expr` assignment of an `update` statement.
fn check_assignment(
    schema: &Schema,
    src: &str,
    scope: &infer::Scope<'_>,
    bindings: &[(String, String, bool)],
    field: &str,
    expr: &Expr,
    diags: &mut Vec<Diagnostic>,
) {
    let (_, class, _) = &bindings[0];
    let Ok(def) = schema.class_by_name(class) else {
        return;
    };
    let value_ty = infer::infer(schema, scope, src, expr, diags);
    match def.field(field) {
        Ok(layout) => {
            if !value_ty.assignable_to(schema, &layout.ty) {
                diags.push(
                    Diagnostic::new(
                        A007,
                        Severity::Error,
                        format!(
                            "cannot assign a value of type {} to `{class}.{field}` ({})",
                            value_ty.describe(schema),
                            layout.ty.name()
                        ),
                    )
                    .locate(src, field),
                );
            }
        }
        Err(_) => diags.push(
            Diagnostic::new(
                A002,
                Severity::Error,
                format!("class `{class}` has no member `{field}`"),
            )
            .locate(src, field),
        ),
    }
}

/// A102: an equality conjunct on a member where no mentioned member of
/// that binding is indexed — the binding will scan its extent. For a
/// single binding any equality against a literal counts; in a join,
/// each binding is checked separately and `a.k == b.owner`-style
/// equalities count too (that is exactly the probe key an index join
/// would want). Cross-referenced with `explain`'s plan strategy, which
/// would show `deep extent scan` for the same statement.
fn lint_unindexed(
    schema: &Schema,
    catalog: &CatalogView,
    src: &str,
    bindings: &[(String, String, bool)],
    pred: &Expr,
    diags: &mut Vec<Diagnostic>,
) {
    let single = bindings.len() == 1;
    for (var, class, _) in bindings {
        let Ok(def) = schema.class_by_name(class) else {
            continue;
        };
        let eq_members = if single {
            sat::equality_members(pred, var, def)
        } else {
            sat::join_equality_members(pred, var, def)
        };
        if eq_members.is_empty() {
            continue;
        }
        if eq_members
            .iter()
            .any(|f| catalog.is_indexed(def.id, f.as_str()))
        {
            continue;
        }
        let field = &eq_members[0];
        let detail = if single {
            "the query will scan the extent".to_string()
        } else {
            format!("the join will scan `{var}`'s extent per outer row")
        };
        diags.push(
            Diagnostic::new(
                A102,
                Severity::Warning,
                format!(
                    "equality on `{class}.{field}` has no index; {detail} \
                     (`explain` shows the plan, `create index {class} {field}` \
                     would probe)"
                ),
            )
            .locate(src, field),
        );
    }
}

/// Drop exact-duplicate diagnostics (the same unresolved name reported
/// from several sub-expressions reads as noise).
pub(crate) fn dedup(diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut seen = HashSet::new();
    diags
        .into_iter()
        .filter(|d| seen.insert((d.code, d.message.clone())))
        .collect()
}

#[cfg(test)]
mod tests;
