//! Schema-level analysis, run at DDL time: constraint contradictions
//! across a class and its superclasses (§5 constraint-based
//! specialization), perpetual-trigger dependency cycles (§6), type
//! checks over constraint and trigger expressions, and the §3.2
//! fixpoint-safety check.

use std::collections::{BTreeSet, HashMap, HashSet};

use ode_model::{ClassId, Schema, TriggerAction};

use crate::infer::{self, Scope};
use crate::{
    dedup, interfere, sat, Diagnostic, Severity, StmtKind, A002, A003, A005, A007, A009, A010, A201,
};

/// Analyze a just-defined class (and everything it inherits). Called by
/// the engine after the definition has been applied to a scratch copy of
/// the schema, so the class is fully linearized here but nothing has
/// been committed to the catalog yet.
pub fn analyze_class(schema: &Schema, class: ClassId) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Ok(def) = schema.class(class) else {
        return diags;
    };
    let name = def.name.clone();

    // §5 — constraints: each must type-check as a boolean over the
    // class's members, and their conjunction must be satisfiable.
    let Ok(constraints) = schema.all_constraints(class) else {
        return diags;
    };
    for (_, cons) in &constraints {
        let scope = Scope::for_this(class, false);
        let ty = infer::infer(schema, &scope, &cons.src, &cons.expr, &mut diags);
        if !ty.is_boolish() {
            diags.push(Diagnostic::new(
                A005,
                Severity::Error,
                format!(
                    "constraint `{}` on class `{name}` has type {}, expected bool",
                    cons.name,
                    ty.describe(schema)
                ),
            ));
        }
    }
    sat::check_constraints_satisfiable(&name, constraints.iter().map(|(_, c)| &c.expr), &mut diags);

    // §6 — triggers: conditions are boolean predicates over the members
    // (activation parameters allowed), actions assign type-correct
    // values to real members.
    let Ok(triggers) = schema.all_triggers(class) else {
        return diags;
    };
    for (_, trig) in &triggers {
        let scope = Scope::for_this(class, true);
        let ty = infer::infer(
            schema,
            &scope,
            &trig.condition_src,
            &trig.condition,
            &mut diags,
        );
        if !ty.is_boolish() {
            diags.push(Diagnostic::new(
                A005,
                Severity::Error,
                format!(
                    "trigger `{}` on class `{name}` has a condition of type {}, expected bool",
                    trig.name,
                    ty.describe(schema)
                ),
            ));
        }
        for action in &trig.actions {
            if let TriggerAction::Assign { field, src, expr } = action {
                let value_ty = infer::infer(schema, &scope, src, expr, &mut diags);
                match def.field(field) {
                    Ok(layout) => {
                        if !value_ty.assignable_to(schema, &layout.ty) {
                            diags.push(Diagnostic::new(
                                A007,
                                Severity::Error,
                                format!(
                                    "trigger `{}` assigns a value of type {} to \
                                     `{name}.{field}` ({})",
                                    trig.name,
                                    value_ty.describe(schema),
                                    layout.ty.name()
                                ),
                            ));
                        }
                    }
                    Err(_) => diags.push(Diagnostic::new(
                        A002,
                        Severity::Error,
                        format!(
                            "trigger `{}` assigns to `{field}`, which is not a \
                             member of class `{name}`",
                            trig.name
                        ),
                    )),
                }
            }
        }
    }
    check_trigger_cycles(&name, &triggers, &mut diags);
    // A302 — write-skew-prone pairs: unlike the cycle check, this covers
    // *all* triggers (a once-only trigger still races a concurrent one
    // under decoupled firing). Footprints here are member sets: the
    // condition's free identifiers are its read set, `Assign` targets
    // the write set.
    let trigger_footprints: Vec<(String, bool, BTreeSet<String>, BTreeSet<String>)> = triggers
        .iter()
        .map(|(_, t)| {
            let reads = t
                .condition
                .free_idents()
                .into_iter()
                .map(str::to_string)
                .collect();
            let writes = t
                .actions
                .iter()
                .filter_map(|a| match a {
                    TriggerAction::Assign { field, .. } => Some(field.clone()),
                    TriggerAction::Callback { .. } => None,
                })
                .collect();
            (t.name.clone(), t.perpetual, reads, writes)
        })
        .collect();
    diags.extend(interfere::trigger_write_skew(&trigger_footprints));
    // Methods are registered at runtime *after* the class is defined
    // (registration needs the class to exist), so an unknown method in a
    // constraint or trigger at DDL time is not evidence of an error —
    // drop A003 here. Query analysis keeps it: by then the schema has
    // settled and every method the program uses is registered.
    diags.retain(|d| d.code != A003);
    dedup(diags)
}

/// A201 and A009: perpetual triggers that can re-arm themselves or each
/// other.
///
/// Edge `T → U` when an action of `T` assigns a member that `U`'s
/// condition reads: firing `T` re-evaluates `U`'s condition with a value
/// `T` just changed. Once-only triggers fire at most once, so they break
/// any cycle they are on and are excluded from the graph.
///
/// A *self-loop* — a perpetual trigger whose own action can re-satisfy
/// its condition — gets the dedicated A201 lint naming the overlapping
/// member, because the fix is local to one trigger; self-edges are then
/// excluded from the A009 cycle search, which reports only genuine
/// multi-trigger cycles.
///
/// Both are warnings, not errors: the read/write graph cannot see
/// whether the condition eventually goes false (`n < 5` with `n = n + 1`
/// is a self-loop that terminates), and the engine bounds runaway
/// cascades at runtime anyway (the trigger cascade depth limit).
fn check_trigger_cycles(
    class: &str,
    triggers: &[(&ode_model::ClassDef, &ode_model::TriggerDecl)],
    diags: &mut Vec<Diagnostic>,
) {
    let perpetual: Vec<_> = triggers.iter().filter(|(_, t)| t.perpetual).collect();
    if perpetual.is_empty() {
        return;
    }
    let reads: Vec<HashSet<&str>> = perpetual
        .iter()
        .map(|(_, t)| t.condition.free_idents().into_iter().collect())
        .collect();
    let writes: Vec<HashSet<&str>> = perpetual
        .iter()
        .map(|(_, t)| {
            t.actions
                .iter()
                .filter_map(|a| match a {
                    TriggerAction::Assign { field, .. } => Some(field.as_str()),
                    TriggerAction::Callback { .. } => None,
                })
                .collect()
        })
        .collect();
    let n = perpetual.len();
    for i in 0..n {
        let mut overlap: Vec<&str> = writes[i]
            .iter()
            .filter(|f| reads[i].contains(*f))
            .copied()
            .collect();
        if !overlap.is_empty() {
            overlap.sort_unstable();
            diags.push(Diagnostic::new(
                A201,
                Severity::Warning,
                format!(
                    "perpetual trigger `{}` on class `{class}` assigns `{}`, \
                     which its own condition reads — each firing can \
                     re-satisfy the condition and fire again (bounded only \
                     by the runtime cascade limit)",
                    perpetual[i].1.name,
                    overlap.join("`, `"),
                ),
            ));
        }
    }
    let edges: Vec<Vec<usize>> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i && writes[i].iter().any(|f| reads[j].contains(f)))
                .collect()
        })
        .collect();
    // Iterative DFS with colors; report the first cycle found.
    let mut color: HashMap<usize, u8> = HashMap::new(); // 1 = on stack, 2 = done
    for start in 0..n {
        if color.contains_key(&start) {
            continue;
        }
        let mut stack = vec![(start, 0usize)];
        color.insert(start, 1);
        let mut path = vec![start];
        while let Some((node, next)) = stack.pop() {
            if next < edges[node].len() {
                stack.push((node, next + 1));
                let to = edges[node][next];
                match color.get(&to) {
                    Some(1) => {
                        let names: Vec<&str> = path
                            .iter()
                            .skip_while(|&&p| p != to)
                            .map(|&p| perpetual[p].1.name.as_str())
                            .chain(std::iter::once(perpetual[to].1.name.as_str()))
                            .collect();
                        diags.push(Diagnostic::new(
                            A009,
                            Severity::Warning,
                            format!(
                                "perpetual trigger cycle on class `{class}`: \
                                 {} — each firing re-arms the next; the \
                                 cascade may not quiesce (bounded only by \
                                 the runtime cascade limit)",
                                names.join(" -> ")
                            ),
                        ));
                        return;
                    }
                    Some(_) => {}
                    None => {
                        color.insert(to, 1);
                        path.push(to);
                        stack.push((to, 0));
                    }
                }
            } else {
                color.insert(node, 2);
                if path.last() == Some(&node) {
                    path.pop();
                }
            }
        }
    }
}

/// A010 — §3.2 fixpoint safety: the body of a recursive `forall` may
/// only *add* to the cluster being iterated. A body that deletes from
/// the iterated hierarchy could remove objects the fixpoint has not yet
/// visited, so its termination and coverage guarantees evaporate.
pub fn check_fixpoint_body(
    schema: &Schema,
    iterated: &str,
    body: &StmtKind<'_>,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let Ok(iter_id) = schema.id_of(iterated) else {
        return diags;
    };
    if let StmtKind::Delete { bindings, .. } = body {
        for (_, class, _) in bindings.iter() {
            let Ok(target) = schema.id_of(class) else {
                continue;
            };
            let overlaps = schema
                .classes()
                .iter()
                .any(|d| schema.is_subclass(d.id, iter_id) && schema.is_subclass(d.id, target));
            if overlaps {
                diags.push(Diagnostic::new(
                    A010,
                    Severity::Error,
                    format!(
                        "fixpoint body deletes from `{class}`, which is inside \
                         the iterated `{iterated}` hierarchy; a recursive \
                         forall body may only add objects (§3.2)"
                    ),
                ));
            }
        }
    }
    diags
}
