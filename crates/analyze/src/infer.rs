//! Static type inference over [`Expr`] trees.
//!
//! Mirrors the evaluator's semantics (`ode-model`'s `eval.rs`) without
//! touching objects: bare identifiers resolve loop variables first, then
//! members of the context class; arithmetic works on numbers (ints
//! coerce to doubles, `+` also concatenates strings); ordering compares
//! numbers with numbers and strings with strings; `==`/`!=` accept any
//! pair of *compatible* types. `Any`/`Null` absorb — inference is
//! deliberately lenient where the evaluator is dynamic, so the analyzer
//! only reports what is provably wrong.

use ode_model::{BinOp, ClassId, Expr, Schema, Type, UnOp, Value};

use crate::{Diagnostic, Severity, A001, A002, A003, A004, A005, A103};

/// The analyzer's abstract type lattice.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum SType {
    Int,
    Float,
    Bool,
    Str,
    /// An object of (statically) this class; the dynamic class may be
    /// any subclass (cluster-hierarchy iteration, §3.1.1).
    Obj(ClassId),
    Array(Box<SType>),
    Set(Box<SType>),
    /// The `null` literal: admitted by every field type.
    Null,
    /// Unknown — from `any`-typed fields, method returns, parameters, or
    /// an earlier error. Absorbs every check.
    Any,
}

impl SType {
    pub(crate) fn from_decl(schema: &Schema, ty: &Type) -> SType {
        match ty {
            Type::Int => SType::Int,
            Type::Float => SType::Float,
            Type::Bool => SType::Bool,
            Type::Str => SType::Str,
            Type::Ref(c) | Type::VRef(c) => match schema.id_of(c) {
                Ok(id) => SType::Obj(id),
                Err(_) => SType::Any,
            },
            Type::Array(e) => SType::Array(Box::new(SType::from_decl(schema, e))),
            Type::Set(e) => SType::Set(Box::new(SType::from_decl(schema, e))),
            Type::Any => SType::Any,
        }
    }

    fn from_value(v: &Value) -> SType {
        match v {
            Value::Null => SType::Null,
            Value::Bool(_) => SType::Bool,
            Value::Int(_) => SType::Int,
            Value::Float(_) => SType::Float,
            Value::Str(_) => SType::Str,
            Value::Ref(_) | Value::VRef(_) => SType::Any,
            Value::Array(_) => SType::Array(Box::new(SType::Any)),
            Value::Set(_) => SType::Set(Box::new(SType::Any)),
        }
    }

    pub(crate) fn is_wild(&self) -> bool {
        matches!(self, SType::Any | SType::Null)
    }

    fn is_numeric(&self) -> bool {
        matches!(self, SType::Int | SType::Float) || self.is_wild()
    }

    pub(crate) fn is_boolish(&self) -> bool {
        matches!(self, SType::Bool) || self.is_wild()
    }

    /// Can `<`/`<=`/`by` order this type? The evaluator's `compare`
    /// orders numbers (cross int/double) and strings, nothing else.
    pub(crate) fn is_orderable(&self) -> bool {
        matches!(self, SType::Int | SType::Float | SType::Str) || self.is_wild()
    }

    /// Are two static types possibly equal at run time? Disjoint
    /// primitives (`"x" == 3`) are a provable mistake.
    fn comparable(&self, other: &SType) -> bool {
        if self.is_wild() || other.is_wild() {
            return true;
        }
        match (self, other) {
            (SType::Int | SType::Float, SType::Int | SType::Float) => true,
            (SType::Obj(_), SType::Obj(_)) => true,
            (SType::Array(_), SType::Array(_)) | (SType::Set(_), SType::Set(_)) => true,
            (a, b) => a == b,
        }
    }

    /// Would a value of this static type be admitted into a field
    /// declared as `decl`? Mirrors `Type::admits` (ints coerce into
    /// double fields; `null` goes anywhere; `any` admits everything).
    pub(crate) fn assignable_to(&self, schema: &Schema, decl: &Type) -> bool {
        if self.is_wild() || matches!(decl, Type::Any) {
            return true;
        }
        match (decl, self) {
            (Type::Int, SType::Int) => true,
            (Type::Float, SType::Float | SType::Int) => true,
            (Type::Bool, SType::Bool) => true,
            (Type::Str, SType::Str) => true,
            (Type::Ref(c) | Type::VRef(c), SType::Obj(id)) => match schema.id_of(c) {
                // A subclass object fits a superclass-typed field.
                Ok(want) => schema.is_subclass(*id, want) || schema.is_subclass(want, *id),
                Err(_) => true,
            },
            (Type::Array(e), SType::Array(got)) => got.is_wild() || got.assignable_to(schema, e),
            (Type::Set(e), SType::Set(got)) => got.is_wild() || got.assignable_to(schema, e),
            _ => false,
        }
    }

    pub(crate) fn describe(&self, schema: &Schema) -> String {
        match self {
            SType::Int => "int".into(),
            SType::Float => "double".into(),
            SType::Bool => "bool".into(),
            SType::Str => "string".into(),
            SType::Obj(id) => match schema.class(*id) {
                Ok(def) => format!("object of class `{}`", def.name),
                Err(_) => "object".into(),
            },
            SType::Array(e) => format!("array of {}", e.describe(schema)),
            SType::Set(e) => format!("set of {}", e.describe(schema)),
            SType::Null => "null".into(),
            SType::Any => "any".into(),
        }
    }
}

/// Name-resolution context for one expression: the loop variables in
/// scope, the implicit `this` class (single-binding queries, constraint
/// and trigger bodies), and whether `$param`s are legal here.
pub(crate) struct Scope<'a> {
    vars: Vec<(&'a str, ClassId)>,
    this_class: Option<ClassId>,
    params_ok: bool,
}

impl<'a> Scope<'a> {
    /// Scope of a query's bindings. `None` if any binding's class is
    /// unknown (already reported as A001 by the caller).
    ///
    /// A single-binding query evaluates its predicate with the candidate
    /// as `this`, so bare names may also be members; join predicates run
    /// without `this` — bare names must be loop variables.
    pub(crate) fn for_bindings(
        schema: &Schema,
        bindings: &'a [(String, String, bool)],
    ) -> Option<Scope<'a>> {
        let mut vars = Vec::with_capacity(bindings.len());
        for (var, class, _) in bindings {
            vars.push((var.as_str(), schema.id_of(class).ok()?));
        }
        let this_class = (bindings.len() == 1).then(|| vars[0].1);
        Some(Scope {
            vars,
            this_class,
            params_ok: false,
        })
    }

    /// Scope with an implicit `this` of `class`: constraint expressions,
    /// trigger conditions/actions (`params_ok` allows `$arg`s there).
    pub(crate) fn for_this(class: ClassId, params_ok: bool) -> Scope<'a> {
        Scope {
            vars: Vec::new(),
            this_class: Some(class),
            params_ok,
        }
    }

    /// No variables, no `this`: `pnew` initializer expressions.
    pub(crate) fn free(_schema: &Schema) -> Scope<'a> {
        Scope {
            vars: Vec::new(),
            this_class: None,
            params_ok: false,
        }
    }

    fn lookup_var(&self, name: &str) -> Option<ClassId> {
        self.vars
            .iter()
            .find(|(v, _)| *v == name)
            .map(|(_, id)| *id)
    }
}

/// Infer the static type of `expr`, pushing diagnostics for everything
/// provably wrong. Returns [`SType::Any`] after reporting an error so
/// one mistake does not cascade.
pub(crate) fn infer(
    schema: &Schema,
    scope: &Scope<'_>,
    src: &str,
    expr: &Expr,
    diags: &mut Vec<Diagnostic>,
) -> SType {
    match expr {
        Expr::Lit(v) => SType::from_value(v),
        Expr::Ident(name) => {
            if let Some(class) = scope.lookup_var(name) {
                return SType::Obj(class);
            }
            if let Some(this) = scope.this_class {
                if let Ok(def) = schema.class(this) {
                    if let Ok(field) = def.field(name) {
                        return SType::from_decl(schema, &field.ty);
                    }
                    diags.push(
                        Diagnostic::new(
                            A002,
                            Severity::Error,
                            format!("class `{}` has no member `{name}`", def.name),
                        )
                        .locate(src, name),
                    );
                    return SType::Any;
                }
            }
            diags.push(
                Diagnostic::new(
                    A004,
                    Severity::Error,
                    format!(
                        "unresolved identifier `{name}`: not a loop variable \
                         (join predicates must qualify members as `var.member`)"
                    ),
                )
                .locate(src, name),
            );
            SType::Any
        }
        Expr::Param(name) => {
            if scope.params_ok {
                SType::Any
            } else {
                diags.push(
                    Diagnostic::new(
                        A004,
                        Severity::Error,
                        format!(
                            "activation parameter `${name}` is only available \
                             in trigger bodies, not in queries"
                        ),
                    )
                    .locate(src, name),
                );
                SType::Any
            }
        }
        Expr::Path(base, member) => {
            let base_ty = infer(schema, scope, src, base, diags);
            match base_ty {
                SType::Obj(class) => {
                    let Ok(def) = schema.class(class) else {
                        return SType::Any;
                    };
                    match def.field(member) {
                        Ok(field) => SType::from_decl(schema, &field.ty),
                        Err(_) => {
                            diags.push(
                                Diagnostic::new(
                                    A002,
                                    Severity::Error,
                                    format!("class `{}` has no member `{member}`", def.name),
                                )
                                .locate(src, member),
                            );
                            SType::Any
                        }
                    }
                }
                ref t if t.is_wild() => SType::Any,
                other => {
                    diags.push(
                        Diagnostic::new(
                            A005,
                            Severity::Error,
                            format!(
                                "member access `.{member}` on a value of type {}",
                                other.describe(schema)
                            ),
                        )
                        .locate(src, member),
                    );
                    SType::Any
                }
            }
        }
        Expr::Unary(op, e) => {
            let t = infer(schema, scope, src, e, diags);
            match op {
                UnOp::Neg => {
                    if !t.is_numeric() {
                        diags.push(Diagnostic::new(
                            A005,
                            Severity::Error,
                            format!("cannot negate a value of type {}", t.describe(schema)),
                        ));
                        SType::Any
                    } else {
                        t
                    }
                }
                UnOp::Not => {
                    if !t.is_boolish() {
                        diags.push(Diagnostic::new(
                            A005,
                            Severity::Error,
                            format!("`!` applies to bool, got {}", t.describe(schema)),
                        ));
                    }
                    SType::Bool
                }
            }
        }
        Expr::Binary(op, l, r) => {
            let lt = infer(schema, scope, src, l, diags);
            let rt = infer(schema, scope, src, r, diags);
            infer_binary(schema, src, *op, &lt, &rt, diags)
        }
        Expr::Call { recv, name, args } => {
            for a in args {
                infer(schema, scope, src, a, diags);
            }
            let recv_class = match recv {
                Some(r) => match infer(schema, scope, src, r, diags) {
                    SType::Obj(c) => Some(c),
                    ref t if t.is_wild() => return SType::Any,
                    other => {
                        diags.push(
                            Diagnostic::new(
                                A005,
                                Severity::Error,
                                format!(
                                    "method call `.{name}()` on a value of type {}",
                                    other.describe(schema)
                                ),
                            )
                            .locate(src, name),
                        );
                        return SType::Any;
                    }
                },
                None => scope.this_class,
            };
            let Some(class) = recv_class else {
                diags.push(
                    Diagnostic::new(
                        A004,
                        Severity::Error,
                        format!("method `{name}()` called without a receiver object"),
                    )
                    .locate(src, name),
                );
                return SType::Any;
            };
            // Methods are registered at run time; the dynamic class may
            // be any subclass of the static one, so only report when no
            // class in the hierarchy knows the method.
            let known_here = schema.lookup_method(class, name).is_ok();
            let known_below = schema
                .descendants(class)
                .into_iter()
                .any(|d| schema.lookup_method(d, name).is_ok());
            if !known_here && !known_below {
                let cname = schema
                    .class(class)
                    .map(|d| d.name.clone())
                    .unwrap_or_default();
                diags.push(
                    Diagnostic::new(
                        A003,
                        Severity::Error,
                        format!(
                            "no method `{name}` registered on class `{cname}` or its subclasses"
                        ),
                    )
                    .locate(src, name),
                );
            }
            SType::Any
        }
        Expr::Is(base, class_name) => {
            let base_ty = infer(schema, scope, src, base, diags);
            let Ok(target) = schema.id_of(class_name) else {
                diags.push(
                    Diagnostic::new(
                        A001,
                        Severity::Error,
                        format!("unknown class `{class_name}` in `is` test"),
                    )
                    .locate(src, class_name),
                );
                return SType::Bool;
            };
            match base_ty {
                SType::Obj(static_class) => {
                    // `x is C` can only be true if some class is at once
                    // a subclass of x's static class (a possible dynamic
                    // class) and of C.
                    let overlaps = schema.classes().iter().any(|d| {
                        schema.is_subclass(d.id, static_class) && schema.is_subclass(d.id, target)
                    });
                    if !overlaps {
                        let sname = schema
                            .class(static_class)
                            .map(|d| d.name.clone())
                            .unwrap_or_default();
                        diags.push(
                            Diagnostic::new(
                                A103,
                                Severity::Warning,
                                format!(
                                    "`is {class_name}` is never true here: `{class_name}` is \
                                     outside `{sname}`'s cluster hierarchy"
                                ),
                            )
                            .locate(src, class_name),
                        );
                    }
                }
                ref t if t.is_wild() => {}
                other => {
                    diags.push(
                        Diagnostic::new(
                            A005,
                            Severity::Error,
                            format!(
                                "`is` tests an object, got a value of type {}",
                                other.describe(schema)
                            ),
                        )
                        .locate(src, class_name),
                    );
                }
            }
            SType::Bool
        }
        Expr::Cond(c, a, b) => {
            let ct = infer(schema, scope, src, c, diags);
            if !ct.is_boolish() {
                diags.push(Diagnostic::new(
                    A005,
                    Severity::Error,
                    format!("condition has type {}, expected bool", ct.describe(schema)),
                ));
            }
            let at = infer(schema, scope, src, a, diags);
            let bt = infer(schema, scope, src, b, diags);
            if at == bt {
                at
            } else {
                SType::Any
            }
        }
        Expr::Index(base, ix) => {
            let bt = infer(schema, scope, src, base, diags);
            let it = infer(schema, scope, src, ix, diags);
            if !matches!(it, SType::Int) && !it.is_wild() {
                diags.push(Diagnostic::new(
                    A005,
                    Severity::Error,
                    format!("index has type {}, expected int", it.describe(schema)),
                ));
            }
            match bt {
                SType::Array(e) => *e,
                SType::Str => SType::Str,
                ref t if t.is_wild() => SType::Any,
                other => {
                    diags.push(Diagnostic::new(
                        A005,
                        Severity::Error,
                        format!("cannot index a value of type {}", other.describe(schema)),
                    ));
                    SType::Any
                }
            }
        }
    }
}

fn infer_binary(
    schema: &Schema,
    _src: &str,
    op: BinOp,
    lt: &SType,
    rt: &SType,
    diags: &mut Vec<Diagnostic>,
) -> SType {
    let mismatch = |diags: &mut Vec<Diagnostic>| {
        diags.push(Diagnostic::new(
            A005,
            Severity::Error,
            format!(
                "`{}` cannot combine {} with {}",
                op.symbol(),
                lt.describe(schema),
                rt.describe(schema)
            ),
        ));
    };
    match op {
        BinOp::Add => {
            if matches!(lt, SType::Str) && matches!(rt, SType::Str) {
                SType::Str
            } else if lt.is_numeric() && rt.is_numeric() {
                if matches!(lt, SType::Float) || matches!(rt, SType::Float) {
                    SType::Float
                } else if lt.is_wild() || rt.is_wild() {
                    SType::Any
                } else {
                    SType::Int
                }
            } else if (matches!(lt, SType::Str) && rt.is_wild())
                || (lt.is_wild() && matches!(rt, SType::Str))
            {
                SType::Str
            } else {
                mismatch(diags);
                SType::Any
            }
        }
        BinOp::Sub | BinOp::Mul | BinOp::Div => {
            if lt.is_numeric() && rt.is_numeric() {
                if matches!(lt, SType::Float) || matches!(rt, SType::Float) {
                    SType::Float
                } else if lt.is_wild() || rt.is_wild() {
                    SType::Any
                } else {
                    SType::Int
                }
            } else {
                mismatch(diags);
                SType::Any
            }
        }
        BinOp::Mod => {
            let int_ok = |t: &SType| matches!(t, SType::Int) || t.is_wild();
            if int_ok(lt) && int_ok(rt) {
                SType::Int
            } else {
                mismatch(diags);
                SType::Any
            }
        }
        BinOp::Eq | BinOp::Ne => {
            if !lt.comparable(rt) {
                diags.push(Diagnostic::new(
                    A005,
                    Severity::Error,
                    format!(
                        "`{}` compares {} with {}: these types are never equal",
                        op.symbol(),
                        lt.describe(schema),
                        rt.describe(schema)
                    ),
                ));
            }
            SType::Bool
        }
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ordered = (lt.is_numeric() && rt.is_numeric())
                || (matches!(lt, SType::Str) && matches!(rt, SType::Str))
                || lt.is_wild()
                || rt.is_wild();
            if !ordered {
                diags.push(Diagnostic::new(
                    A005,
                    Severity::Error,
                    format!(
                        "`{}` orders numbers or strings, got {} and {}",
                        op.symbol(),
                        lt.describe(schema),
                        rt.describe(schema)
                    ),
                ));
            }
            SType::Bool
        }
        BinOp::And | BinOp::Or => {
            for t in [lt, rt] {
                if !t.is_boolish() {
                    diags.push(Diagnostic::new(
                        A005,
                        Severity::Error,
                        format!(
                            "`{}` takes bool operands, got {}",
                            op.symbol(),
                            t.describe(schema)
                        ),
                    ));
                }
            }
            SType::Bool
        }
        BinOp::In => {
            let elem_ok = match rt {
                SType::Set(e) | SType::Array(e) => lt.comparable(e),
                t if t.is_wild() => true,
                _ => {
                    mismatch(diags);
                    true
                }
            };
            if !elem_ok {
                mismatch(diags);
            }
            SType::Bool
        }
    }
}
