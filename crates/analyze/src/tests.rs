use ode_model::{parse_expr, ClassBuilder, Schema, Type};

use super::*;

fn fixture() -> Schema {
    let mut s = Schema::new();
    s.define(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 0i64)
            .field_default("on_order", Type::Int, 0i64)
            .field_default("price", Type::Float, 1.0f64)
            .field("supplies", Type::Set(Box::new(Type::Str)))
            .constraint("quantity >= 0"),
    )
    .unwrap();
    s.define(
        ClassBuilder::new("person")
            .field("name", Type::Str)
            .field_default("age", Type::Int, 0i64)
            .field("friend", Type::Ref("person".into())),
    )
    .unwrap();
    s.define(
        ClassBuilder::new("student")
            .base("person")
            .field_default("gpa", Type::Float, 0.0f64),
    )
    .unwrap();
    s.define(ClassBuilder::new("building").field("floors", Type::Int))
        .unwrap();
    s
}

fn bindings(pairs: &[(&str, &str)]) -> Vec<(String, String, bool)> {
    pairs
        .iter()
        .map(|(v, c)| (v.to_string(), c.to_string(), false))
        .collect()
}

fn check_query(schema: &Schema, binds: &[(&str, &str)], suchthat: &str) -> Vec<Diagnostic> {
    let b = bindings(binds);
    let pred = parse_expr(suchthat).unwrap();
    analyze_stmt(
        schema,
        None,
        suchthat,
        &StmtKind::Query {
            bindings: &b,
            suchthat: Some(&pred),
            by: None,
        },
    )
}

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code).collect()
}

#[test]
fn clean_queries_produce_no_diagnostics() {
    let s = fixture();
    for pred in [
        "quantity > 10 && price < 3.5",
        "name == \"dram\"",
        "\"dram\" in supplies",
        "quantity + on_order >= 100",
        "friend.age > 21",
        "p is student",
    ] {
        let binds = if pred.contains("friend") || pred.contains("is student") {
            vec![("p", "person")]
        } else {
            vec![("s", "stockitem")]
        };
        let diags = check_query(&s, &binds, pred);
        assert!(diags.is_empty(), "{pred}: {diags:?}");
    }
}

#[test]
fn unknown_class_is_a001() {
    let s = fixture();
    let b = bindings(&[("x", "nowhere")]);
    let diags = analyze_stmt(
        &s,
        None,
        "forall x in nowhere",
        &StmtKind::Query {
            bindings: &b,
            suchthat: None,
            by: None,
        },
    );
    assert_eq!(codes(&diags), vec![A001]);
    assert!(diags[0].message.contains("unknown class"), "{diags:?}");
}

#[test]
fn unknown_member_is_a002_with_span() {
    let s = fixture();
    let diags = check_query(&s, &[("s", "stockitem")], "ghost > 1");
    assert_eq!(codes(&diags), vec![A002]);
    assert_eq!(diags[0].span, Some(Span { offset: 0, len: 5 }));
}

#[test]
fn unknown_member_through_path_is_a002() {
    let s = fixture();
    let diags = check_query(&s, &[("p", "person")], "p.salary > 10");
    assert_eq!(codes(&diags), vec![A002]);
    let diags = check_query(&s, &[("p", "person")], "friend.salary > 10");
    assert_eq!(codes(&diags), vec![A002]);
}

#[test]
fn unknown_method_is_a003() {
    let s = fixture();
    let diags = check_query(&s, &[("p", "person")], "p.income() > 10");
    assert_eq!(codes(&diags), vec![A003]);
}

#[test]
fn registered_method_resolves_even_on_a_subclass() {
    let mut s = fixture();
    let student = s.id_of("student").unwrap();
    s.register_method(student, "income", |_, _| Ok(0i64.into()));
    // Static class `person`, method on `student`: deep iteration may
    // legitimately reach students, so this must not be rejected.
    let diags = check_query(&s, &[("p", "person")], "p.income() > 10");
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn bare_ident_in_join_is_a004() {
    let s = fixture();
    let diags = check_query(
        &s,
        &[("p", "person"), ("q", "person")],
        "age > 10 && p.name == q.name",
    );
    assert_eq!(codes(&diags), vec![A004]);
}

#[test]
fn join_members_resolve_per_binding() {
    let s = fixture();
    let diags = check_query(
        &s,
        &[("p", "person"), ("s", "stockitem")],
        "p.name == s.name && s.quantity > p.age",
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn activation_param_in_query_is_a004() {
    let s = fixture();
    let diags = check_query(&s, &[("s", "stockitem")], "quantity < $threshold");
    assert_eq!(codes(&diags), vec![A004]);
}

#[test]
fn type_mismatches_are_a005() {
    let s = fixture();
    for pred in [
        "name > 3",         // string ordered against int
        "name == 3",        // disjoint equality
        "quantity && true", // int as bool operand
        "quantity + name == 0",
        "name in quantity", // membership in a non-collection
    ] {
        let diags = check_query(&s, &[("s", "stockitem")], pred);
        assert!(
            codes(&diags).contains(&A005),
            "{pred} should be A005, got {diags:?}"
        );
    }
    // A non-boolean suchthat is also a type error.
    let diags = check_query(&s, &[("s", "stockitem")], "quantity + 1");
    assert_eq!(codes(&diags), vec![A005]);
}

#[test]
fn unordered_by_key_is_a006() {
    let s = fixture();
    let b = bindings(&[("s", "stockitem")]);
    let key = parse_expr("supplies").unwrap();
    let diags = analyze_stmt(
        &s,
        None,
        "forall s in stockitem by (supplies)",
        &StmtKind::Query {
            bindings: &b,
            suchthat: None,
            by: Some((&key, false)),
        },
    );
    assert_eq!(codes(&diags), vec![A006]);
    // Numeric and string keys are fine.
    for good in ["quantity", "name", "price + 1.0"] {
        let key = parse_expr(good).unwrap();
        let diags = analyze_stmt(
            &s,
            None,
            good,
            &StmtKind::Query {
                bindings: &b,
                suchthat: None,
                by: Some((&key, true)),
            },
        );
        assert!(diags.is_empty(), "{good}: {diags:?}");
    }
}

#[test]
fn pnew_checks_members_and_types() {
    let s = fixture();
    let inits = vec![("ghost".to_string(), parse_expr("1").unwrap())];
    let diags = analyze_stmt(
        &s,
        None,
        "pnew stockitem (ghost = 1)",
        &StmtKind::Pnew {
            class: "stockitem",
            inits: &inits,
        },
    );
    assert_eq!(codes(&diags), vec![A002]);

    let inits = vec![("quantity".to_string(), parse_expr("\"many\"").unwrap())];
    let diags = analyze_stmt(
        &s,
        None,
        "pnew stockitem (quantity = \"many\")",
        &StmtKind::Pnew {
            class: "stockitem",
            inits: &inits,
        },
    );
    assert_eq!(codes(&diags), vec![A007]);

    // Int into a double field coerces, as in C++.
    let inits = vec![("price".to_string(), parse_expr("3").unwrap())];
    let diags = analyze_stmt(
        &s,
        None,
        "pnew stockitem (price = 3)",
        &StmtKind::Pnew {
            class: "stockitem",
            inits: &inits,
        },
    );
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn update_checks_assignments() {
    let s = fixture();
    let b = bindings(&[("s", "stockitem")]);
    let assigns = vec![("quantity".to_string(), parse_expr("name").unwrap())];
    let diags = analyze_stmt(
        &s,
        None,
        "update s in stockitem set quantity = name",
        &StmtKind::Update {
            bindings: &b,
            suchthat: None,
            assigns: &assigns,
        },
    );
    assert_eq!(codes(&diags), vec![A007]);
}

#[test]
fn unsatisfiable_suchthat_is_a101() {
    let s = fixture();
    for pred in [
        "quantity < 10 && quantity > 20",
        "quantity == 1 && quantity == 2",
        "quantity == 5 && quantity != 5",
        "quantity >= 10 && quantity < 10",
        "name == \"a\" && name == \"b\"",
    ] {
        let diags = check_query(&s, &[("s", "stockitem")], pred);
        assert_eq!(codes(&diags), vec![A101], "{pred}: {diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
    }
    // Satisfiable ranges stay silent.
    for pred in [
        "quantity > 10 && quantity < 20",
        "quantity >= 10 && quantity <= 10",
        "quantity != 5 && quantity != 6",
    ] {
        let diags = check_query(&s, &[("s", "stockitem")], pred);
        assert!(diags.is_empty(), "{pred}: {diags:?}");
    }
}

#[test]
fn unindexed_equality_is_a102_only_without_an_index() {
    let s = fixture();
    let b = bindings(&[("s", "stockitem")]);
    let pred = parse_expr("quantity == 7").unwrap();
    let stmt = StmtKind::Query {
        bindings: &b,
        suchthat: Some(&pred),
        by: None,
    };
    let empty = CatalogView::default();
    let diags = analyze_stmt(&s, Some(&empty), "quantity == 7", &stmt);
    assert_eq!(codes(&diags), vec![A102]);
    assert_eq!(diags[0].severity, Severity::Warning);

    let mut indexed = CatalogView::default();
    indexed
        .indexed
        .insert((s.id_of("stockitem").unwrap(), "quantity".to_string()));
    let diags = analyze_stmt(&s, Some(&indexed), "quantity == 7", &stmt);
    assert!(diags.is_empty(), "{diags:?}");

    // Without a catalog (pure schema checking) the lint is off.
    let diags = analyze_stmt(&s, None, "quantity == 7", &stmt);
    assert!(diags.is_empty(), "{diags:?}");
}

#[test]
fn is_test_outside_the_hierarchy_is_a103() {
    let s = fixture();
    let diags = check_query(&s, &[("p", "person")], "p is building");
    assert_eq!(codes(&diags), vec![A103]);
    assert_eq!(diags[0].severity, Severity::Warning);
    // Unknown class in an `is` test is a hard error.
    let diags = check_query(&s, &[("p", "person")], "p is nowhere");
    assert_eq!(codes(&diags), vec![A001]);
}

#[test]
fn contradictory_constraints_are_a008() {
    let mut s = fixture();
    let id = s
        .define(
            ClassBuilder::new("scarce")
                .base("stockitem")
                .constraint("quantity < 0"), // fights inherited quantity >= 0
        )
        .unwrap();
    let diags = analyze_class(&s, id);
    assert_eq!(codes(&diags), vec![A008]);
    assert_eq!(diags[0].severity, Severity::Error);

    // The base class alone is consistent.
    let base = s.id_of("stockitem").unwrap();
    assert!(analyze_class(&s, base).is_empty());
}

#[test]
fn perpetual_trigger_cycle_is_a009() {
    let mut s = Schema::new();
    let id = s
        .define(
            ClassBuilder::new("acct")
                .field_default("a", Type::Int, 0i64)
                .field_default("b", Type::Int, 0i64)
                .trigger("ping", &[], true, "a > 0")
                .action_assign("b", "b + 1")
                .trigger("pong", &[], true, "b > 0")
                .action_assign("a", "a + 1"),
        )
        .unwrap();
    let diags = analyze_class(&s, id);
    assert_eq!(codes(&diags), vec![A009]);
    assert!(diags[0].message.contains("ping"), "{diags:?}");
}

#[test]
fn once_triggers_do_not_cycle() {
    let mut s = Schema::new();
    let id = s
        .define(
            ClassBuilder::new("acct")
                .field_default("a", Type::Int, 0i64)
                .field_default("b", Type::Int, 0i64)
                // Same dependency shape as above, but once-only triggers
                // fire at most once each: no unbounded cascade, so no
                // A009. The pair is still write-skew-prone — each one's
                // condition reads what the other writes, so decoupled
                // firing order decides the outcome — which is A302.
                .trigger("ping", &[], false, "a > 0")
                .action_assign("b", "b + 1")
                .trigger("pong", &[], false, "b > 0")
                .action_assign("a", "a + 1"),
        )
        .unwrap();
    let diags = analyze_class(&s, id);
    assert_eq!(codes(&diags), vec![A302]);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("ping"), "{diags:?}");
    assert!(diags[0].message.contains("pong"), "{diags:?}");
}

#[test]
fn self_resatisfying_perpetual_trigger_is_a201() {
    let mut s = Schema::new();
    let id = s
        .define(
            ClassBuilder::new("counter")
                .field_default("n", Type::Int, 0i64)
                // Writes `n`, which its own condition reads: every firing
                // can re-satisfy the condition. A201, not a cycle.
                .trigger("tick", &[], true, "n >= 0")
                .action_assign("n", "n + 1"),
        )
        .unwrap();
    let diags = analyze_class(&s, id);
    assert_eq!(codes(&diags), vec![A201]);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("tick"), "{diags:?}");
    assert!(diags[0].message.contains("`n`"), "{diags:?}");

    // The same shape once-only is harmless: it fires at most once.
    let mut s = Schema::new();
    let id = s
        .define(
            ClassBuilder::new("counter")
                .field_default("n", Type::Int, 0i64)
                .trigger("tick", &[], false, "n >= 0")
                .action_assign("n", "n + 1"),
        )
        .unwrap();
    assert!(analyze_class(&s, id).is_empty());
}

#[test]
fn reorder_style_trigger_is_not_a_cycle() {
    let mut s = Schema::new();
    let id = s
        .define(
            ClassBuilder::new("stockitem")
                .field_default("quantity", Type::Int, 0i64)
                .field_default("on_order", Type::Int, 0i64)
                // The paper's reorder trigger: reads quantity, writes
                // on_order. No edge back to itself.
                .trigger("reorder", &["n"], true, "quantity < $n")
                .action_assign("on_order", "on_order + 10"),
        )
        .unwrap();
    assert!(analyze_class(&s, id).is_empty());
}

#[test]
fn trigger_condition_type_errors_are_a005() {
    let mut s = Schema::new();
    let id = s
        .define(ClassBuilder::new("doc").field("title", Type::Str).trigger(
            "bad",
            &[],
            false,
            "title + 1 > 0",
        ))
        .unwrap();
    assert!(codes(&analyze_class(&s, id)).contains(&A005));
}

#[test]
fn fixpoint_body_may_add_but_not_delete() {
    let s = fixture();
    let b = bindings(&[("p", "person")]);
    let del = StmtKind::Delete {
        bindings: &b,
        suchthat: None,
    };
    let diags = check_fixpoint_body(&s, "person", &del);
    assert_eq!(codes(&diags), vec![A010]);
    // Deleting students still shrinks the deep person extent.
    let bs = bindings(&[("x", "student")]);
    let del = StmtKind::Delete {
        bindings: &bs,
        suchthat: None,
    };
    assert_eq!(codes(&check_fixpoint_body(&s, "person", &del)), vec![A010]);
    // Deleting from an unrelated cluster is fine, as is inserting.
    let bb = bindings(&[("x", "building")]);
    let del = StmtKind::Delete {
        bindings: &bb,
        suchthat: None,
    };
    assert!(check_fixpoint_body(&s, "person", &del).is_empty());
    let inits: Vec<(String, Expr)> = Vec::new();
    let add = StmtKind::Pnew {
        class: "person",
        inits: &inits,
    };
    assert!(check_fixpoint_body(&s, "person", &add).is_empty());
}

#[test]
fn diagnostics_render_with_code_and_severity() {
    let d = Diagnostic::new(A002, Severity::Error, "class `x` has no member `y`".into());
    assert_eq!(d.to_string(), "error[A002]: class `x` has no member `y`");
    let d = d.locate("forall s in x suchthat (y > 1)", "y");
    assert!(d.to_string().ends_with("(at byte 24)"), "{d}");
    assert!(has_errors(&[d]));
    assert!(!has_errors(&[Diagnostic::new(
        A102,
        Severity::Warning,
        String::new()
    )]));
}

// ------------------------------------------------------------ footprints

fn update_footprint(schema: &Schema, binds: &[(&str, &str)], pred: &str, set: &str) -> Footprint {
    let b = bindings(binds);
    let p = parse_expr(pred).unwrap();
    let assigns: Vec<(String, Expr)> = set
        .split(',')
        .map(|a| {
            let (f, e) = a.split_once('=').unwrap();
            (f.trim().to_string(), parse_expr(e.trim()).unwrap())
        })
        .collect();
    footprint_of(
        schema,
        None,
        &StmtKind::Update {
            bindings: &b,
            suchthat: Some(&p),
            assigns: &assigns,
        },
    )
}

#[test]
fn query_footprint_is_read_only_with_predicate_ranges() {
    let s = fixture();
    let b = bindings(&[("s", "stockitem")]);
    let pred = parse_expr("quantity > 10 && quantity < 20 && name == \"dram\"").unwrap();
    let fp = footprint_of(
        &s,
        None,
        &StmtKind::Query {
            bindings: &b,
            suchthat: Some(&pred),
            by: None,
        },
    );
    assert!(fp.read_only());
    assert_eq!(fp.reads.len(), 1);
    let acc = &fp.reads[0];
    assert_eq!(acc.class, "stockitem");
    assert!(!acc.deep);
    let fields: Vec<&str> = acc.ranges.iter().map(|r| r.field.as_str()).collect();
    assert_eq!(fields, vec!["name", "quantity"]);
    let rendered = fp.to_string();
    assert!(rendered.contains("read-only"), "{rendered}");
    assert!(rendered.contains("quantity"), "{rendered}");
}

#[test]
fn update_footprint_drops_ranges_on_assigned_fields() {
    let s = fixture();
    let fp = update_footprint(
        &s,
        &[("s", "stockitem")],
        "quantity == 5 && on_order == 0",
        "quantity = 9",
    );
    assert!(!fp.read_only());
    // The read side keeps both ranges; the write side must drop the
    // range on `quantity`, whose post-state escapes [5,5].
    let read_fields: Vec<&str> = fp.reads[0]
        .ranges
        .iter()
        .map(|r| r.field.as_str())
        .collect();
    assert_eq!(read_fields, vec!["on_order", "quantity"]);
    let write = &fp.writes[0];
    assert_eq!(write.fields, vec!["quantity"]);
    let write_fields: Vec<&str> = write.ranges.iter().map(|r| r.field.as_str()).collect();
    assert_eq!(write_fields, vec!["on_order"]);
}

#[test]
fn deep_binding_with_catalog_reports_the_probing_index() {
    let s = fixture();
    let mut cat = CatalogView::default();
    cat.indexed
        .insert((s.id_of("stockitem").unwrap(), "quantity".to_string()));
    let b = vec![("s".to_string(), "stockitem".to_string(), true)];
    let pred = parse_expr("quantity == 7").unwrap();
    let fp = footprint_of(
        &s,
        Some(&cat),
        &StmtKind::Query {
            bindings: &b,
            suchthat: Some(&pred),
            by: None,
        },
    );
    assert_eq!(fp.reads[0].index.as_deref(), Some("quantity"));
}

#[test]
fn pnew_footprint_is_a_point_write() {
    let s = fixture();
    let inits = vec![
        ("name".to_string(), parse_expr("\"dram\"").unwrap()),
        ("quantity".to_string(), parse_expr("5").unwrap()),
    ];
    let fp = footprint_of(
        &s,
        None,
        &StmtKind::Pnew {
            class: "stockitem",
            inits: &inits,
        },
    );
    assert!(!fp.read_only());
    assert!(fp.reads.is_empty());
    let w = &fp.writes[0];
    assert_eq!(w.class, "stockitem");
    assert_eq!(w.fields, vec!["name", "quantity"]);
    assert_eq!(w.ranges.len(), 2);
}

#[test]
fn batch_interference_proves_disjoint_ranges_apart() {
    let s = fixture();
    let lo = update_footprint(&s, &[("s", "stockitem")], "quantity < 10", "price = 1.0");
    let hi = update_footprint(&s, &[("s", "stockitem")], "quantity > 20", "price = 2.0");
    assert!(batch_interference(&[(1, lo.clone()), (2, hi)]).is_empty());

    // Overlapping ranges on the same cluster interfere: A301.
    let mid = update_footprint(&s, &[("s", "stockitem")], "quantity < 15", "price = 3.0");
    let diags = batch_interference(&[(1, lo.clone()), (2, mid)]);
    assert_eq!(codes(&diags), vec![A301]);
    assert_eq!(diags[0].severity, Severity::Warning);
    assert!(diags[0].message.contains("lines 1 and 2"), "{diags:?}");

    // A read overlapping a write interferes too.
    let b = bindings(&[("s", "stockitem")]);
    let pred = parse_expr("quantity == 5").unwrap();
    let reader = footprint_of(
        &s,
        None,
        &StmtKind::Query {
            bindings: &b,
            suchthat: Some(&pred),
            by: None,
        },
    );
    assert_eq!(
        codes(&batch_interference(&[(1, lo), (2, reader.clone())])),
        vec![A301]
    );

    // Two readers never interfere; different clusters never interfere.
    assert!(batch_interference(&[(1, reader.clone()), (2, reader.clone())]).is_empty());
    let other = update_footprint(&s, &[("p", "person")], "age > 0", "age = 1");
    assert!(batch_interference(&[(1, reader), (2, other)]).is_empty());
}

#[test]
fn interference_never_trusts_ranges_on_assigned_fields() {
    let s = fixture();
    // Writer moves rows INTO the reader's range: suchthat quantity == 1
    // set quantity = 5 vs a reader of quantity == 5. The pre-state
    // ranges are disjoint, but the post-state lands on the reader.
    let mover = update_footprint(&s, &[("s", "stockitem")], "quantity == 1", "quantity = 5");
    let b = bindings(&[("s", "stockitem")]);
    let pred = parse_expr("quantity == 5").unwrap();
    let reader = footprint_of(
        &s,
        None,
        &StmtKind::Query {
            bindings: &b,
            suchthat: Some(&pred),
            by: None,
        },
    );
    assert_eq!(
        codes(&batch_interference(&[(1, mover), (2, reader)])),
        vec![A301]
    );
}

#[test]
fn join_equality_without_an_index_is_a102_per_binding() {
    let s = fixture();
    let b = bindings(&[("s", "stockitem"), ("p", "person")]);
    let pred = parse_expr("s.name == p.name").unwrap();
    let stmt = StmtKind::Query {
        bindings: &b,
        suchthat: Some(&pred),
        by: None,
    };
    let src = "s.name == p.name";
    let empty = CatalogView::default();
    let diags = analyze_stmt(&s, Some(&empty), src, &stmt);
    assert_eq!(codes(&diags), vec![A102, A102], "{diags:?}");
    assert!(diags[0].message.contains("stockitem.name"), "{diags:?}");
    assert!(diags[1].message.contains("person.name"), "{diags:?}");

    // Indexing one side silences that side only.
    let mut cat = CatalogView::default();
    cat.indexed
        .insert((s.id_of("person").unwrap(), "name".to_string()));
    let diags = analyze_stmt(&s, Some(&cat), src, &stmt);
    assert_eq!(codes(&diags), vec![A102]);
    assert!(diags[0].message.contains("stockitem.name"), "{diags:?}");
}

#[test]
fn mixed_perpetual_and_once_trigger_pair_is_a302() {
    let mut s = Schema::new();
    let id = s
        .define(
            ClassBuilder::new("acct")
                .field_default("a", Type::Int, 0i64)
                .field_default("b", Type::Int, 0i64)
                // One perpetual, one once-only: the cycle check skips the
                // pair (once-only triggers break cycles), but the mutual
                // read/write crossing is still order-dependent.
                .trigger("ping", &[], true, "a > 0")
                .action_assign("b", "b + 1")
                .trigger("pong", &[], false, "b > 0")
                .action_assign("a", "a + 1"),
        )
        .unwrap();
    let diags = analyze_class(&s, id);
    assert_eq!(codes(&diags), vec![A302], "{diags:?}");
}
