//! Conjunct-level satisfiability: detect `suchthat` predicates (and §5
//! constraint sets) that are provably unsatisfiable because they place
//! contradictory ranges or equalities on a single member.
//!
//! The machinery is deliberately shallow — one member, literal bounds,
//! top-level `&&` conjuncts only — because that is the class of mistake
//! a person actually types (`q < 10 && q > 20`, a subclass constraint
//! fighting an inherited one). Anything deeper stays a run-time matter.

use std::collections::BTreeMap;

use ode_model::{BinOp, ClassDef, Expr, Value};

use crate::{Diagnostic, Severity, A008, A101};

/// Split a predicate into its top-level `&&` conjuncts.
pub(crate) fn conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
        match e {
            Expr::Binary(BinOp::And, l, r) => {
                walk(l, out);
                walk(r, out);
            }
            other => out.push(other),
        }
    }
    walk(expr, &mut out);
    out
}

/// A member reference a range constraint can attach to: a bare field
/// name or a single `var.field` step. Keyed textually so `q` and `s.q`
/// in the same predicate stay distinct.
fn member_key(e: &Expr) -> Option<String> {
    match e {
        Expr::Ident(name) => Some(name.clone()),
        Expr::Path(base, field) => match base.as_ref() {
            Expr::Ident(var) => Some(format!("{var}.{field}")),
            _ => None,
        },
        _ => None,
    }
}

fn literal(e: &Expr) -> Option<&Value> {
    match e {
        Expr::Lit(v) => Some(v),
        _ => None,
    }
}

fn as_num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// The feasible set for one member, narrowed conjunct by conjunct.
#[derive(Default)]
struct Feasible {
    /// Greatest lower bound and whether it is strict (`>` vs `>=`).
    lo: Option<(f64, bool)>,
    /// Least upper bound and whether it is strict.
    hi: Option<(f64, bool)>,
    /// Pinned by an equality.
    eq: Option<Value>,
    /// Excluded values (`!=`).
    ne: Vec<Value>,
}

impl Feasible {
    fn narrow(&mut self, op: BinOp, v: &Value) -> bool {
        match op {
            BinOp::Eq => {
                if let Some(prev) = &self.eq {
                    if prev != v {
                        return false;
                    }
                }
                if self.ne.iter().any(|x| x == v) {
                    return false;
                }
                self.eq = Some(v.clone());
            }
            BinOp::Ne => {
                if self.eq.as_ref() == Some(v) {
                    return false;
                }
                self.ne.push(v.clone());
            }
            BinOp::Lt | BinOp::Le => {
                if let Some(n) = as_num(v) {
                    let strict = matches!(op, BinOp::Lt);
                    let tighter = match self.hi {
                        Some((cur, cur_strict)) => n < cur || (n == cur && strict && !cur_strict),
                        None => true,
                    };
                    if tighter {
                        self.hi = Some((n, strict));
                    }
                }
            }
            BinOp::Gt | BinOp::Ge => {
                if let Some(n) = as_num(v) {
                    let strict = matches!(op, BinOp::Gt);
                    let tighter = match self.lo {
                        Some((cur, cur_strict)) => n > cur || (n == cur && strict && !cur_strict),
                        None => true,
                    };
                    if tighter {
                        self.lo = Some((n, strict));
                    }
                }
            }
            _ => {}
        }
        self.consistent()
    }

    fn consistent(&self) -> bool {
        if let (Some((lo, lo_strict)), Some((hi, hi_strict))) = (self.lo, self.hi) {
            if lo > hi || (lo == hi && (lo_strict || hi_strict)) {
                return false;
            }
        }
        if let Some(eq) = &self.eq {
            if let Some(n) = as_num(eq) {
                if let Some((lo, strict)) = self.lo {
                    if n < lo || (n == lo && strict) {
                        return false;
                    }
                }
                if let Some((hi, strict)) = self.hi {
                    if n > hi || (n == hi && strict) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Mirror `member op literal` so every comparison reads left-to-right.
fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn range_conjunct(e: &Expr) -> Option<(String, BinOp, Value)> {
    let Expr::Binary(op, l, r) = e else {
        return None;
    };
    if !matches!(
        op,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
    ) {
        return None;
    }
    if let (Some(key), Some(v)) = (member_key(l), literal(r)) {
        return Some((key, *op, v.clone()));
    }
    if let (Some(v), Some(key)) = (literal(l), member_key(r)) {
        return Some((key, flip(*op), v.clone()));
    }
    None
}

/// Feed `pred`'s conjuncts into per-member feasible sets; return the
/// first member whose set becomes empty.
fn first_contradiction<'a>(preds: impl Iterator<Item = &'a Expr>) -> Option<String> {
    let mut members: BTreeMap<String, Feasible> = BTreeMap::new();
    for pred in preds {
        for c in conjuncts(pred) {
            if let Some((key, op, v)) = range_conjunct(c) {
                let feasible = members.entry(key.clone()).or_default();
                if !feasible.narrow(op, &v) {
                    return Some(key);
                }
            }
        }
    }
    None
}

/// A101: the `suchthat` predicate can never hold.
pub(crate) fn check_satisfiable(src: &str, pred: &Expr, diags: &mut Vec<Diagnostic>) {
    if let Some(member) = first_contradiction(std::iter::once(pred)) {
        let token = member.rsplit('.').next().unwrap_or(&member).to_string();
        diags.push(
            Diagnostic::new(
                A101,
                Severity::Warning,
                format!(
                    "suchthat is provably unsatisfiable: contradictory \
                     constraints on `{member}` select no objects"
                ),
            )
            .locate(src, &token),
        );
    }
}

/// A008: the conjunction of a class's own and inherited constraints (§5)
/// admits no object. `exprs` is every constraint that applies.
pub(crate) fn check_constraints_satisfiable<'a>(
    class: &str,
    exprs: impl Iterator<Item = &'a Expr>,
    diags: &mut Vec<Diagnostic>,
) {
    if let Some(member) = first_contradiction(exprs) {
        diags.push(Diagnostic::new(
            A008,
            Severity::Error,
            format!(
                "constraints on class `{class}` are contradictory: no value \
                 of `{member}` can satisfy the class and its superclasses"
            ),
        ));
    }
}

/// Members of the (single) binding's class that appear in an equality
/// conjunct against a literal — the index-worthy shape the A102 lint
/// looks for. `var` is the loop variable, `def` the binding's class.
pub(crate) fn equality_members(pred: &Expr, var: &str, def: &ClassDef) -> Vec<String> {
    let mut out = Vec::new();
    for c in conjuncts(pred) {
        if let Some((key, BinOp::Eq, _)) = range_conjunct(c) {
            let field = match key.split_once('.') {
                Some((v, f)) if v == var => f.to_string(),
                Some(_) => continue,
                None => key,
            };
            if def.field(&field).is_ok() && !out.contains(&field) {
                out.push(field);
            }
        }
    }
    out
}

/// Members of one *join* binding's class that appear in any equality
/// conjunct — against a literal **or** another binding's member (the
/// `a.k == b.owner` shape a hash/index join would probe on). Only the
/// qualified `var.field` form is attributable in a join; a bare
/// identifier could resolve against any binding.
pub(crate) fn join_equality_members(pred: &Expr, var: &str, def: &ClassDef) -> Vec<String> {
    let mut out = Vec::new();
    for c in conjuncts(pred) {
        let Expr::Binary(BinOp::Eq, l, r) = c else {
            continue;
        };
        for side in [l.as_ref(), r.as_ref()] {
            if let Expr::Path(base, field) = side {
                if let Expr::Ident(v) = base.as_ref() {
                    if v == var && def.field(field).is_ok() && !out.iter().any(|f| f == field) {
                        out.push(field.clone());
                    }
                }
            }
        }
    }
    out
}
