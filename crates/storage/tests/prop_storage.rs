//! Property-based tests for the storage substrate.
//!
//! The slotted page and the heap layer are driven with arbitrary operation
//! sequences against a trivial reference model (a `HashMap`); the
//! invariants checked are exactly the contract the engine relies on:
//! stable record ids, exact payload round-trips, scan = live set, and
//! durability across close/reopen and WAL replay.

use std::collections::HashMap;

use proptest::prelude::*;

use ode_storage::page::{Page, PageType};
use ode_storage::{FileStore, MemStore, RecordId, Store, StoreOp};

// ---------------------------------------------------------------- pages

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
}

fn page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        3 => prop::collection::vec(any::<u8>(), 0..600).prop_map(PageOp::Insert),
        2 => (any::<usize>(), prop::collection::vec(any::<u8>(), 0..600))
            .prop_map(|(i, d)| PageOp::Update(i, d)),
        1 => any::<usize>().prop_map(PageOp::Delete),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A page behaves like a map slot->bytes under arbitrary operations,
    /// and survives serialization at every step.
    #[test]
    fn page_matches_model(ops in prop::collection::vec(page_op(), 1..120)) {
        let mut page = Page::new(PageType::Heap, 1);
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                PageOp::Insert(data) => {
                    if let Some(slot) = page.insert(&data) {
                        model.insert(slot, data);
                    }
                }
                PageOp::Update(pick, data) => {
                    let slots: Vec<u16> = model.keys().copied().collect();
                    if slots.is_empty() { continue; }
                    let slot = slots[pick % slots.len()];
                    if page.update(slot, &data) {
                        model.insert(slot, data);
                    }
                }
                PageOp::Delete(pick) => {
                    let slots: Vec<u16> = model.keys().copied().collect();
                    if slots.is_empty() { continue; }
                    let slot = slots[pick % slots.len()];
                    page.delete(slot);
                    model.remove(&slot);
                }
            }
            // Every model entry is readable with exact content.
            for (&slot, data) in &model {
                prop_assert_eq!(page.record(slot).unwrap(), &data[..]);
            }
            // And nothing extra is live.
            let live = page.iter_records().count();
            prop_assert_eq!(live, model.len());
            // Serialization round-trips.
            let back = Page::from_bytes(&page.to_bytes()).unwrap();
            for (&slot, data) in &model {
                prop_assert_eq!(back.record(slot).unwrap(), &data[..]);
            }
        }
    }
}

// ---------------------------------------------------------------- stores

#[derive(Debug, Clone)]
enum HeapOp {
    Put(Vec<u8>),
    Overwrite(usize, Vec<u8>),
    Delete(usize),
    Reopen,
}

fn heap_op() -> impl Strategy<Value = HeapOp> {
    prop_oneof![
        4 => prop::collection::vec(any::<u8>(), 0..2000).prop_map(HeapOp::Put),
        3 => (any::<usize>(), prop::collection::vec(any::<u8>(), 0..4000))
            .prop_map(|(i, d)| HeapOp::Overwrite(i, d)),
        2 => any::<usize>().prop_map(HeapOp::Delete),
        1 => Just(HeapOp::Reopen),
    ]
}

fn check_against_model(store: &dyn Store, heap: u32, model: &HashMap<RecordId, Vec<u8>>) {
    for (rid, data) in model {
        assert_eq!(&store.read(heap, *rid).unwrap(), data, "read {rid}");
    }
    let mut scanned: HashMap<RecordId, Vec<u8>> = HashMap::new();
    store
        .scan(heap, &mut |rid, bytes| {
            scanned.insert(rid, bytes.to_vec());
            Ok(true)
        })
        .unwrap();
    assert_eq!(&scanned, model, "scan contents");
}

fn run_store_ops(
    make: impl Fn() -> Box<dyn Store>,
    reopen: impl Fn(Box<dyn Store>) -> Box<dyn Store>,
    ops: Vec<HeapOp>,
) {
    let mut store = make();
    let heap = store.create_heap().unwrap();
    let mut model: HashMap<RecordId, Vec<u8>> = HashMap::new();
    for op in ops {
        match op {
            HeapOp::Put(data) => {
                let rid = store.reserve(heap, data.len()).unwrap();
                store
                    .commit(vec![StoreOp::Put {
                        heap,
                        rid,
                        data: data.clone(),
                    }])
                    .unwrap();
                model.insert(rid, data);
            }
            HeapOp::Overwrite(pick, data) => {
                let rids: Vec<RecordId> = model.keys().copied().collect();
                if rids.is_empty() {
                    continue;
                }
                let rid = rids[pick % rids.len()];
                store
                    .commit(vec![StoreOp::Put {
                        heap,
                        rid,
                        data: data.clone(),
                    }])
                    .unwrap();
                model.insert(rid, data);
            }
            HeapOp::Delete(pick) => {
                let rids: Vec<RecordId> = model.keys().copied().collect();
                if rids.is_empty() {
                    continue;
                }
                let rid = rids[pick % rids.len()];
                store.commit(vec![StoreOp::Delete { heap, rid }]).unwrap();
                model.remove(&rid);
            }
            HeapOp::Reopen => {
                store = reopen(store);
            }
        }
        check_against_model(store.as_ref(), heap, &model);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The in-memory store honors the contract.
    #[test]
    fn memstore_matches_model(ops in prop::collection::vec(heap_op(), 1..60)) {
        // MemStore cannot reopen; treat Reopen as a no-op.
        let ops: Vec<HeapOp> = ops
            .into_iter()
            .map(|op| match op { HeapOp::Reopen => HeapOp::Put(vec![1]), other => other })
            .collect();
        run_store_ops(
            || Box::new(MemStore::new()),
            |s| s,
            ops,
        );
    }

    /// The durable store honors the contract, including across reopens
    /// (which exercise WAL replay and the heap-rebuild scan).
    #[test]
    fn filestore_matches_model_across_reopens(
        ops in prop::collection::vec(heap_op(), 1..40),
        case_id in any::<u64>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "ode-prop-store-{}-{case_id}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let dir2 = dir.clone();
            let dir3 = dir.clone();
            run_store_ops(
                move || Box::new(FileStore::open(&dir2).unwrap()),
                move |old| {
                    drop(old);
                    Box::new(FileStore::open(&dir3).unwrap())
                },
                ops,
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
