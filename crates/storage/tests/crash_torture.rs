//! Crash-torture harness: randomized commit/crash/reopen cycles against
//! a [`FileStore`] wrapped in a [`FailpointStore`] (DESIGN.md §10).
//!
//! Each cycle runs a batch workload under seed-driven fault injection,
//! "crashes" (leaks the store so the Drop-path checkpoint never runs),
//! optionally mutilates the WAL *tail* (strictly past the durable
//! prefix: appended garbage, a torn frame, a bad-CRC frame), reopens,
//! and checks the three recovery invariants:
//!
//! 1. every acknowledged commit is readable with its exact bytes,
//! 2. no unacknowledged write is visible (ack-lost batches are in doubt,
//!    but must land all-or-nothing),
//! 3. replay and a full scan never panic — a corrupt tail stops replay
//!    cleanly.
//!
//! The schedule is a pure function of the seed: a failure reproduces
//! with `ODE_TORTURE_SEED=<seed> ODE_TORTURE_CYCLES=<n>`.

use std::collections::{HashMap, HashSet};
use std::fs::OpenOptions;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ode_storage::filestore::{FileStore, FileStoreOptions};
use ode_storage::{FailpointConfig, FailpointStore, FaultKind, HeapId, RecordId, Store, StoreOp};

/// SplitMix64 for the harness's own choices (op mix, payload sizes,
/// tail-mutilation mode). Independent of the failpoint schedule.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

type Key = (HeapId, RecordId);

/// One write of an ack-lost batch: the key, what it held before (None =
/// the key did not exist), and what the batch tried to write.
struct DoubtOp {
    key: Key,
    old: Option<Vec<u8>>,
    new: Vec<u8>,
}

/// What the harness believes the store contains.
#[derive(Default)]
struct Model {
    /// Acknowledged state: exactly the records a reopened store must show.
    acked: HashMap<Key, Vec<u8>>,
    /// Batches whose commit returned an error *after* the durable append
    /// (ack loss). Each must resolve all-or-nothing at the next reopen.
    in_doubt: Vec<Vec<DoubtOp>>,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn temp_dir(seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ode-crash-torture-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(dir: &Path, cycle_seed: u64) -> FailpointStore {
    let file = FileStore::open_with(
        dir,
        FileStoreOptions {
            pool_pages: 64, // small pool: evictions exercise page writeback
            sync_commits: false,
            ..FileStoreOptions::default()
        },
    )
    .expect("invariant 3 violated: reopen after crash failed");
    FailpointStore::new(
        Arc::new(file) as Arc<dyn Store>,
        FailpointConfig::torture(cycle_seed),
    )
}

/// Append damage to the WAL tail. Everything durable is already framed
/// and complete before this offset, so the damage models a torn write
/// of a *next* group that never happened — replay must stop cleanly.
fn mutilate_wal_tail(dir: &Path, rng: &mut Rng) {
    let path = dir.join("wal.odb");
    let mut f = OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("wal file exists after a crash");
    match rng.below(3) {
        0 => {
            // Raw garbage: not even a plausible length header.
            let n = 1 + rng.below(40) as usize;
            let junk: Vec<u8> = (0..n).map(|_| rng.next() as u8).collect();
            f.write_all(&junk).unwrap();
        }
        1 => {
            // Torn frame: a length header promising more bytes than exist.
            f.write_all(&200u32.to_le_bytes()).unwrap();
            f.write_all(&(rng.next() as u32).to_le_bytes()).unwrap();
            f.write_all(&[0xAB; 10]).unwrap();
        }
        _ => {
            // Complete frame with a CRC that cannot match its payload.
            let payload = [0x5C; 8];
            f.write_all(&(payload.len() as u32).to_le_bytes()).unwrap();
            f.write_all(&0xDEAD_BEEFu32.to_le_bytes()).unwrap();
            f.write_all(&payload).unwrap();
        }
    }
}

/// Resolve every in-doubt batch against the reopened store: each must be
/// fully present or fully absent. Folds landed batches into `acked`.
fn resolve_in_doubt(store: &FailpointStore, model: &mut Model) {
    for batch in model.in_doubt.drain(..) {
        let first = &batch[0];
        let landed = match store.inner().read(first.key.0, first.key.1) {
            Ok(bytes) => {
                assert!(
                    bytes == first.new || Some(&bytes) == first.old.as_ref(),
                    "in-doubt key {:?} holds bytes from neither side",
                    first.key
                );
                bytes == first.new
            }
            Err(_) => {
                assert!(
                    first.old.is_none(),
                    "in-doubt overwrite of {:?} lost the old value too",
                    first.key
                );
                false
            }
        };
        for op in &batch {
            let got = store.inner().read(op.key.0, op.key.1).ok();
            let want = if landed {
                Some(&op.new)
            } else {
                op.old.as_ref()
            };
            assert_eq!(
                got.as_ref(),
                want,
                "ack-lost batch split: key {:?} disagrees with its batch \
                 (landed = {landed})",
                op.key
            );
        }
        if landed {
            for op in batch {
                model.acked.insert(op.key, op.new);
            }
        }
    }
}

/// Invariants 1 and 2: the reopened store holds exactly the acknowledged
/// records — nothing lost, nothing extra.
fn check_state(store: &FailpointStore, heaps: &[HeapId], model: &Model) {
    for (key, want) in &model.acked {
        let got = store
            .inner()
            .read(key.0, key.1)
            .unwrap_or_else(|e| panic!("invariant 1: acked {key:?} unreadable: {e}"));
        assert_eq!(&got, want, "invariant 1: acked {key:?} holds wrong bytes");
    }
    let mut seen: HashMap<Key, Vec<u8>> = HashMap::new();
    for &heap in heaps {
        store
            .inner()
            .scan(heap, &mut |rid, bytes| {
                seen.insert((heap, rid), bytes.to_vec());
                Ok(true)
            })
            .expect("invariant 3: post-recovery scan failed");
    }
    for (key, bytes) in &seen {
        assert_eq!(
            model.acked.get(key),
            Some(bytes),
            "invariant 2: unacknowledged write visible at {key:?}"
        );
    }
    assert_eq!(
        seen.len(),
        model.acked.len(),
        "store and model disagree on record count"
    );
}

/// Payloads carry their provenance so every value in the store is unique
/// and mismatches identify the cycle/op that wrote them.
fn payload(cycle: u64, op: u64, rng: &mut Rng) -> Vec<u8> {
    let mut v = format!("c{cycle}-o{op}-").into_bytes();
    let extra = rng.below(120) as usize;
    v.extend((0..extra).map(|_| rng.next() as u8));
    v
}

#[test]
fn randomized_crash_reopen_cycles_preserve_invariants() {
    let seed = env_u64("ODE_TORTURE_SEED", 0x0DE_0DE);
    let cycles = env_u64("ODE_TORTURE_CYCLES", 60);
    let dir = temp_dir(seed);
    let mut rng = Rng(seed);
    let mut model = Model::default();
    let mut total_faults = 0u64;
    let mut total_replayed = 0u64;

    // Cycle 0 creates the heaps; they persist in the meta page after that.
    let mut heaps: Vec<HeapId> = Vec::new();

    for cycle in 0..cycles {
        let store = open_store(&dir, seed ^ (cycle.wrapping_mul(0x9E37)));
        total_replayed += store.stats().replayed_groups;
        if heaps.is_empty() {
            for _ in 0..3 {
                heaps.push(store.create_heap().unwrap());
            }
        }
        resolve_in_doubt(&store, &mut model);
        check_state(&store, &heaps, &model);

        // ------------------------------------------------ workload
        // Keys touched by an ack-lost batch stay frozen for the rest of
        // the cycle so each in-doubt batch resolves independently.
        let mut frozen: HashSet<Key> = HashSet::new();
        let mut op_serial = 0u64;
        for _ in 0..20 {
            let batch_len = 1 + rng.below(3) as usize;
            let mut ops = Vec::with_capacity(batch_len);
            let mut doubt = Vec::with_capacity(batch_len);
            let mut batch_keys: HashSet<Key> = HashSet::new();
            for _ in 0..batch_len {
                let heap = heaps[rng.below(heaps.len() as u64) as usize];
                let overwrite = !model.acked.is_empty() && rng.below(3) == 0;
                let key = if overwrite {
                    let candidates: Vec<Key> = model
                        .acked
                        .keys()
                        .filter(|k| k.0 == heap && !frozen.contains(*k) && !batch_keys.contains(*k))
                        .copied()
                        .collect();
                    if candidates.is_empty() {
                        continue;
                    }
                    candidates[rng.below(candidates.len() as u64) as usize]
                } else {
                    let rid = match store.reserve(heap, 64) {
                        Ok(rid) => rid,
                        Err(_) => continue,
                    };
                    (heap, rid)
                };
                batch_keys.insert(key);
                let new = payload(cycle, op_serial, &mut rng);
                op_serial += 1;
                doubt.push(DoubtOp {
                    key,
                    old: model.acked.get(&key).cloned(),
                    new: new.clone(),
                });
                ops.push(StoreOp::Put {
                    heap: key.0,
                    rid: key.1,
                    data: new,
                });
            }
            if ops.is_empty() {
                continue;
            }
            match store.commit(ops) {
                Ok(()) => {
                    for op in doubt {
                        model.acked.insert(op.key, op.new);
                    }
                }
                Err(_) => match store.take_last_fault() {
                    Some(FaultKind::CommitPre) => {
                        // Definitely not durable; the WAL tail was rolled
                        // back, so the model is simply unchanged.
                    }
                    Some(FaultKind::CommitAckLoss) => {
                        frozen.extend(doubt.iter().map(|d| d.key));
                        model.in_doubt.push(doubt);
                    }
                    other => panic!("commit failed without a commit fault: {other:?}"),
                },
            }
            // Occasional side traffic: a leaked reservation (reclaimed on
            // reopen) and a checkpoint attempt that is allowed to fail.
            if rng.below(7) == 0 {
                let heap = heaps[rng.below(heaps.len() as u64) as usize];
                if let Ok(rid) = store.reserve(heap, 16) {
                    let _ = store.release(heap, rid);
                }
            }
            if rng.below(9) == 0 {
                let _ = store.checkpoint();
            }
        }

        // ------------------------------------------------ crash
        total_faults += store.faults_injected();
        std::mem::forget(store); // no Drop: the close-path checkpoint never runs
        if rng.below(2) == 0 {
            mutilate_wal_tail(&dir, &mut rng);
        }
    }

    // A clean final reopen-and-verify, then statistics the run must show.
    let store = open_store(&dir, 0);
    total_replayed += store.stats().replayed_groups;
    resolve_in_doubt(&store, &mut model);
    check_state(&store, &heaps, &model);
    assert!(
        total_faults > 0,
        "torture config never fired — the harness tested nothing"
    );
    assert!(
        total_replayed > 0,
        "no WAL group was ever replayed — crashes were not crashes"
    );
    println!(
        "crash-torture: {cycles} cycles, {} acked records, {total_faults} faults injected, \
         {total_replayed} groups replayed",
        model.acked.len()
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
