//! WAL group commit and the checkpoint/commit interaction (DESIGN.md
//! §13): one leader fsync covers a whole cohort of prepared commits;
//! checkpoints wait for prepared-but-unapplied groups instead of
//! truncating them away (the invariant that replaced the old
//! single-writer `txn_gate` skip); an abandoned group is resolved as
//! *lost* by the next checkpoint; and a crash mid-group-commit leaves
//! every cohort member all-or-nothing on disk.

use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ode_storage::failpoint::{FailpointConfig, FailpointStore, FaultKind};
use ode_storage::filestore::{FileStore, FileStoreOptions};
use ode_storage::{RecordId, Store, StoreOp};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ode-group-commit-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_sync(dir: &Path) -> FileStore {
    FileStore::open_with(
        dir,
        FileStoreOptions {
            sync_commits: true,
            ..FileStoreOptions::default()
        },
    )
    .unwrap()
}

fn put(heap: u32, rid: RecordId, data: &[u8]) -> StoreOp {
    StoreOp::Put {
        heap,
        rid,
        data: data.to_vec(),
    }
}

fn wal_len(dir: &Path) -> u64 {
    std::fs::metadata(dir.join("wal.odb")).unwrap().len()
}

/// One fsync, issued by whichever committer leads, covers every group
/// appended before it. Deterministic version of the race: prepare three
/// groups, then confirm durability newest-first — the first
/// `commit_durable` becomes the leader and its single sync makes the
/// other two instant followers.
#[test]
fn leader_fsync_covers_the_whole_cohort() {
    let dir = temp_dir("cohort");
    let store = open_sync(&dir);
    let heap = store.create_heap().unwrap();
    store.reset_stats(); // ignore the heap-creation group's fsync

    let rids: Vec<RecordId> = (0..3).map(|_| store.reserve(heap, 16).unwrap()).collect();
    let tickets: Vec<_> = rids
        .iter()
        .enumerate()
        .map(|(i, &rid)| {
            store
                .commit_prepare(vec![put(heap, rid, format!("member {i}").as_bytes())])
                .unwrap()
        })
        .collect();

    // Newest first: the leader's fsync target is the highest appended
    // sequence, so the two older groups are already covered.
    for t in tickets.iter().rev() {
        store.commit_durable(t).unwrap();
    }
    for t in tickets {
        store.commit_apply(t).unwrap();
    }

    let stats = store.stats();
    assert_eq!(stats.commit_groups, 1, "one fsync for the whole cohort");
    assert_eq!(stats.commit_group_members, 3, "all three commits covered");
    assert_eq!(stats.wal_fsyncs, 1, "fsyncs-per-commit is 1/3 here");
    for (i, rid) in rids.iter().enumerate() {
        assert_eq!(
            store.read(heap, *rid).unwrap(),
            format!("member {i}").as_bytes()
        );
    }
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// The checkpoint barrier: while a prepared commit has not been applied
/// (or abandoned), its effects exist only in the WAL, so `checkpoint`
/// must wait rather than truncate. This is the invariant that replaced
/// the old single-writer gate's "no checkpoint while a txn holds the
/// gate" rule — see `Database::checkpoint`.
#[test]
fn checkpoint_waits_for_prepared_commits() {
    let dir = temp_dir("barrier");
    let store = Arc::new(open_sync(&dir));
    let heap = store.create_heap().unwrap();
    let rid = store.reserve(heap, 16).unwrap();
    let ticket = store
        .commit_prepare(vec![put(heap, rid, b"only in the WAL so far")])
        .unwrap();
    store.commit_durable(&ticket).unwrap();

    let finished = Arc::new(AtomicBool::new(false));
    let ckpt = {
        let store = Arc::clone(&store);
        let finished = Arc::clone(&finished);
        std::thread::spawn(move || {
            let r = store.checkpoint();
            finished.store(true, Ordering::Release);
            r
        })
    };
    // The checkpoint must still be parked behind the barrier.
    std::thread::sleep(std::time::Duration::from_millis(150));
    assert!(
        !finished.load(Ordering::Acquire),
        "checkpoint truncated the WAL under a prepared-but-unapplied commit"
    );
    assert!(wal_len(&dir) > 0, "the prepared group is still logged");

    store.commit_apply(ticket).unwrap();
    ckpt.join().unwrap().unwrap();
    assert!(finished.load(Ordering::Acquire));
    assert_eq!(wal_len(&dir), 0, "apply released the barrier");
    assert_eq!(store.read(heap, rid).unwrap(), b"only in the WAL so far");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// A cohort whose fsync fails is in doubt: the group sits in the WAL
/// unsynced. The engine abandons the ticket; the next checkpoint then
/// resolves the in-doubt group as *lost* (pages without the group are
/// flushed, the WAL is truncated) — the same contract as ack-loss on
/// the legacy path, and the store stays healthy across reopen.
#[test]
fn failed_group_sync_is_resolved_as_lost_by_checkpoint() {
    let dir = temp_dir("group-sync-fault");
    let inner: Arc<dyn Store> = Arc::new(open_sync(&dir));
    let fp = FailpointStore::new(Arc::clone(&inner), FailpointConfig::disabled(1));
    let heap = fp.create_heap().unwrap();
    let rid = fp.reserve(heap, 16).unwrap();

    let ticket = fp
        .commit_prepare(vec![put(heap, rid, b"never confirmed durable")])
        .unwrap();
    fp.force(FaultKind::GroupSync);
    let err = fp.commit_durable(&ticket).unwrap_err();
    assert!(err.is_transient(), "{err}");
    assert_eq!(fp.take_last_fault(), Some(FaultKind::GroupSync));
    fp.commit_abandon(ticket);

    // The abandon released the barrier, so the checkpoint may truncate
    // the unconfirmed group: in-doubt resolves to lost.
    fp.checkpoint().unwrap();
    assert_eq!(wal_len(&dir), 0);
    drop(fp);
    drop(inner);

    let store = open_sync(&dir);
    assert_eq!(store.replayed_groups(), 0);
    assert!(
        store.read(heap, rid).is_err(),
        "an unacknowledged commit must not resurrect"
    );
    // The slot is reusable and the store fully functional.
    let rid2 = store.reserve(heap, 16).unwrap();
    store
        .commit(vec![put(heap, rid2, b"life goes on")])
        .unwrap();
    assert_eq!(store.read(heap, rid2).unwrap(), b"life goes on");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// Crash ("kill") in the middle of a group commit: three cohort members
/// are appended, none applied, and the process dies mid-write of the
/// last group. Recovery must replay each complete group atomically —
/// both records of a two-op member or neither — and drop the torn tail
/// group entirely. No half-applied member, ever.
#[test]
fn kill_during_group_commit_keeps_members_all_or_nothing() {
    let dir = temp_dir("kill-mid-group");
    let heap;
    let mut rids: Vec<(RecordId, RecordId)> = Vec::new();
    let mut offsets = Vec::new(); // WAL end offset after each member
    {
        let store = open_sync(&dir);
        heap = store.create_heap().unwrap();
        for i in 0..3 {
            let a = store.reserve(heap, 16).unwrap();
            let b = store.reserve(heap, 16).unwrap();
            let ticket = store
                .commit_prepare(vec![
                    put(heap, a, format!("m{i} first half").as_bytes()),
                    put(heap, b, format!("m{i} second half").as_bytes()),
                ])
                .unwrap();
            rids.push((a, b));
            offsets.push(wal_len(&dir));
            // Leak the ticket: the crash happens before durable/apply.
            std::mem::forget(ticket);
        }
        // Kill: no fsync confirmed, nothing applied, Drop never runs.
        std::mem::forget(store);
    }
    // The "kill" tears the last member's WAL group in half.
    let start2 = offsets[1];
    let end2 = offsets[2];
    let f = OpenOptions::new()
        .write(true)
        .open(dir.join("wal.odb"))
        .unwrap();
    f.set_len(start2 + (end2 - start2) / 2).unwrap();
    drop(f);

    let store = open_sync(&dir);
    assert_eq!(
        store.replayed_groups(),
        3,
        "heap creation + members 0 and 1; the torn member 2 must not replay"
    );
    for (i, (a, b)) in rids.iter().take(2).enumerate() {
        assert_eq!(
            store.read(heap, *a).unwrap(),
            format!("m{i} first half").as_bytes(),
            "member {i} replayed whole"
        );
        assert_eq!(
            store.read(heap, *b).unwrap(),
            format!("m{i} second half").as_bytes()
        );
    }
    let (a2, b2) = rids[2];
    assert!(store.read(heap, a2).is_err(), "torn member: no first half");
    assert!(store.read(heap, b2).is_err(), "torn member: no second half");
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

/// A leaked ticket (a committer that died between prepare and apply
/// without even abandoning) must degrade the checkpoint to a bounded
/// failure — WAL intact — never a hang or a silent truncation.
#[test]
fn leaked_ticket_fails_the_checkpoint_but_keeps_the_wal() {
    let dir = temp_dir("leaked-ticket");
    let store = open_sync(&dir);
    let heap = store.create_heap().unwrap();
    let rid = store.reserve(heap, 16).unwrap();
    let ticket = store
        .commit_prepare(vec![put(heap, rid, b"prepared, never finished")])
        .unwrap();
    std::mem::forget(ticket);

    let err = store.checkpoint().unwrap_err();
    assert!(
        err.to_string().contains("checkpoint barrier"),
        "unexpected error: {err}"
    );
    assert!(
        wal_len(&dir) > 0,
        "the WAL must survive the failed checkpoint"
    );
    assert!(store.stats().checkpoint_failures >= 1);
    // Leak the store too: its Drop would retry the checkpoint (another
    // bounded wait) before giving up.
    std::mem::forget(store);
    std::fs::remove_dir_all(&dir).ok();
}
