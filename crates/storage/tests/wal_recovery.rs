//! Targeted WAL-damage recovery tests (DESIGN.md §10): a torn tail, a
//! bit-flipped CRC, and trailing garbage must never panic or brick the
//! store — replay stops cleanly at the first damaged record, and every
//! group before the damage is recovered intact.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use ode_storage::filestore::{FileStore, FileStoreOptions};
use ode_storage::{RecordId, Store, StoreOp};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ode-wal-recovery-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path) -> FileStore {
    FileStore::open_with(
        dir,
        FileStoreOptions {
            sync_commits: false,
            ..FileStoreOptions::default()
        },
    )
    .expect("open must survive WAL tail damage")
}

fn wal_len(dir: &Path) -> u64 {
    std::fs::metadata(dir.join("wal.odb")).unwrap().len()
}

/// Build a store with two committed groups after the heap-creation group,
/// crash it (no close-path checkpoint), and report the WAL offsets where
/// group B starts and ends: `(heap, rid_a, rid_b, b_start, b_end)`.
fn two_commits_then_crash(dir: &Path) -> (u32, RecordId, RecordId, u64, u64) {
    let store = open(dir);
    let heap = store.create_heap().unwrap();
    let rid_a = store.reserve(heap, 16).unwrap();
    store
        .commit(vec![StoreOp::Put {
            heap,
            rid: rid_a,
            data: b"group A: survives any tail damage".to_vec(),
        }])
        .unwrap();
    let b_start = wal_len(dir);
    let rid_b = store.reserve(heap, 16).unwrap();
    store
        .commit(vec![StoreOp::Put {
            heap,
            rid: rid_b,
            data: b"group B: the damaged tail".to_vec(),
        }])
        .unwrap();
    let b_end = wal_len(dir);
    assert!(b_end > b_start, "commit B must have appended WAL bytes");
    std::mem::forget(store); // crash: Drop's checkpoint never flushes pages
    (heap, rid_a, rid_b, b_start, b_end)
}

#[test]
fn torn_tail_replays_up_to_the_tear() {
    let dir = temp_dir("torn-tail");
    let (heap, rid_a, rid_b, b_start, b_end) = two_commits_then_crash(&dir);
    // Tear group B in half: a crash mid-write of the final group.
    let f = OpenOptions::new()
        .write(true)
        .open(dir.join("wal.odb"))
        .unwrap();
    f.set_len(b_start + (b_end - b_start) / 2).unwrap();
    drop(f);

    let store = open(&dir);
    assert_eq!(
        store.replayed_groups(),
        2,
        "heap creation and group A replay; the torn group B must not"
    );
    assert_eq!(
        store.read(heap, rid_a).unwrap(),
        b"group A: survives any tail damage"
    );
    assert!(
        store.read(heap, rid_b).is_err(),
        "the torn group was never acknowledged as durable in this model"
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flipped_crc_stops_replay_cleanly() {
    let dir = temp_dir("crc-flip");
    let (heap, rid_a, rid_b, b_start, _) = two_commits_then_crash(&dir);
    // Flip one bit in group B's first CRC word ([len u32][crc u32][..]).
    let mut f = OpenOptions::new()
        .read(true)
        .write(true)
        .open(dir.join("wal.odb"))
        .unwrap();
    f.seek(SeekFrom::Start(b_start + 4)).unwrap();
    let mut byte = [0u8; 1];
    f.read_exact(&mut byte).unwrap();
    f.seek(SeekFrom::Start(b_start + 4)).unwrap();
    f.write_all(&[byte[0] ^ 0x10]).unwrap();
    drop(f);

    let store = open(&dir);
    assert_eq!(store.replayed_groups(), 2);
    assert_eq!(
        store.read(heap, rid_a).unwrap(),
        b"group A: survives any tail damage"
    );
    assert!(store.read(heap, rid_b).is_err());
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trailing_garbage_after_valid_groups_is_ignored() {
    let dir = temp_dir("trailing-garbage");
    let (heap, rid_a, rid_b, _, b_end) = two_commits_then_crash(&dir);
    let mut f = OpenOptions::new()
        .append(true)
        .open(dir.join("wal.odb"))
        .unwrap();
    f.write_all(&[0xC7; 33]).unwrap();
    drop(f);
    assert!(wal_len(&dir) > b_end);

    let store = open(&dir);
    assert_eq!(
        store.replayed_groups(),
        3,
        "every complete group before the garbage replays"
    );
    assert_eq!(
        store.read(heap, rid_a).unwrap(),
        b"group A: survives any tail damage"
    );
    assert_eq!(
        store.read(heap, rid_b).unwrap(),
        b"group B: the damaged tail"
    );
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_truncates_the_damaged_wal() {
    // After a recovery open, the checkpoint must clear the damaged WAL so
    // repeated crashes do not re-scan (or grow) a corrupt log.
    let dir = temp_dir("truncate-after");
    two_commits_then_crash(&dir);
    let mut f = OpenOptions::new()
        .append(true)
        .open(dir.join("wal.odb"))
        .unwrap();
    f.write_all(&[0xEE; 17]).unwrap();
    drop(f);

    let store = open(&dir);
    drop(store); // clean close checkpoints
    assert_eq!(wal_len(&dir), 0, "recovery + close must truncate the WAL");
    let store = open(&dir);
    assert_eq!(store.replayed_groups(), 0);
    drop(store);
    std::fs::remove_dir_all(&dir).ok();
}
