//! Fixed-size pages with a slotted record layout.
//!
//! Every page is [`PAGE_SIZE`] bytes. A 24-byte header is followed by a slot
//! directory growing *up* and record data growing *down*; this is the classic
//! slotted-page organization, which lets variable-length records be added,
//! resized, and removed while slot numbers (and therefore record ids) stay
//! stable. Pages are checksummed with CRC-32 when written to disk.
//!
//! ```text
//! +------------------+-----------------------+ ..free.. +---------------+
//! | header (24 B)    | slot 0 | slot 1 | ... |          |  rec1 | rec0  |
//! +------------------+-----------------------+ <-.....- +---------------+
//! 0                 24                    data grows down        PAGE_SIZE
//! ```

use crate::crc::crc32;
use crate::error::{Result, StorageError};

/// Size of every page in the data file, in bytes.
pub const PAGE_SIZE: usize = 8192;
/// Size of the fixed page header.
pub const HEADER_SIZE: usize = 24;
/// Size of one slot-directory entry.
pub const SLOT_SIZE: usize = 4;
/// Magic number identifying Ode pages.
pub const PAGE_MAGIC: u16 = 0x0DE1;
/// Largest record payload a single page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

/// Identifies a page within the data file. Page `0` is the meta page, so
/// `0` doubles as the "none" sentinel in page chains.
pub type PageId = u32;
/// Sentinel for "no page" in chains.
pub const NO_PAGE: PageId = 0;

/// Role of a page, stored in the header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageType {
    /// The directory/meta page chain rooted at page 0.
    Meta,
    /// A slotted page belonging to some heap.
    Heap,
    /// A page on the free list, available for reuse.
    Free,
}

impl PageType {
    fn to_u8(self) -> u8 {
        match self {
            PageType::Meta => 0,
            PageType::Heap => 1,
            PageType::Free => 2,
        }
    }

    fn from_u8(b: u8) -> Result<Self> {
        match b {
            0 => Ok(PageType::Meta),
            1 => Ok(PageType::Heap),
            2 => Ok(PageType::Free),
            other => Err(StorageError::Corrupt(format!("unknown page type {other}"))),
        }
    }
}

/// An in-memory page image plus typed accessors over its layout.
#[derive(Clone)]
pub struct Page {
    buf: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("heap_id", &self.heap_id())
            .field("next_page", &self.next_page())
            .field("slot_count", &self.slot_count())
            .field("free_contiguous", &self.contiguous_free())
            .finish()
    }
}

fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([buf[at], buf[at + 1]])
}

fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

fn write_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

impl Page {
    /// Create a freshly-initialized page of the given type and owner.
    pub fn new(ty: PageType, heap_id: u32) -> Self {
        let mut page = Page {
            buf: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(),
        };
        write_u16(&mut page.buf[..], 0, PAGE_MAGIC);
        page.buf[2] = ty.to_u8();
        write_u32(&mut page.buf[..], 4, heap_id);
        write_u32(&mut page.buf[..], 8, NO_PAGE);
        write_u16(&mut page.buf[..], 12, 0); // slot_count
        write_u16(&mut page.buf[..], 14, PAGE_SIZE as u16); // data_start
        page
    }

    /// Wrap raw bytes read from disk, verifying magic and checksum.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "page image of {} bytes, expected {PAGE_SIZE}",
                bytes.len()
            )));
        }
        let mut buf: Box<[u8; PAGE_SIZE]> = bytes.to_vec().into_boxed_slice().try_into().unwrap();
        if read_u16(&buf[..], 0) != PAGE_MAGIC {
            return Err(StorageError::Corrupt("page magic mismatch".into()));
        }
        let stored_crc = read_u32(&buf[..], 16);
        write_u32(&mut buf[..], 16, 0);
        let computed = crc32(&buf[..]);
        if stored_crc != computed {
            return Err(StorageError::Corrupt(format!(
                "page checksum mismatch: stored {stored_crc:#x}, computed {computed:#x}"
            )));
        }
        PageType::from_u8(buf[2])?;
        Ok(Page { buf })
    }

    /// Serialize the page for disk, stamping the checksum.
    pub fn to_bytes(&self) -> [u8; PAGE_SIZE] {
        let mut out = *self.buf;
        write_u32(&mut out, 16, 0);
        let crc = crc32(&out);
        write_u32(&mut out, 16, crc);
        out
    }

    /// The page's role.
    pub fn page_type(&self) -> PageType {
        PageType::from_u8(self.buf[2]).expect("validated at construction")
    }

    /// Change the page's role (used when recycling free pages).
    pub fn set_page_type(&mut self, ty: PageType) {
        self.buf[2] = ty.to_u8();
    }

    /// Owning heap id (meaningful for heap pages).
    pub fn heap_id(&self) -> u32 {
        read_u32(&self.buf[..], 4)
    }

    /// Set the owning heap id.
    pub fn set_heap_id(&mut self, heap: u32) {
        write_u32(&mut self.buf[..], 4, heap);
    }

    /// Next page in this heap's chain ([`NO_PAGE`] if last).
    pub fn next_page(&self) -> PageId {
        read_u32(&self.buf[..], 8)
    }

    /// Link the next page in the chain.
    pub fn set_next_page(&mut self, next: PageId) {
        write_u32(&mut self.buf[..], 8, next);
    }

    /// Number of slot-directory entries (including freed slots).
    pub fn slot_count(&self) -> u16 {
        read_u16(&self.buf[..], 12)
    }

    fn set_slot_count(&mut self, n: u16) {
        write_u16(&mut self.buf[..], 12, n);
    }

    fn data_start(&self) -> u16 {
        read_u16(&self.buf[..], 14)
    }

    fn set_data_start(&mut self, v: u16) {
        write_u16(&mut self.buf[..], 14, v);
    }

    fn slot_dir_offset(slot: u16) -> usize {
        HEADER_SIZE + SLOT_SIZE * slot as usize
    }

    /// Raw `(offset, len)` of a slot; offset 0 means the slot is free.
    fn slot_entry(&self, slot: u16) -> (u16, u16) {
        let at = Self::slot_dir_offset(slot);
        (read_u16(&self.buf[..], at), read_u16(&self.buf[..], at + 2))
    }

    fn set_slot_entry(&mut self, slot: u16, offset: u16, len: u16) {
        let at = Self::slot_dir_offset(slot);
        write_u16(&mut self.buf[..], at, offset);
        write_u16(&mut self.buf[..], at + 2, len);
    }

    /// Does `slot` currently hold a record?
    pub fn slot_in_use(&self, slot: u16) -> bool {
        slot < self.slot_count() && self.slot_entry(slot).0 != 0
    }

    /// Read the record stored in `slot`.
    pub fn record(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let (off, len) = self.slot_entry(slot);
        if off == 0 {
            return None;
        }
        Some(&self.buf[off as usize..off as usize + len as usize])
    }

    /// Bytes free in the contiguous gap between the slot directory and the
    /// record area. A new slot costs [`SLOT_SIZE`] out of this gap.
    pub fn contiguous_free(&self) -> usize {
        let dir_end = HEADER_SIZE + SLOT_SIZE * self.slot_count() as usize;
        self.data_start() as usize - dir_end
    }

    /// Total reclaimable free bytes, counting holes left by deleted or
    /// shrunk records (recoverable via [`Page::compact`]).
    pub fn total_free(&self) -> usize {
        let mut live = 0usize;
        for s in 0..self.slot_count() {
            let (off, len) = self.slot_entry(s);
            if off != 0 {
                live += len as usize;
            }
        }
        PAGE_SIZE - HEADER_SIZE - SLOT_SIZE * self.slot_count() as usize - live
    }

    /// Find a reusable (freed) slot, if any.
    fn find_free_slot(&self) -> Option<u16> {
        (0..self.slot_count()).find(|&s| self.slot_entry(s).0 == 0)
    }

    /// Would a record of `len` bytes fit (possibly after compaction)?
    pub fn can_insert(&self, len: usize) -> bool {
        let slot_cost = if self.find_free_slot().is_some() {
            0
        } else {
            SLOT_SIZE
        };
        self.total_free() >= len + slot_cost
    }

    /// Insert a record, compacting if fragmentation requires it. Returns the
    /// slot number, or `None` if the page genuinely lacks space.
    pub fn insert(&mut self, data: &[u8]) -> Option<u16> {
        if !self.can_insert(data.len()) {
            return None;
        }
        let slot = match self.find_free_slot() {
            Some(s) => s,
            None => {
                // The directory grows into the contiguous gap; make room
                // *before* extending it, or the new entry would overwrite
                // record bytes.
                if self.contiguous_free() < SLOT_SIZE {
                    self.compact();
                }
                debug_assert!(self.contiguous_free() >= SLOT_SIZE);
                let s = self.slot_count();
                self.set_slot_count(s + 1);
                self.set_slot_entry(s, 0, 0);
                s
            }
        };
        if self.contiguous_free() < data.len() {
            self.compact();
        }
        debug_assert!(self.contiguous_free() >= data.len());
        let new_start = self.data_start() as usize - data.len();
        self.buf[new_start..new_start + data.len()].copy_from_slice(data);
        self.set_data_start(new_start as u16);
        self.set_slot_entry(slot, new_start as u16, data.len() as u16);
        Some(slot)
    }

    /// Ensure the page has at least `slot + 1` directory entries, marking any
    /// newly added entries free. Used by idempotent WAL replay, which must
    /// recreate records at exact slots. Fails (returns false) if growing the
    /// directory would not fit.
    pub fn ensure_slot(&mut self, slot: u16) -> bool {
        while self.slot_count() <= slot {
            if self.contiguous_free() < SLOT_SIZE {
                self.compact();
                if self.contiguous_free() < SLOT_SIZE {
                    return false;
                }
            }
            let n = self.slot_count();
            self.set_slot_count(n + 1);
            self.set_slot_entry(n, 0, 0);
        }
        true
    }

    /// Replace the record in `slot` with `data`, reusing its space when the
    /// new image is no larger, otherwise relocating within the page. Returns
    /// false if the page cannot hold the new image (caller forwards the
    /// record to another page). The slot may be currently free (WAL replay).
    pub fn update(&mut self, slot: u16, data: &[u8]) -> bool {
        if slot >= self.slot_count() {
            return false;
        }
        let (off, len) = self.slot_entry(slot);
        if off != 0 && data.len() <= len as usize {
            // Shrink or same-size: rewrite in place, keep the original
            // extent length so the hole stays reclaimable by compaction.
            let off = off as usize;
            self.buf[off..off + data.len()].copy_from_slice(data);
            self.set_slot_entry(slot, off as u16, data.len() as u16);
            return true;
        }
        // Grows (or slot empty): free the old extent, then insert fresh.
        let old = (off, len);
        self.set_slot_entry(slot, 0, 0);
        let total = self.total_free();
        if total < data.len() {
            // Roll back: it will not fit even after compaction.
            self.set_slot_entry(slot, old.0, old.1);
            return false;
        }
        if self.contiguous_free() < data.len() {
            self.compact();
        }
        let new_start = self.data_start() as usize - data.len();
        self.buf[new_start..new_start + data.len()].copy_from_slice(data);
        self.set_data_start(new_start as u16);
        self.set_slot_entry(slot, new_start as u16, data.len() as u16);
        true
    }

    /// Remove the record in `slot`; the slot becomes reusable. Trailing free
    /// slots are trimmed so directories do not grow without bound.
    pub fn delete(&mut self, slot: u16) {
        if slot >= self.slot_count() {
            return;
        }
        self.set_slot_entry(slot, 0, 0);
        // Trim trailing free slots.
        let mut n = self.slot_count();
        while n > 0 && self.slot_entry(n - 1).0 == 0 {
            n -= 1;
        }
        self.set_slot_count(n);
    }

    /// Slide all live records against the end of the page, eliminating holes.
    pub fn compact(&mut self) {
        let mut live: Vec<(u16, u16, u16)> = (0..self.slot_count())
            .filter_map(|s| {
                let (off, len) = self.slot_entry(s);
                (off != 0).then_some((s, off, len))
            })
            .collect();
        // Move records starting from the one closest to the end of the page
        // so that shifts never overwrite unmoved data.
        live.sort_by_key(|&(_, off, _)| std::cmp::Reverse(off));
        let mut cursor = PAGE_SIZE;
        for (slot, off, len) in live {
            let len_us = len as usize;
            let new_off = cursor - len_us;
            self.buf
                .copy_within(off as usize..off as usize + len_us, new_off);
            self.set_slot_entry(slot, new_off as u16, len);
            cursor = new_off;
        }
        self.set_data_start(cursor as u16);
    }

    /// Iterate over `(slot, record_bytes)` for every live slot.
    pub fn iter_records(&self) -> impl Iterator<Item = (u16, &[u8])> + '_ {
        (0..self.slot_count()).filter_map(move |s| self.record(s).map(|r| (s, r)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_bytes() {
        let mut p = Page::new(PageType::Heap, 7);
        p.set_next_page(42);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        let bytes = p.to_bytes();
        let q = Page::from_bytes(&bytes).unwrap();
        assert_eq!(q.heap_id(), 7);
        assert_eq!(q.next_page(), 42);
        assert_eq!(q.record(s0).unwrap(), b"hello");
        assert_eq!(q.record(s1).unwrap(), b"world!");
    }

    #[test]
    fn corruption_is_detected() {
        let p = Page::new(PageType::Heap, 1);
        let mut bytes = p.to_bytes();
        bytes[100] ^= 0xFF;
        assert!(matches!(
            Page::from_bytes(&bytes),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn insert_until_full_then_reject() {
        let mut p = Page::new(PageType::Heap, 1);
        let rec = vec![0xAB; 100];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        // 8192 - 24 header; each record costs 100 + 4 slot bytes.
        assert_eq!(n, (PAGE_SIZE - HEADER_SIZE) / 104);
        assert!(!p.can_insert(100));
        // The remaining space minus a fresh slot entry is still usable.
        assert!(p.can_insert(p.total_free() - SLOT_SIZE));
    }

    #[test]
    fn delete_reuses_slot_and_space() {
        let mut p = Page::new(PageType::Heap, 1);
        let a = p.insert(&[1u8; 50]).unwrap();
        let b = p.insert(&[2u8; 50]).unwrap();
        p.delete(a);
        assert!(p.record(a).is_none());
        assert!(p.record(b).is_some());
        let c = p.insert(&[3u8; 40]).unwrap();
        assert_eq!(c, a, "freed slot should be reused");
        assert_eq!(p.record(c).unwrap(), &[3u8; 40][..]);
    }

    #[test]
    fn trailing_slots_trimmed_on_delete() {
        let mut p = Page::new(PageType::Heap, 1);
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        assert_eq!(p.slot_count(), 2);
        p.delete(b);
        assert_eq!(p.slot_count(), 1);
        p.delete(a);
        assert_eq!(p.slot_count(), 0);
    }

    #[test]
    fn update_in_place_and_grow() {
        let mut p = Page::new(PageType::Heap, 1);
        let s = p.insert(&[7u8; 64]).unwrap();
        assert!(p.update(s, &[8u8; 32]));
        assert_eq!(p.record(s).unwrap(), &[8u8; 32][..]);
        assert!(p.update(s, &[9u8; 128]));
        assert_eq!(p.record(s).unwrap(), &[9u8; 128][..]);
    }

    #[test]
    fn update_that_cannot_fit_fails_without_damage() {
        let mut p = Page::new(PageType::Heap, 1);
        let filler = p.insert(&vec![1u8; 4000]).unwrap();
        let s = p.insert(&vec![2u8; 4000]).unwrap();
        assert!(!p.update(s, &vec![3u8; 5000]));
        assert_eq!(p.record(s).unwrap(), &vec![2u8; 4000][..]);
        assert_eq!(p.record(filler).unwrap(), &vec![1u8; 4000][..]);
    }

    #[test]
    fn compaction_recovers_holes() {
        let mut p = Page::new(PageType::Heap, 1);
        let mut slots = Vec::new();
        for i in 0..20 {
            slots.push(p.insert(&vec![i as u8; 300]).unwrap());
        }
        // Delete every other record to create holes.
        for (i, &s) in slots.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(s);
            }
        }
        let big = vec![0xEE; 2000];
        assert!(p.can_insert(big.len()));
        let s = p.insert(&big).unwrap();
        assert_eq!(p.record(s).unwrap(), &big[..]);
        // Survivors unharmed.
        for (i, &s) in slots.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(p.record(s).unwrap(), &vec![i as u8; 300][..]);
            }
        }
    }

    #[test]
    fn ensure_slot_extends_directory() {
        let mut p = Page::new(PageType::Heap, 1);
        assert!(p.ensure_slot(5));
        assert_eq!(p.slot_count(), 6);
        assert!(!p.slot_in_use(5));
        assert!(p.update(5, b"replayed"));
        assert_eq!(p.record(5).unwrap(), b"replayed");
    }

    #[test]
    fn iter_records_skips_holes() {
        let mut p = Page::new(PageType::Heap, 1);
        let a = p.insert(b"a").unwrap();
        let b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(b);
        let seen: Vec<(u16, Vec<u8>)> = p.iter_records().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(seen, vec![(a, b"a".to_vec()), (c, b"c".to_vec())]);
    }

    #[test]
    fn directory_growth_with_fragmented_space_does_not_corrupt() {
        // Regression (found by proptest): when contiguous space is
        // exhausted but holes exist, growing the slot directory used to
        // overwrite record bytes.
        let mut p = Page::new(PageType::Heap, 1);
        // Fill the page completely with two records.
        let half = (PAGE_SIZE - HEADER_SIZE - 2 * SLOT_SIZE) / 2;
        let a = p.insert(&vec![0xAA; half]).unwrap();
        let b = p.insert(&vec![0xBB; half]).unwrap();
        assert!(p.contiguous_free() < SLOT_SIZE);
        // Free the first record: plenty of total space, zero contiguous.
        p.delete(a);
        // Slot a is reused, no directory growth needed — fine either way.
        let c = p.insert(&[0xCC; 64]).unwrap();
        assert_eq!(c, a);
        // Now force directory growth while contiguous space is tiny.
        let d = p.insert(&[0xDD; 64]).unwrap();
        assert_eq!(p.record(b).unwrap(), &vec![0xBB; half][..]);
        assert_eq!(p.record(c).unwrap(), &[0xCC; 64][..]);
        assert_eq!(p.record(d).unwrap(), &[0xDD; 64][..]);
        // And the page still round-trips its checksum.
        let q = Page::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(q.record(b).unwrap(), &vec![0xBB; half][..]);
    }

    #[test]
    fn max_record_fits_exactly() {
        let mut p = Page::new(PageType::Heap, 1);
        let data = vec![0x55; MAX_RECORD];
        let s = p.insert(&data).unwrap();
        assert_eq!(p.record(s).unwrap().len(), MAX_RECORD);
        assert_eq!(p.contiguous_free(), 0);
    }
}
