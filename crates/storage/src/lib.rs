//! # ode-storage
//!
//! The persistent-store substrate for Ode, the object database described in
//! Agrawal & Gehani, *"ODE (Object Database and Environment): The Language
//! and the Data Model"*, SIGMOD 1989.
//!
//! The paper assumes "a large, if not infinite, persistent store" without
//! specifying its implementation; this crate provides that substrate from
//! scratch:
//!
//! * [`page`] — fixed-size 8 KiB pages with CRC32 checksums,
//! * [`pager`] — a file-backed pager with an LRU buffer pool,
//! * [`heap`] — slotted-page heap files with stable record ids, in-place
//!   update, forwarding for records that outgrow their page, and page
//!   compaction,
//! * [`wal`] — a redo-only write-ahead log with CRC-framed records and
//!   idempotent replay,
//! * [`store`] — the [`store::Store`] trait consumed by the engine,
//!   with a durable [`filestore::FileStore`] and an in-memory
//!   [`memstore::MemStore`] for tests.
//!
//! ## Durability protocol
//!
//! The engine above uses *deferred update*: a transaction's writes are kept
//! in its private write-set and reach the store only through a single
//! [`store::Store::commit`] batch. The store appends the
//! batch to the WAL, fsyncs, and only then applies it to buffer-pool pages,
//! so the data file never runs ahead of the log. Recovery replays committed
//! batches from the last checkpoint; every WAL operation is idempotent
//! ("ensure record `rid` holds these bytes"), so replay after a crash at any
//! point is safe.
//!
//! Record ids are handed out *before* commit via
//! [`store::Store::reserve`] so that object identity (the
//! paper's object ids, §2) is available as soon as an object is created;
//! reservations that never commit are reclaimed on recovery.

pub mod crc;
pub mod error;
pub mod failpoint;
pub mod filestore;
pub mod heap;
pub mod memstore;
pub mod page;
pub mod pager;
pub mod store;
pub mod wal;

pub use error::{Result, StorageError};
pub use failpoint::{FailpointConfig, FailpointStore, FaultKind};
pub use filestore::FileStore;
pub use heap::RecordId;
pub use memstore::MemStore;
pub use store::{CommitTicket, HeapId, Store, StoreOp, StoreStats};
