//! The [`Store`] trait: the storage interface consumed by the Ode engine.
//!
//! A store is a set of *heaps* (one per Ode cluster plus one for the
//! catalog) holding byte records with stable [`RecordId`]s. The engine's
//! transaction layer keeps uncommitted changes in its own write-set and
//! funnels them into a single atomic [`Store::commit`] batch; the only
//! pre-commit side effect is [`Store::reserve`], which pins a record id so
//! newly created objects have their identity immediately (paper §2: the id
//! returned by `pnew`).

use crate::error::Result;
use crate::heap::RecordId;
use crate::pager::PagerStats;

/// Identifies a heap (an Ode cluster's extent, or the catalog).
pub type HeapId = u32;

/// One mutation inside a commit batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreOp {
    /// Write `data` at `rid` (which was earlier reserved or already holds a
    /// record).
    Put {
        heap: HeapId,
        rid: RecordId,
        data: Vec<u8>,
    },
    /// Remove the record at `rid`.
    Delete { heap: HeapId, rid: RecordId },
}

/// Counters for the substrate benches (figures F8/F9) and the engine's
/// telemetry snapshot.
#[derive(Debug, Default, Clone, Copy)]
pub struct StoreStats {
    /// Buffer-pool counters (zero for the in-memory store).
    pub pager: PagerStats,
    /// Bytes in the WAL since the last checkpoint.
    pub wal_bytes: u64,
    /// Pages in the data file.
    pub page_count: u32,
    /// Committed batches since open.
    pub commits: u64,
    /// Record reads served.
    pub record_reads: u64,
    /// Records written by commit batches (`Put` ops applied).
    pub record_writes: u64,
    /// WAL commit groups appended (zero for the in-memory store).
    pub wal_appends: u64,
    /// WAL fsyncs issued (zero when sync is disabled).
    pub wal_fsyncs: u64,
    /// WAL commit groups replayed during recovery at the last open.
    pub replayed_groups: u64,
    /// Faults injected by a wrapping [`crate::FailpointStore`] (always
    /// zero for the concrete stores themselves).
    pub faults_injected: u64,
    /// Checkpoint attempts that failed; each leaves the WAL intact, so
    /// durability is unharmed (DESIGN.md §10).
    pub checkpoint_failures: u64,
    /// Group-commit fsync cohorts: each counts one `sync_data` that made
    /// one *or more* prepared commits durable (DESIGN.md §13).
    pub commit_groups: u64,
    /// Commits whose durability rode a cohort fsync. `commit_group_members
    /// / commit_groups` is the mean cohort size; under contention it
    /// exceeds 1 and fsyncs-per-commit drops below 1.
    pub commit_group_members: u64,
}

/// A prepared-but-not-yet-applied commit, returned by
/// [`Store::commit_prepare`] and consumed by [`Store::commit_apply`] (or
/// [`Store::commit_abandon`] on failure). For stores without a WAL the
/// ticket just carries the ops; [`crate::FileStore`] stamps `seq` with the
/// WAL group sequence so followers can wait for a leader's fsync to cover
/// them.
#[derive(Debug, Clone)]
pub struct CommitTicket {
    /// WAL group sequence (0 for stores without a WAL).
    pub seq: u64,
    /// The batch, carried from prepare to apply.
    pub ops: Vec<StoreOp>,
}

/// Abstract persistent store. Implementations: [`crate::FileStore`]
/// (durable) and [`crate::MemStore`] (tests/benches without I/O).
///
/// All methods take `&self`; implementations synchronize internally.
/// Mutations (commit, reserve, heap DDL) serialize behind one structural
/// lock per store, while `read` and `scan` run on a shared path — the
/// lock-striped buffer pool in [`crate::FileStore`], a reader-writer lock
/// in [`crate::MemStore`] — so concurrent readers never contend with each
/// other (DESIGN.md §8).
pub trait Store: Send + Sync {
    /// Create a new heap and return its id. Ids are assigned sequentially
    /// starting at 1, so a fresh store's first heap (the engine's catalog)
    /// is always heap 1.
    fn create_heap(&self) -> Result<HeapId>;

    /// Drop a heap and free its pages.
    fn drop_heap(&self, heap: HeapId) -> Result<()>;

    /// Does `heap` exist?
    fn has_heap(&self, heap: HeapId) -> bool;

    /// Reserve a fresh record id in `heap` without writing data.
    /// `size_hint` pre-sizes the extent for the eventual `Put`.
    fn reserve(&self, heap: HeapId, size_hint: usize) -> Result<RecordId>;

    /// Release a reservation that will never be committed (abort path).
    fn release(&self, heap: HeapId, rid: RecordId) -> Result<()>;

    /// Read a committed record.
    fn read(&self, heap: HeapId, rid: RecordId) -> Result<Vec<u8>>;

    /// Atomically apply a batch: either every op becomes durable or none.
    fn commit(&self, ops: Vec<StoreOp>) -> Result<()>;

    /// Phase 1 of the three-phase commit used by the multi-writer engine
    /// (DESIGN.md §13): append the batch to the log *without* waiting for
    /// durability. Called inside the engine's commit gate, so WAL order
    /// matches epoch order. On error nothing was logged and the commit may
    /// be retried.
    ///
    /// The default (for stores without a WAL) just wraps the ops in a
    /// ticket; [`Store::commit_apply`] does all the work.
    fn commit_prepare(&self, ops: Vec<StoreOp>) -> Result<CommitTicket> {
        Ok(CommitTicket { seq: 0, ops })
    }

    /// Phase 2: make the prepared batch durable. Runs *outside* the
    /// engine's locks; concurrent callers share one fsync via leader/
    /// follower handoff in [`crate::FileStore`]. On error the batch is not
    /// durable and must be abandoned ([`Store::commit_abandon`]).
    fn commit_durable(&self, _ticket: &CommitTicket) -> Result<()> {
        Ok(())
    }

    /// Phase 3: apply the batch to the live pages/heaps. Called under the
    /// engine's apply gate so snapshot readers never observe a torn batch.
    fn commit_apply(&self, ticket: CommitTicket) -> Result<()> {
        self.commit(ticket.ops)
    }

    /// May the engine re-issue [`Store::commit_apply`] with a clone of the
    /// same ticket after a transient failure? True for stores whose apply
    /// *is* the whole (idempotent) commit — the default path. `false` for
    /// [`crate::FileStore`], whose apply bookkeeping is once-only: a
    /// durable-but-unapplied batch there is replayed by recovery instead.
    fn commit_apply_retryable(&self) -> bool {
        true
    }

    /// Abandon a prepared batch whose durability failed: releases any
    /// bookkeeping (e.g. the checkpoint barrier) without applying. The
    /// logged group stays in the WAL; recovery may still replay it, which
    /// is the same in-doubt window as a lost commit ack (DESIGN.md §10).
    fn commit_abandon(&self, _ticket: CommitTicket) {}

    /// Visit every record of `heap` in stable (record-id) order; the
    /// callback returns `false` to stop early.
    fn scan(
        &self,
        heap: HeapId,
        visit: &mut dyn FnMut(RecordId, &[u8]) -> Result<bool>,
    ) -> Result<()>;

    /// Force all state to the data file and truncate the WAL.
    fn checkpoint(&self) -> Result<()>;

    /// Substrate counters.
    fn stats(&self) -> StoreStats;

    /// Per-shard buffer-pool counters (index = shard number); empty for
    /// stores without a buffer pool. Skewed shards reveal striping hot
    /// spots that the pool-wide totals in [`Store::stats`] hide.
    fn pager_shard_stats(&self) -> Vec<PagerStats> {
        Vec::new()
    }

    /// Reset counters (benches measure deltas).
    fn reset_stats(&self);

    /// Drop cached pages (benches: force cold-cache reads). No-op for the
    /// in-memory store.
    fn clear_cache(&self) -> Result<()>;

    /// Toggle fsync-per-commit. Defaults to on for durable stores; benches
    /// that characterize the non-durable path may disable it.
    fn set_sync(&self, sync: bool);
}
