//! CRC-32 (IEEE 802.3 polynomial) used to checksum pages and WAL records.
//!
//! Implemented from scratch (table-driven, reflected form) so the on-disk
//! format has no external dependencies. The polynomial and bit order match
//! the ubiquitous zlib/Ethernet CRC-32, which makes the format easy to
//! inspect with standard tools.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lazily-built 256-entry lookup table, computed at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Compute the CRC-32 of `data` in one shot.
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Hasher::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC-32 hasher for framing multi-part records.
#[derive(Debug, Clone)]
pub struct Hasher {
    state: u32,
}

impl Hasher {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Hasher { state: 0xFFFF_FFFF }
    }

    /// Feed more bytes into the checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut s = self.state;
        for &b in data {
            s = TABLE[((s ^ b as u32) & 0xFF) as usize] ^ (s >> 8);
        }
        self.state = s;
    }

    /// Finalize and return the checksum value.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values produced by zlib's crc32().
    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"hello, persistent world";
        let mut h = Hasher::new();
        h.update(&data[..5]);
        h.update(&data[5..]);
        assert_eq!(h.finish(), crc32(data));
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 1024];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let before = crc32(&data);
        data[512] ^= 0x10;
        assert_ne!(before, crc32(&data));
    }

    #[test]
    fn empty_update_is_identity() {
        let mut h = Hasher::new();
        h.update(b"");
        h.update(b"xyz");
        h.update(b"");
        assert_eq!(h.finish(), crc32(b"xyz"));
    }
}
