//! Error type shared by every storage component.

use std::fmt;

/// Errors surfaced by the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O error, tagged with the operation that failed.
    Io {
        /// Short description of what the store was doing ("read page", …).
        context: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A page or WAL record failed its CRC check.
    Corrupt(String),
    /// A record id that does not name a live record.
    NoSuchRecord { heap: u32, page: u32, slot: u16 },
    /// A heap id that does not name a live heap.
    NoSuchHeap(u32),
    /// A record larger than a page can hold even after forwarding.
    RecordTooLarge { size: usize, max: usize },
    /// The data file does not look like an Ode store.
    BadMagic,
    /// The on-disk format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// An internal invariant was violated; indicates a bug, not user error.
    Internal(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { context, source } => {
                write!(f, "i/o error while trying to {context}: {source}")
            }
            StorageError::Corrupt(what) => write!(f, "corruption detected: {what}"),
            StorageError::NoSuchRecord { heap, page, slot } => {
                write!(f, "no record at heap {heap}, page {page}, slot {slot}")
            }
            StorageError::NoSuchHeap(h) => write!(f, "no heap with id {h}"),
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds the maximum of {max}")
            }
            StorageError::BadMagic => write!(f, "not an Ode data file (bad magic)"),
            StorageError::UnsupportedVersion(v) => {
                write!(f, "on-disk format version {v} is not supported")
            }
            StorageError::Internal(msg) => write!(f, "internal storage invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl StorageError {
    /// Wrap an [`std::io::Error`] with a short context string.
    pub fn io(context: &'static str, source: std::io::Error) -> Self {
        StorageError::Io { context, source }
    }

    /// Is this failure worth retrying? Operating-system I/O errors
    /// (ENOSPC, a flaky disk) can clear up; after a failed commit the WAL
    /// rolls its tail back to the last complete group, so re-issuing the
    /// identical batch is safe (DESIGN.md §10). Corruption, missing
    /// records, and format errors are permanent.
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Io { .. })
    }
}

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = StorageError::io("read page", std::io::Error::other("boom"));
        let s = e.to_string();
        assert!(s.contains("read page"), "{s}");
        assert!(s.contains("boom"), "{s}");
    }

    #[test]
    fn display_no_such_record() {
        let e = StorageError::NoSuchRecord {
            heap: 3,
            page: 7,
            slot: 2,
        };
        assert_eq!(e.to_string(), "no record at heap 3, page 7, slot 2");
    }

    #[test]
    fn error_source_is_preserved() {
        use std::error::Error;
        let e = StorageError::io("sync wal", std::io::Error::other("disk gone"));
        assert!(e.source().is_some());
        let e2 = StorageError::BadMagic;
        assert!(e2.source().is_none());
    }
}
