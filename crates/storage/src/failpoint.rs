//! Deterministic fault injection at the [`Store`] boundary.
//!
//! [`FailpointStore`] wraps any store and injects typed, seed-driven
//! faults at every I/O-shaped operation: commit failures before the WAL
//! append (ENOSPC, a dying disk), acknowledgement loss *after* a durable
//! append (the in-doubt window every durable system has), checkpoint
//! failures, release failures on the abort path, and read failures. The
//! schedule is a pure function of the seed, so a failing torture run
//! replays exactly from its seed (DESIGN.md §10).
//!
//! Faults injected here model the *error-return* half of the failure
//! model; torn WAL tails and bit flips are file-level damage that the
//! crash-torture harness inflicts directly between crash and reopen.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::heap::RecordId;
use crate::store::{CommitTicket, HeapId, Store, StoreOp, StoreStats};

/// Which failpoint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// `commit` failed before anything reached the inner store: the batch
    /// is definitely not durable and definitely not visible.
    CommitPre,
    /// The inner `commit` succeeded — the batch IS durable — but the
    /// acknowledgement was "lost" and an error returned instead. The
    /// batch is in doubt from the caller's point of view.
    CommitAckLoss,
    /// The group-commit fsync window failed (`commit_durable`): the batch
    /// is appended to the WAL but its durability was never confirmed, and
    /// the whole cohort sharing the fsync fails with it. In doubt.
    GroupSync,
    /// `checkpoint` failed. The WAL is left intact, so no data is lost.
    Checkpoint,
    /// `release` failed on the abort path (the reservation leaks until
    /// the next reopen reclaims it).
    Release,
    /// `read` failed transiently.
    Read,
}

impl FaultKind {
    fn context(self) -> &'static str {
        match self {
            FaultKind::CommitPre => "append wal group (injected: no space left on device)",
            FaultKind::CommitAckLoss => "acknowledge commit (injected: ack lost after append)",
            FaultKind::GroupSync => "group-commit fsync (injected: cohort sync failed)",
            FaultKind::Checkpoint => "checkpoint (injected)",
            FaultKind::Release => "release reservation (injected)",
            FaultKind::Read => "read record (injected)",
        }
    }

    fn error(self) -> StorageError {
        StorageError::io(self.context(), std::io::Error::other("injected fault"))
    }
}

/// Fault schedule: each operation fires with probability `1/denominator`
/// (0 disables that failpoint). The schedule is driven by a seeded
/// SplitMix64, so two stores built with the same config inject the same
/// faults in the same order.
#[derive(Debug, Clone)]
pub struct FailpointConfig {
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// 1-in-N chance a `commit` fails before reaching the inner store.
    pub commit_pre: u32,
    /// 1-in-N chance a `commit` succeeds durably but reports an error.
    pub commit_ack_loss: u32,
    /// 1-in-N chance a `commit_durable` (group-commit fsync) fails.
    pub group_sync: u32,
    /// 1-in-N chance a `checkpoint` fails.
    pub checkpoint: u32,
    /// 1-in-N chance a `release` fails.
    pub release: u32,
    /// 1-in-N chance a `read` fails.
    pub read: u32,
}

impl FailpointConfig {
    /// All failpoints disabled (pure pass-through; still counts nothing).
    pub fn disabled(seed: u64) -> FailpointConfig {
        FailpointConfig {
            seed,
            commit_pre: 0,
            commit_ack_loss: 0,
            group_sync: 0,
            checkpoint: 0,
            release: 0,
            read: 0,
        }
    }

    /// The torture-harness default: commit-path faults common, the rest
    /// occasional.
    pub fn torture(seed: u64) -> FailpointConfig {
        FailpointConfig {
            seed,
            commit_pre: 6,
            commit_ack_loss: 10,
            group_sync: 10,
            checkpoint: 8,
            release: 4,
            read: 0,
        }
    }
}

/// SplitMix64: tiny, deterministic, good enough for a fault schedule.
/// Embedded here so the crate keeps its single `parking_lot` dependency.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A [`Store`] wrapper that injects deterministic faults. See the module
/// docs for the taxonomy.
pub struct FailpointStore {
    inner: Arc<dyn Store>,
    cfg: FailpointConfig,
    rng: Mutex<SplitMix64>,
    /// One-shot scripted fault, consumed by the next matching operation.
    forced: Mutex<Option<FaultKind>>,
    /// The most recent fault, for callers classifying an error they just
    /// received (the torture harness's durable/in-doubt split).
    last: Mutex<Option<FaultKind>>,
    faults: AtomicU64,
}

impl FailpointStore {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: Arc<dyn Store>, cfg: FailpointConfig) -> FailpointStore {
        let rng = Mutex::new(SplitMix64(cfg.seed));
        FailpointStore {
            inner,
            cfg,
            rng,
            forced: Mutex::new(None),
            last: Mutex::new(None),
            faults: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &Arc<dyn Store> {
        &self.inner
    }

    /// Script exactly one fault: the next operation matching `kind` fails
    /// regardless of the probabilistic schedule.
    pub fn force(&self, kind: FaultKind) {
        *self.forced.lock() = Some(kind);
    }

    /// Faults injected so far.
    pub fn faults_injected(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// The most recent injected fault, cleared on read. After a failed
    /// `commit`, this tells the caller whether the batch is definitely
    /// absent ([`FaultKind::CommitPre`]) or in doubt
    /// ([`FaultKind::CommitAckLoss`]).
    pub fn take_last_fault(&self) -> Option<FaultKind> {
        self.last.lock().take()
    }

    /// Should `kind` fire now? Consults the scripted one-shot first, then
    /// the probabilistic schedule.
    fn fires(&self, kind: FaultKind, denom: u32) -> bool {
        {
            let mut forced = self.forced.lock();
            if *forced == Some(kind) {
                *forced = None;
                return true;
            }
        }
        denom != 0 && self.rng.lock().next().is_multiple_of(denom as u64)
    }

    fn inject(&self, kind: FaultKind) -> StorageError {
        self.faults.fetch_add(1, Ordering::Relaxed);
        *self.last.lock() = Some(kind);
        kind.error()
    }
}

impl Store for FailpointStore {
    fn create_heap(&self) -> Result<HeapId> {
        self.inner.create_heap()
    }

    fn drop_heap(&self, heap: HeapId) -> Result<()> {
        self.inner.drop_heap(heap)
    }

    fn has_heap(&self, heap: HeapId) -> bool {
        self.inner.has_heap(heap)
    }

    fn reserve(&self, heap: HeapId, size_hint: usize) -> Result<RecordId> {
        self.inner.reserve(heap, size_hint)
    }

    fn release(&self, heap: HeapId, rid: RecordId) -> Result<()> {
        if self.fires(FaultKind::Release, self.cfg.release) {
            return Err(self.inject(FaultKind::Release));
        }
        self.inner.release(heap, rid)
    }

    fn read(&self, heap: HeapId, rid: RecordId) -> Result<Vec<u8>> {
        if self.fires(FaultKind::Read, self.cfg.read) {
            return Err(self.inject(FaultKind::Read));
        }
        self.inner.read(heap, rid)
    }

    fn commit(&self, ops: Vec<StoreOp>) -> Result<()> {
        if self.fires(FaultKind::CommitPre, self.cfg.commit_pre) {
            return Err(self.inject(FaultKind::CommitPre));
        }
        // Decide ack loss *before* the inner commit so the schedule stays
        // a pure function of the seed, independent of inner outcomes.
        let ack_loss = self.fires(FaultKind::CommitAckLoss, self.cfg.commit_ack_loss);
        self.inner.commit(ops)?;
        if ack_loss {
            return Err(self.inject(FaultKind::CommitAckLoss));
        }
        Ok(())
    }

    fn commit_prepare(&self, ops: Vec<StoreOp>) -> Result<CommitTicket> {
        // Same fault as the legacy path's pre-append failure: nothing was
        // logged, the batch is definitely absent, the caller may retry.
        if self.fires(FaultKind::CommitPre, self.cfg.commit_pre) {
            return Err(self.inject(FaultKind::CommitPre));
        }
        self.inner.commit_prepare(ops)
    }

    fn commit_durable(&self, ticket: &CommitTicket) -> Result<()> {
        // The cohort fsync "fails": the group sits in the WAL unsynced, so
        // recovery may or may not replay it — the in-doubt window.
        if self.fires(FaultKind::GroupSync, self.cfg.group_sync) {
            return Err(self.inject(FaultKind::GroupSync));
        }
        self.inner.commit_durable(ticket)
    }

    fn commit_apply(&self, ticket: CommitTicket) -> Result<()> {
        // Ack loss after the batch is durable and applied, mirroring the
        // legacy commit path (decided first for schedule purity).
        let ack_loss = self.fires(FaultKind::CommitAckLoss, self.cfg.commit_ack_loss);
        self.inner.commit_apply(ticket)?;
        if ack_loss {
            return Err(self.inject(FaultKind::CommitAckLoss));
        }
        Ok(())
    }

    fn commit_abandon(&self, ticket: CommitTicket) {
        self.inner.commit_abandon(ticket);
    }

    fn commit_apply_retryable(&self) -> bool {
        self.inner.commit_apply_retryable()
    }

    fn scan(
        &self,
        heap: HeapId,
        visit: &mut dyn FnMut(RecordId, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        self.inner.scan(heap, visit)
    }

    fn checkpoint(&self) -> Result<()> {
        if self.fires(FaultKind::Checkpoint, self.cfg.checkpoint) {
            return Err(self.inject(FaultKind::Checkpoint));
        }
        self.inner.checkpoint()
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            faults_injected: self.faults_injected(),
            ..self.inner.stats()
        }
    }

    fn pager_shard_stats(&self) -> Vec<crate::pager::PagerStats> {
        self.inner.pager_shard_stats()
    }

    fn reset_stats(&self) {
        self.faults.store(0, Ordering::Relaxed);
        self.inner.reset_stats();
    }

    fn clear_cache(&self) -> Result<()> {
        self.inner.clear_cache()
    }

    fn set_sync(&self, sync: bool) {
        self.inner.set_sync(sync);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memstore::MemStore;

    fn put(heap: HeapId, rid: RecordId, data: &[u8]) -> StoreOp {
        StoreOp::Put {
            heap,
            rid,
            data: data.to_vec(),
        }
    }

    #[test]
    fn disabled_config_is_a_pass_through() {
        let fp = FailpointStore::new(Arc::new(MemStore::new()), FailpointConfig::disabled(1));
        let heap = fp.create_heap().unwrap();
        let rid = fp.reserve(heap, 8).unwrap();
        fp.commit(vec![put(heap, rid, b"x")]).unwrap();
        assert_eq!(fp.read(heap, rid).unwrap(), b"x");
        assert_eq!(fp.faults_injected(), 0);
        assert_eq!(fp.stats().faults_injected, 0);
    }

    #[test]
    fn forced_commit_pre_fails_without_touching_inner() {
        let inner: Arc<dyn Store> = Arc::new(MemStore::new());
        let fp = FailpointStore::new(Arc::clone(&inner), FailpointConfig::disabled(1));
        let heap = fp.create_heap().unwrap();
        let rid = fp.reserve(heap, 8).unwrap();
        fp.force(FaultKind::CommitPre);
        let err = fp.commit(vec![put(heap, rid, b"lost")]).unwrap_err();
        assert!(err.is_transient(), "{err}");
        assert_eq!(fp.take_last_fault(), Some(FaultKind::CommitPre));
        assert!(inner.read(heap, rid).is_err(), "batch must not be applied");
        assert_eq!(fp.faults_injected(), 1);
        // Retry succeeds: the failpoint was one-shot.
        fp.commit(vec![put(heap, rid, b"retried")]).unwrap();
        assert_eq!(fp.read(heap, rid).unwrap(), b"retried");
    }

    #[test]
    fn ack_loss_leaves_the_batch_durable() {
        let inner: Arc<dyn Store> = Arc::new(MemStore::new());
        let fp = FailpointStore::new(Arc::clone(&inner), FailpointConfig::disabled(1));
        let heap = fp.create_heap().unwrap();
        let rid = fp.reserve(heap, 8).unwrap();
        fp.force(FaultKind::CommitAckLoss);
        fp.commit(vec![put(heap, rid, b"in doubt")]).unwrap_err();
        assert_eq!(fp.take_last_fault(), Some(FaultKind::CommitAckLoss));
        // The error lied: the inner store applied the batch.
        assert_eq!(inner.read(heap, rid).unwrap(), b"in doubt");
    }

    #[test]
    fn schedule_is_deterministic_in_the_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let fp = FailpointStore::new(
                Arc::new(MemStore::new()),
                FailpointConfig {
                    seed,
                    commit_pre: 3,
                    ..FailpointConfig::disabled(seed)
                },
            );
            let heap = fp.create_heap().unwrap();
            (0..64)
                .map(|_| {
                    let rid = fp.reserve(heap, 8).unwrap();
                    fp.commit(vec![put(heap, rid, b"d")]).is_err()
                })
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds, different schedules");
        assert!(run(42).iter().any(|&f| f), "denominator 3 must fire in 64");
    }

    #[test]
    fn checkpoint_and_release_faults_fire_and_count() {
        let fp = FailpointStore::new(Arc::new(MemStore::new()), FailpointConfig::disabled(7));
        let heap = fp.create_heap().unwrap();
        let rid = fp.reserve(heap, 8).unwrap();
        fp.force(FaultKind::Release);
        assert!(fp.release(heap, rid).is_err());
        fp.force(FaultKind::Checkpoint);
        assert!(fp.checkpoint().is_err());
        assert_eq!(fp.faults_injected(), 2);
        fp.reset_stats();
        assert_eq!(fp.faults_injected(), 0);
    }
}
