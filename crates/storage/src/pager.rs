//! File-backed pager with an LRU buffer pool.
//!
//! The pager owns the data file and a bounded cache of decoded [`Page`]s.
//! Pages are fetched on demand, verified against their checksum, and written
//! back when dirty frames are evicted or on [`Pager::flush_all`]. Eviction is
//! strict LRU, implemented with a tick-ordered map so both lookup and
//! eviction are `O(log n)`.
//!
//! The pager is deliberately *not* thread-safe: the store that owns it
//! serializes access behind a single lock (the paper excludes concurrency
//! concerns, §1), which also gives the WAL-before-data ordering a trivial
//! proof.

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};

use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Counters exposed for the buffer-pool characterization bench (figure F9).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back (evictions + flushes).
    pub writebacks: u64,
}

struct Frame {
    page: Page,
    dirty: bool,
    tick: u64,
}

/// A bounded cache of pages over a data file.
pub struct Pager {
    file: File,
    /// Number of pages currently in the file (page 0 is the meta page).
    page_count: u32,
    capacity: usize,
    frames: HashMap<PageId, Frame>,
    /// LRU order: tick -> page id. Ticks are unique.
    order: BTreeMap<u64, PageId>,
    next_tick: u64,
    stats: PagerStats,
}

impl Pager {
    /// Wrap an open data file. `capacity` is the maximum number of cached
    /// pages (minimum 8). The file length must be a multiple of the page
    /// size.
    pub fn new(file: File, capacity: usize) -> Result<Self> {
        let len = file
            .metadata()
            .map_err(|e| StorageError::io("stat data file", e))?
            .len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "data file length {len} is not a multiple of the page size"
            )));
        }
        Ok(Pager {
            file,
            page_count: (len / PAGE_SIZE as u64) as u32,
            capacity: capacity.max(8),
            frames: HashMap::new(),
            order: BTreeMap::new(),
            next_tick: 0,
            stats: PagerStats::default(),
        })
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> u32 {
        self.page_count
    }

    /// Buffer-pool counters.
    pub fn stats(&self) -> PagerStats {
        self.stats
    }

    /// Reset the counters (benches measure deltas).
    pub fn reset_stats(&mut self) {
        self.stats = PagerStats::default();
    }

    fn touch(&mut self, pid: PageId) {
        if let Some(frame) = self.frames.get_mut(&pid) {
            self.order.remove(&frame.tick);
            frame.tick = self.next_tick;
            self.order.insert(self.next_tick, pid);
            self.next_tick += 1;
        }
    }

    fn read_from_disk(&mut self, pid: PageId) -> Result<Page> {
        if pid >= self.page_count {
            return Err(StorageError::Internal(format!(
                "page {pid} beyond end of file ({} pages)",
                self.page_count
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .seek(SeekFrom::Start(pid as u64 * PAGE_SIZE as u64))
            .map_err(|e| StorageError::io("seek to page", e))?;
        self.file
            .read_exact(&mut buf)
            .map_err(|e| StorageError::io("read page", e))?;
        Page::from_bytes(&buf)
    }

    fn write_to_disk(&mut self, pid: PageId, page: &Page) -> Result<()> {
        let bytes = page.to_bytes();
        self.file
            .seek(SeekFrom::Start(pid as u64 * PAGE_SIZE as u64))
            .map_err(|e| StorageError::io("seek to page", e))?;
        self.file
            .write_all(&bytes)
            .map_err(|e| StorageError::io("write page", e))?;
        Ok(())
    }

    fn evict_if_full(&mut self) -> Result<()> {
        while self.frames.len() >= self.capacity {
            let (&tick, &victim) = self
                .order
                .iter()
                .next()
                .expect("order map tracks every frame");
            self.order.remove(&tick);
            let frame = self.frames.remove(&victim).expect("frame exists");
            self.stats.evictions += 1;
            if frame.dirty {
                self.stats.writebacks += 1;
                self.write_to_disk(victim, &frame.page)?;
            }
        }
        Ok(())
    }

    fn load(&mut self, pid: PageId) -> Result<()> {
        if self.frames.contains_key(&pid) {
            self.stats.hits += 1;
            self.touch(pid);
            return Ok(());
        }
        self.stats.misses += 1;
        let page = self.read_from_disk(pid)?;
        self.evict_if_full()?;
        let tick = self.next_tick;
        self.next_tick += 1;
        self.frames.insert(
            pid,
            Frame {
                page,
                dirty: false,
                tick,
            },
        );
        self.order.insert(tick, pid);
        Ok(())
    }

    /// Run `f` with read access to the page.
    pub fn with_page<R>(&mut self, pid: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        self.load(pid)?;
        Ok(f(&self.frames[&pid].page))
    }

    /// Run `f` with write access to the page; the frame is marked dirty.
    pub fn with_page_mut<R>(&mut self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        self.load(pid)?;
        let frame = self.frames.get_mut(&pid).expect("just loaded");
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Append a fresh page to the file and cache it dirty. Returns its id.
    pub fn allocate(&mut self, page: Page) -> Result<PageId> {
        let pid = self.page_count;
        self.page_count += 1;
        // Extend the file eagerly so page_count always matches file length
        // (recovery derives the page count from the length).
        self.write_to_disk(pid, &page)?;
        self.evict_if_full()?;
        let tick = self.next_tick;
        self.next_tick += 1;
        self.frames.insert(
            pid,
            Frame {
                page,
                dirty: false,
                tick,
            },
        );
        self.order.insert(tick, pid);
        Ok(pid)
    }

    /// Write back every dirty frame (without dropping the cache).
    pub fn flush_all(&mut self) -> Result<()> {
        let dirty: Vec<PageId> = self
            .frames
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&pid, _)| pid)
            .collect();
        for pid in dirty {
            let page = self.frames[&pid].page.clone();
            self.write_to_disk(pid, &page)?;
            self.frames.get_mut(&pid).expect("exists").dirty = false;
            self.stats.writebacks += 1;
        }
        Ok(())
    }

    /// Flush and fsync the data file.
    pub fn sync(&mut self) -> Result<()> {
        self.flush_all()?;
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("fsync data file", e))
    }

    /// Drop every cached frame (after flushing). Used by tests to force
    /// cold-cache behaviour.
    pub fn clear_cache(&mut self) -> Result<()> {
        self.flush_all()?;
        self.frames.clear();
        self.order.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn temp_pager(capacity: usize) -> (Pager, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "ode-pager-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("data-{capacity}.odb"));
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .unwrap();
        (Pager::new(file, capacity).unwrap(), path)
    }

    #[test]
    fn allocate_and_read_back() {
        let (mut pager, path) = temp_pager(16);
        let mut p = Page::new(PageType::Heap, 3);
        let slot = p.insert(b"persist me").unwrap();
        let pid = pager.allocate(p).unwrap();
        let data = pager
            .with_page(pid, |p| p.record(slot).unwrap().to_vec())
            .unwrap();
        assert_eq!(data, b"persist me");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_respects_lru_and_persists_dirty_pages() {
        let (mut pager, _path) = temp_pager(8);
        let mut pids = Vec::new();
        for i in 0..20u32 {
            let mut p = Page::new(PageType::Heap, 1);
            p.insert(&i.to_le_bytes()).unwrap();
            pids.push(pager.allocate(p).unwrap());
        }
        // All pages must read back correctly even though most were evicted.
        for (i, &pid) in pids.iter().enumerate() {
            let v = pager
                .with_page(pid, |p| p.record(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, (i as u32).to_le_bytes());
        }
        assert!(pager.stats().evictions > 0);
    }

    #[test]
    fn dirty_page_survives_eviction() {
        let (mut pager, path) = temp_pager(8);
        let mut first = None;
        for i in 0..10u32 {
            let p = Page::new(PageType::Heap, i);
            let pid = pager.allocate(p).unwrap();
            if i == 0 {
                first = Some(pid);
            }
        }
        let first = first.unwrap();
        pager
            .with_page_mut(first, |p| {
                p.insert(b"dirty data").unwrap();
            })
            .unwrap();
        // Push enough pages through to evict `first`.
        for i in 100..120u32 {
            pager.allocate(Page::new(PageType::Heap, i)).unwrap();
        }
        let v = pager
            .with_page(first, |p| p.record(0).unwrap().to_vec())
            .unwrap();
        assert_eq!(v, b"dirty data");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hit_miss_accounting() {
        let (mut pager, path) = temp_pager(16);
        let pid = pager.allocate(Page::new(PageType::Heap, 1)).unwrap();
        pager.reset_stats();
        pager.with_page(pid, |_| ()).unwrap();
        pager.with_page(pid, |_| ()).unwrap();
        assert_eq!(pager.stats().hits, 2);
        pager.clear_cache().unwrap();
        pager.with_page(pid, |_| ()).unwrap();
        assert_eq!(pager.stats().misses, 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reading_past_eof_is_an_error() {
        let (mut pager, path) = temp_pager(8);
        assert!(pager.with_page(5, |_| ()).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flush_then_reopen_sees_data() {
        let (mut pager, path) = temp_pager(8);
        let mut p = Page::new(PageType::Heap, 9);
        let slot = p.insert(b"durable").unwrap();
        let pid = pager.allocate(p).unwrap();
        pager
            .with_page_mut(pid, |p| {
                p.insert(b"second").unwrap();
            })
            .unwrap();
        pager.sync().unwrap();
        drop(pager);

        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let mut pager2 = Pager::new(file, 8).unwrap();
        let v = pager2
            .with_page(pid, |p| p.record(slot).unwrap().to_vec())
            .unwrap();
        assert_eq!(v, b"durable");
        std::fs::remove_file(path).ok();
    }
}
