//! File-backed pager with a lock-striped LRU buffer pool.
//!
//! The pager owns the data file and a bounded cache of decoded [`Page`]s.
//! Pages are fetched on demand, verified against their checksum, and written
//! back when dirty frames are evicted or on [`Pager::flush_all`].
//!
//! The pool is split into [`STRIPES`] shards, each guarded by its own mutex
//! and holding its own strict-LRU eviction order. A page id maps to exactly
//! one shard (`page_id % STRIPES`), and since every page belongs to exactly
//! one heap this is equivalent to striping by `(heap, page)`: concurrent
//! readers touching different pages almost never contend, while two readers
//! of the *same* page serialize only on that page's shard. File I/O uses
//! positioned reads/writes (`pread`/`pwrite`), so disk access needs no lock
//! at all beyond the shard that owns the frame.
//!
//! The store that owns the pager still serializes *mutations* (allocation,
//! heap surgery, commit apply) behind its own structural lock; the pager's
//! internal synchronization is what lets pure readers bypass that lock
//! entirely (DESIGN.md §8).

use std::collections::{BTreeMap, HashMap};
use std::fs::File;
use std::os::unix::fs::FileExt;
use std::sync::atomic::{AtomicU32, Ordering};

use parking_lot::Mutex;

use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Number of buffer-pool shards. A small power of two: enough that eight
/// reader threads on distinct pages collide rarely (expected collisions
/// follow the birthday bound, ~2 for 8 threads over 16 stripes), small
/// enough that per-shard LRU state stays cache-friendly.
pub const STRIPES: usize = 16;

/// Counters exposed for the buffer-pool characterization bench (figure
/// F9) and the metrics pipeline. Kept per shard — each shard counts its
/// own traffic under its own lock — and summed on demand, so hot-path
/// increments never share a cache line across shards.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PagerStats {
    /// Page requests served from the pool.
    pub hits: u64,
    /// Page requests that had to read the file.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back (evictions + flushes).
    pub writebacks: u64,
}

impl PagerStats {
    fn absorb(&mut self, other: &PagerStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
    }
}

struct Frame {
    page: Page,
    dirty: bool,
    tick: u64,
}

/// One buffer-pool shard: a bounded frame cache with strict LRU eviction.
#[derive(Default)]
struct Shard {
    frames: HashMap<PageId, Frame>,
    /// LRU order: tick -> page id. Ticks are unique within the shard.
    order: BTreeMap<u64, PageId>,
    next_tick: u64,
    /// This shard's traffic counters (mutated only under the shard lock).
    stats: PagerStats,
}

impl Shard {
    fn touch(&mut self, pid: PageId) {
        if let Some(frame) = self.frames.get_mut(&pid) {
            self.order.remove(&frame.tick);
            frame.tick = self.next_tick;
            self.order.insert(self.next_tick, pid);
            self.next_tick += 1;
        }
    }

    fn insert(&mut self, pid: PageId, page: Page, dirty: bool) {
        let tick = self.next_tick;
        self.next_tick += 1;
        self.frames.insert(pid, Frame { page, dirty, tick });
        self.order.insert(tick, pid);
    }
}

/// A bounded, internally synchronized cache of pages over a data file.
/// Every method takes `&self`; the pager is safe to share across threads.
pub struct Pager {
    file: File,
    /// Number of pages currently in the file (page 0 is the meta page).
    page_count: AtomicU32,
    /// Maximum frames cached per shard.
    shard_capacity: usize,
    shards: Vec<Mutex<Shard>>,
}

impl Pager {
    /// Wrap an open data file. `capacity` is the maximum number of cached
    /// pages pool-wide (minimum 8), divided evenly among the shards. The
    /// file length must be a multiple of the page size.
    pub fn new(file: File, capacity: usize) -> Result<Self> {
        let len = file
            .metadata()
            .map_err(|e| StorageError::io("stat data file", e))?
            .len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "data file length {len} is not a multiple of the page size"
            )));
        }
        let capacity = capacity.max(8);
        let shard_capacity = capacity.div_ceil(STRIPES).max(1);
        Ok(Pager {
            file,
            page_count: AtomicU32::new((len / PAGE_SIZE as u64) as u32),
            shard_capacity,
            shards: (0..STRIPES).map(|_| Mutex::new(Shard::default())).collect(),
        })
    }

    fn shard_of(&self, pid: PageId) -> &Mutex<Shard> {
        &self.shards[pid as usize % STRIPES]
    }

    /// Number of pages in the file.
    pub fn page_count(&self) -> u32 {
        self.page_count.load(Ordering::Acquire)
    }

    /// Buffer-pool counters, summed across every shard.
    pub fn stats(&self) -> PagerStats {
        let mut total = PagerStats::default();
        for shard in &self.shards {
            total.absorb(&shard.lock().stats);
        }
        total
    }

    /// Per-shard buffer-pool counters (index = shard number). Skewed
    /// shards reveal striping hot spots the pool-wide totals hide.
    pub fn stats_per_shard(&self) -> Vec<PagerStats> {
        self.shards.iter().map(|s| s.lock().stats).collect()
    }

    /// Reset the counters (benches measure deltas).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.lock().stats = PagerStats::default();
        }
    }

    fn read_from_disk(&self, pid: PageId) -> Result<Page> {
        let count = self.page_count();
        if pid >= count {
            return Err(StorageError::Internal(format!(
                "page {pid} beyond end of file ({count} pages)"
            )));
        }
        let mut buf = vec![0u8; PAGE_SIZE];
        self.file
            .read_exact_at(&mut buf, pid as u64 * PAGE_SIZE as u64)
            .map_err(|e| StorageError::io("read page", e))?;
        Page::from_bytes(&buf)
    }

    fn write_to_disk(&self, pid: PageId, page: &Page) -> Result<()> {
        let bytes = page.to_bytes();
        self.file
            .write_all_at(&bytes, pid as u64 * PAGE_SIZE as u64)
            .map_err(|e| StorageError::io("write page", e))?;
        Ok(())
    }

    fn evict_if_full(&self, shard: &mut Shard) -> Result<()> {
        while shard.frames.len() >= self.shard_capacity {
            let (&tick, &victim) = shard
                .order
                .iter()
                .next()
                .expect("order map tracks every frame");
            shard.order.remove(&tick);
            let frame = shard.frames.remove(&victim).expect("frame exists");
            shard.stats.evictions += 1;
            if frame.dirty {
                shard.stats.writebacks += 1;
                self.write_to_disk(victim, &frame.page)?;
            }
        }
        Ok(())
    }

    fn load(&self, shard: &mut Shard, pid: PageId) -> Result<()> {
        if shard.frames.contains_key(&pid) {
            shard.stats.hits += 1;
            shard.touch(pid);
            return Ok(());
        }
        shard.stats.misses += 1;
        let page = self.read_from_disk(pid)?;
        self.evict_if_full(shard)?;
        shard.insert(pid, page, false);
        Ok(())
    }

    /// Run `f` with read access to the page. Only the page's shard is
    /// locked; readers of other pages proceed in parallel.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut shard = self.shard_of(pid).lock();
        self.load(&mut shard, pid)?;
        Ok(f(&shard.frames[&pid].page))
    }

    /// Run `f` with write access to the page; the frame is marked dirty.
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut shard = self.shard_of(pid).lock();
        self.load(&mut shard, pid)?;
        let frame = shard.frames.get_mut(&pid).expect("just loaded");
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Append a fresh page to the file and cache it clean. Returns its id.
    /// Callers serialize allocation behind the store's structural lock.
    pub fn allocate(&self, page: Page) -> Result<PageId> {
        let pid = self.page_count.fetch_add(1, Ordering::AcqRel);
        // Extend the file eagerly so page_count always matches file length
        // (recovery derives the page count from the length).
        self.write_to_disk(pid, &page)?;
        let mut shard = self.shard_of(pid).lock();
        self.evict_if_full(&mut shard)?;
        shard.insert(pid, page, false);
        Ok(pid)
    }

    /// Write back every dirty frame (without dropping the cache).
    pub fn flush_all(&self) -> Result<()> {
        for shard in &self.shards {
            let mut shard = shard.lock();
            let dirty: Vec<PageId> = shard
                .frames
                .iter()
                .filter(|(_, f)| f.dirty)
                .map(|(&pid, _)| pid)
                .collect();
            for pid in dirty {
                let page = shard.frames[&pid].page.clone();
                self.write_to_disk(pid, &page)?;
                shard.frames.get_mut(&pid).expect("exists").dirty = false;
                shard.stats.writebacks += 1;
            }
        }
        Ok(())
    }

    /// Flush and fsync the data file.
    pub fn sync(&self) -> Result<()> {
        self.flush_all()?;
        self.file
            .sync_data()
            .map_err(|e| StorageError::io("fsync data file", e))
    }

    /// Drop every cached frame (after flushing). Used by tests to force
    /// cold-cache behaviour.
    pub fn clear_cache(&self) -> Result<()> {
        self.flush_all()?;
        for shard in &self.shards {
            let mut shard = shard.lock();
            shard.frames.clear();
            shard.order.clear();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageType;

    fn temp_pager(capacity: usize) -> (Pager, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!(
            "ode-pager-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("data-{capacity}.odb"));
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .unwrap();
        (Pager::new(file, capacity).unwrap(), path)
    }

    #[test]
    fn allocate_and_read_back() {
        let (pager, path) = temp_pager(16);
        let mut p = Page::new(PageType::Heap, 3);
        let slot = p.insert(b"persist me").unwrap();
        let pid = pager.allocate(p).unwrap();
        let data = pager
            .with_page(pid, |p| p.record(slot).unwrap().to_vec())
            .unwrap();
        assert_eq!(data, b"persist me");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eviction_respects_lru_and_persists_dirty_pages() {
        let (pager, _path) = temp_pager(8);
        let mut pids = Vec::new();
        for i in 0..40u32 {
            let mut p = Page::new(PageType::Heap, 1);
            p.insert(&i.to_le_bytes()).unwrap();
            pids.push(pager.allocate(p).unwrap());
        }
        // All pages must read back correctly even though most were evicted.
        for (i, &pid) in pids.iter().enumerate() {
            let v = pager
                .with_page(pid, |p| p.record(0).unwrap().to_vec())
                .unwrap();
            assert_eq!(v, (i as u32).to_le_bytes());
        }
        assert!(pager.stats().evictions > 0);
    }

    #[test]
    fn dirty_page_survives_eviction() {
        let (pager, path) = temp_pager(8);
        let mut first = None;
        for i in 0..10u32 {
            let p = Page::new(PageType::Heap, i);
            let pid = pager.allocate(p).unwrap();
            if i == 0 {
                first = Some(pid);
            }
        }
        let first = first.unwrap();
        pager
            .with_page_mut(first, |p| {
                p.insert(b"dirty data").unwrap();
            })
            .unwrap();
        // Push enough pages through `first`'s shard to evict it.
        for i in 100..164u32 {
            pager.allocate(Page::new(PageType::Heap, i)).unwrap();
        }
        let v = pager
            .with_page(first, |p| p.record(0).unwrap().to_vec())
            .unwrap();
        assert_eq!(v, b"dirty data");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn hit_miss_accounting() {
        let (pager, path) = temp_pager(16);
        let pid = pager.allocate(Page::new(PageType::Heap, 1)).unwrap();
        pager.reset_stats();
        pager.with_page(pid, |_| ()).unwrap();
        pager.with_page(pid, |_| ()).unwrap();
        assert_eq!(pager.stats().hits, 2);
        pager.clear_cache().unwrap();
        pager.with_page(pid, |_| ()).unwrap();
        assert_eq!(pager.stats().misses, 1);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn per_shard_stats_sum_to_totals() {
        let (pager, path) = temp_pager(64);
        let mut pids = Vec::new();
        for i in 0..32u32 {
            pids.push(pager.allocate(Page::new(PageType::Heap, i)).unwrap());
        }
        pager.reset_stats();
        for &pid in &pids {
            pager.with_page(pid, |_| ()).unwrap();
            pager.with_page(pid, |_| ()).unwrap();
        }
        let shards = pager.stats_per_shard();
        assert_eq!(shards.len(), STRIPES);
        let total = pager.stats();
        assert_eq!(total.hits, shards.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(total.misses, shards.iter().map(|s| s.misses).sum::<u64>());
        assert_eq!(total.hits, 64);
        // 32 sequential page ids spread over 16 stripes: every shard saw
        // traffic (page_id % STRIPES covers all residues).
        assert!(shards.iter().all(|s| s.hits > 0));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reading_past_eof_is_an_error() {
        let (pager, path) = temp_pager(8);
        assert!(pager.with_page(5, |_| ()).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn flush_then_reopen_sees_data() {
        let (pager, path) = temp_pager(8);
        let mut p = Page::new(PageType::Heap, 9);
        let slot = p.insert(b"durable").unwrap();
        let pid = pager.allocate(p).unwrap();
        pager
            .with_page_mut(pid, |p| {
                p.insert(b"second").unwrap();
            })
            .unwrap();
        pager.sync().unwrap();
        drop(pager);

        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let pager2 = Pager::new(file, 8).unwrap();
        let v = pager2
            .with_page(pid, |p| p.record(slot).unwrap().to_vec())
            .unwrap();
        assert_eq!(v, b"durable");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn concurrent_readers_on_distinct_pages() {
        let (pager, path) = temp_pager(64);
        let mut pids = Vec::new();
        for i in 0..32u32 {
            let mut p = Page::new(PageType::Heap, 1);
            p.insert(&i.to_le_bytes()).unwrap();
            pids.push(pager.allocate(p).unwrap());
        }
        let pager = std::sync::Arc::new(pager);
        let mut handles = Vec::new();
        for t in 0..4 {
            let pager = std::sync::Arc::clone(&pager);
            let pids = pids.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..200 {
                    let idx = (t * 7 + round * 3) % pids.len();
                    let v = pager
                        .with_page(pids[idx], |p| p.record(0).unwrap().to_vec())
                        .unwrap();
                    assert_eq!(v, (idx as u32).to_le_bytes());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        std::fs::remove_file(path).ok();
    }
}
