//! Heap files: collections of variable-length records with stable ids.
//!
//! A heap is a set of slotted pages owned by one `heap_id`. Records are
//! addressed by [`RecordId`] (page + slot), which stays stable for the life
//! of the record — Ode object identity (§2 of the paper) is built directly
//! on this. A record that outgrows its page is *forwarded*: the home slot
//! keeps a 6-byte stub pointing at the relocated body, so the id never
//! changes and reads pay at most one extra page access.
//!
//! On-page record format: `[flag u8][len u16][payload][pad…]`. The explicit
//! length (rather than the slot extent) lets home slots keep a minimum
//! extent of `HOME_MIN_EXTENT` bytes, which guarantees a forward stub can
//! always be written in place.
//!
//! Heap membership is recorded in each page's header (`heap_id`), and the
//! per-heap page lists kept here are a cache rebuilt by scanning headers at
//! open time. That makes recovery trivially correct: no page-allocation
//! bookkeeping ever needs to be logged.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

use crate::error::{Result, StorageError};
use crate::page::{Page, PageId, PageType, MAX_RECORD};
use crate::pager::Pager;

/// Stable address of a record within a heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page number in the data file.
    pub page: PageId,
    /// Slot within the page.
    pub slot: u16,
}

impl RecordId {
    /// Pack into 6 bytes (used by forward stubs and by the object layer).
    pub fn to_bytes(self) -> [u8; 6] {
        let mut out = [0u8; 6];
        out[..4].copy_from_slice(&self.page.to_le_bytes());
        out[4..].copy_from_slice(&self.slot.to_le_bytes());
        out
    }

    /// Unpack from 6 bytes.
    pub fn from_bytes(b: &[u8]) -> Option<RecordId> {
        if b.len() < 6 {
            return None;
        }
        Some(RecordId {
            page: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            slot: u16::from_le_bytes([b[4], b[5]]),
        })
    }
}

impl std::fmt::Display for RecordId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.page, self.slot)
    }
}

/// Record flags (first byte of the on-page image).
const FLAG_NORMAL: u8 = 0;
const FLAG_RESERVED: u8 = 1;
const FLAG_FORWARD: u8 = 2;
const FLAG_FWD_TARGET: u8 = 3;

/// Record header: flag byte + explicit 16-bit payload length.
const REC_HEADER: usize = 3;
/// Minimum extent of a home record: enough to rewrite it as a forward stub
/// (header + 6-byte target id) without needing new page space.
const HOME_MIN_EXTENT: usize = REC_HEADER + 6;
/// Largest payload storable (one page minus page/record overheads).
pub const MAX_PAYLOAD: usize = MAX_RECORD - REC_HEADER;

fn encode(flag: u8, payload: &[u8], min_extent: usize) -> Result<Vec<u8>> {
    // The header stores the payload length in 16 bits: anything larger
    // would silently truncate the slot length and corrupt the page. The
    // public entry points already enforce MAX_PAYLOAD (which is smaller),
    // so this guard is the last line of defense, not the usual rejection.
    if payload.len() > u16::MAX as usize {
        return Err(StorageError::RecordTooLarge {
            size: payload.len(),
            max: u16::MAX as usize,
        });
    }
    let body = REC_HEADER + payload.len();
    let extent = body.max(min_extent);
    let mut out = vec![0u8; extent];
    out[0] = flag;
    out[1..3].copy_from_slice(&(payload.len() as u16).to_le_bytes());
    out[REC_HEADER..body].copy_from_slice(payload);
    Ok(out)
}

fn decode(bytes: &[u8]) -> Result<(u8, &[u8])> {
    if bytes.len() < REC_HEADER {
        return Err(StorageError::Corrupt("record shorter than header".into()));
    }
    let flag = bytes[0];
    let len = u16::from_le_bytes([bytes[1], bytes[2]]) as usize;
    if REC_HEADER + len > bytes.len() {
        return Err(StorageError::Corrupt(format!(
            "record length {len} exceeds extent {}",
            bytes.len() - REC_HEADER
        )));
    }
    Ok((flag, &bytes[REC_HEADER..REC_HEADER + len]))
}

/// Per-heap free-space index: find a page with at least N free bytes in
/// `O(log pages)`.
#[derive(Default)]
struct FreeMap {
    /// free bytes -> pages with exactly that many free bytes.
    by_free: BTreeMap<usize, BTreeSet<PageId>>,
    /// page -> its current entry in `by_free`.
    of_page: HashMap<PageId, usize>,
}

impl FreeMap {
    fn set(&mut self, page: PageId, free: usize) {
        if let Some(old) = self.of_page.insert(page, free) {
            if let Some(set) = self.by_free.get_mut(&old) {
                set.remove(&page);
                if set.is_empty() {
                    self.by_free.remove(&old);
                }
            }
        }
        self.by_free.entry(free).or_default().insert(page);
    }

    fn find(&self, need: usize) -> Option<PageId> {
        self.by_free
            .range(need..)
            .next()
            .and_then(|(_, set)| set.iter().next().copied())
    }
}

#[derive(Default)]
struct HeapState {
    /// Pages owned by this heap, in allocation order (scan order).
    pages: Vec<PageId>,
    freemap: FreeMap,
}

/// Manages every heap in one data file. Operates on a borrowed [`Pager`]
/// (internally synchronized, so `read` needs no exclusive access; the store
/// serializes *mutations* of heap state behind its structural lock).
#[derive(Default)]
pub struct HeapManager {
    heaps: HashMap<u32, HeapState>,
    /// Pages released by dropped heaps, available for reuse.
    free_pages: Vec<PageId>,
    /// Home rids referenced by WAL operations not yet replayed. Pre-crash
    /// these slots were protected by in-memory reservations, which are not
    /// durable; if `place` handed one out as a forward target during
    /// replay, the later replayed put/delete at that rid would overwrite
    /// the target and dangle the forward stub pointing at it.
    replay_pins: HashSet<(u32, RecordId)>,
}

impl HeapManager {
    /// Fresh, empty manager (new store).
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuild heap membership, free-space, and free-page information by
    /// scanning every page header in the file, reclaiming any RESERVED slots
    /// left behind by transactions that never committed. `live_heaps` comes
    /// from the meta page; pages claiming a dead heap are freed.
    pub fn rebuild(pager: &Pager, live_heaps: &BTreeSet<u32>) -> Result<HeapManager> {
        let mut mgr = HeapManager::new();
        for h in live_heaps {
            mgr.heaps.insert(*h, HeapState::default());
        }
        for pid in 1..pager.page_count() {
            let (ty, heap_id) = pager.with_page(pid, |p| (p.page_type(), p.heap_id()))?;
            match ty {
                PageType::Meta => continue,
                PageType::Free => mgr.free_pages.push(pid),
                PageType::Heap => {
                    if !live_heaps.contains(&heap_id) {
                        // Orphan from a dropped heap or an unlogged
                        // allocation: recycle it.
                        pager.with_page_mut(pid, |p| {
                            *p = Page::new(PageType::Free, 0);
                        })?;
                        mgr.free_pages.push(pid);
                        continue;
                    }
                    // Reclaim reservations that never committed.
                    let reserved: Vec<u16> = pager.with_page(pid, |p| {
                        p.iter_records()
                            .filter_map(|(s, r)| {
                                (!r.is_empty() && r[0] == FLAG_RESERVED).then_some(s)
                            })
                            .collect()
                    })?;
                    if !reserved.is_empty() {
                        pager.with_page_mut(pid, |p| {
                            for s in reserved {
                                p.delete(s);
                            }
                        })?;
                    }
                    let free = pager.with_page(pid, |p| p.total_free())?;
                    let st = mgr.heaps.get_mut(&heap_id).expect("inserted above");
                    st.pages.push(pid);
                    st.freemap.set(pid, free);
                }
            }
        }
        for st in mgr.heaps.values_mut() {
            st.pages.sort_unstable();
        }
        Ok(mgr)
    }

    /// Pin the home slots of every operation in a WAL replay stream. Call
    /// before applying the replayed batches, and pair with
    /// [`HeapManager::clear_replay_pins`] once replay finishes.
    pub fn pin_replay_homes(&mut self, pins: impl IntoIterator<Item = (u32, RecordId)>) {
        self.replay_pins.extend(pins);
    }

    /// Forget the replay pins. Leftover pin reservations (rids whose only
    /// replayed operation was a delete) are invisible to scans and are
    /// reclaimed by the next open's rebuild.
    pub fn clear_replay_pins(&mut self) {
        self.replay_pins = HashSet::new();
    }

    /// Register a new, empty heap.
    pub fn create_heap(&mut self, heap: u32) {
        self.heaps.entry(heap).or_default();
    }

    /// Does the heap exist?
    pub fn has_heap(&self, heap: u32) -> bool {
        self.heaps.contains_key(&heap)
    }

    /// Ids of all live heaps.
    pub fn heap_ids(&self) -> BTreeSet<u32> {
        self.heaps.keys().copied().collect()
    }

    /// Release every page of `heap` to the free list.
    pub fn drop_heap(&mut self, pager: &Pager, heap: u32) -> Result<()> {
        let st = self
            .heaps
            .remove(&heap)
            .ok_or(StorageError::NoSuchHeap(heap))?;
        for pid in st.pages {
            pager.with_page_mut(pid, |p| {
                *p = Page::new(PageType::Free, 0);
            })?;
            self.free_pages.push(pid);
        }
        Ok(())
    }

    fn state(&self, heap: u32) -> Result<&HeapState> {
        self.heaps.get(&heap).ok_or(StorageError::NoSuchHeap(heap))
    }

    fn state_mut(&mut self, heap: u32) -> Result<&mut HeapState> {
        self.heaps
            .get_mut(&heap)
            .ok_or(StorageError::NoSuchHeap(heap))
    }

    fn grow_heap(&mut self, pager: &Pager, heap: u32) -> Result<PageId> {
        let pid = match self.free_pages.pop() {
            Some(pid) => {
                pager.with_page_mut(pid, |p| {
                    *p = Page::new(PageType::Heap, heap);
                })?;
                pid
            }
            None => pager.allocate(Page::new(PageType::Heap, heap))?,
        };
        let st = self.state_mut(heap)?;
        st.pages.push(pid);
        let free = pager.with_page(pid, |p| p.total_free())?;
        st.freemap.set(pid, free);
        Ok(pid)
    }

    /// Place an encoded extent in the heap, returning its record id.
    fn place(&mut self, pager: &Pager, heap: u32, extent: &[u8]) -> Result<RecordId> {
        if extent.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: extent.len(),
                max: MAX_RECORD,
            });
        }
        // Candidate from the free map; verify against the real page since
        // the map tracks total (not contiguous + slot) space.
        loop {
            let candidate = self.state(heap)?.freemap.find(extent.len() + 4);
            let pid = match candidate {
                Some(pid) => pid,
                None => self.grow_heap(pager, heap)?,
            };
            let placed = pager.with_page_mut(pid, |p| {
                let slot = p.insert(extent);
                (slot, p.total_free())
            })?;
            let (slot, free) = placed;
            self.state_mut(heap)?.freemap.set(pid, free);
            if let Some(slot) = slot {
                let rid = RecordId { page: pid, slot };
                if self.replay_pins.contains(&(heap, rid)) {
                    // This slot is the home of an operation later in the
                    // replay stream: occupy it with a reservation (so it is
                    // not chosen again) and place the extent elsewhere. The
                    // pending put/delete overwrites or clears the
                    // reservation when it replays.
                    let pin = encode(FLAG_RESERVED, &[], extent.len().max(HOME_MIN_EXTENT))?;
                    let same_size = encode(FLAG_RESERVED, &[], extent.len())?;
                    let free = pager.with_page_mut(pid, |p| {
                        if !p.update(slot, &pin) {
                            // Shrinking to the extent already there cannot
                            // fail; only the HOME_MIN_EXTENT growth can.
                            let ok = p.update(slot, &same_size);
                            debug_assert!(ok, "same-size pin rewrite failed");
                        }
                        p.total_free()
                    })?;
                    self.state_mut(heap)?.freemap.set(pid, free);
                    continue;
                }
                return Ok(rid);
            }
            // Stale free-map entry: the entry was just corrected; retry.
        }
    }

    /// Insert a new record, returning its id.
    pub fn insert(&mut self, pager: &Pager, heap: u32, payload: &[u8]) -> Result<RecordId> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        let extent = encode(FLAG_NORMAL, payload, HOME_MIN_EXTENT)?;
        self.place(pager, heap, &extent)
    }

    /// Reserve a record id without committing data. `size_hint` pre-sizes
    /// the extent so the eventual [`HeapManager::put_at`] usually fits in
    /// place. Reservations left behind by a crash are reclaimed at open.
    pub fn reserve(&mut self, pager: &Pager, heap: u32, size_hint: usize) -> Result<RecordId> {
        let extent = encode(
            FLAG_RESERVED,
            &[],
            (REC_HEADER + size_hint.min(MAX_PAYLOAD)).max(HOME_MIN_EXTENT),
        )?;
        self.place(pager, heap, &extent)
    }

    /// Release a reservation (transaction abort path).
    pub fn release(&mut self, pager: &Pager, heap: u32, rid: RecordId) -> Result<()> {
        let flag = pager.with_page(rid.page, |p| p.record(rid.slot).map(|r| r.first().copied()))?;
        match flag {
            Some(Some(FLAG_RESERVED)) => {
                let free = pager.with_page_mut(rid.page, |p| {
                    p.delete(rid.slot);
                    p.total_free()
                })?;
                self.state_mut(heap)?.freemap.set(rid.page, free);
                Ok(())
            }
            _ => Err(StorageError::Internal(format!(
                "release of non-reserved record {rid}"
            ))),
        }
    }

    /// Read the payload of the record at `rid`, following a forward stub if
    /// present.
    pub fn read(&self, pager: &Pager, heap: u32, rid: RecordId) -> Result<Vec<u8>> {
        Self::read_record(pager, heap, rid)
    }

    /// [`HeapManager::read`] without the manager: record reads consult only
    /// page contents, never heap bookkeeping, so the store's read path can
    /// call this with no structural lock held (DESIGN.md §8).
    pub fn read_record(pager: &Pager, heap: u32, rid: RecordId) -> Result<Vec<u8>> {
        let no_such = || StorageError::NoSuchRecord {
            heap,
            page: rid.page,
            slot: rid.slot,
        };
        if rid.page >= pager.page_count() {
            return Err(no_such());
        }
        let raw = pager.with_page(rid.page, |p| p.record(rid.slot).map(|r| r.to_vec()))?;
        let raw = raw.ok_or_else(no_such)?;
        let (flag, payload) = decode(&raw)?;
        match flag {
            FLAG_NORMAL | FLAG_FWD_TARGET => Ok(payload.to_vec()),
            FLAG_RESERVED => Err(no_such()),
            FLAG_FORWARD => {
                let target = RecordId::from_bytes(payload)
                    .ok_or_else(|| StorageError::Corrupt("short forward stub".into()))?;
                let raw = pager
                    .with_page(target.page, |p| p.record(target.slot).map(|r| r.to_vec()))?
                    .ok_or_else(|| {
                        StorageError::Corrupt(format!("dangling forward {rid} -> {target}"))
                    })?;
                let (flag, payload) = decode(&raw)?;
                if flag != FLAG_FWD_TARGET {
                    return Err(StorageError::Corrupt(format!(
                        "forward {rid} -> {target} does not point at a forward target"
                    )));
                }
                Ok(payload.to_vec())
            }
            other => Err(StorageError::Corrupt(format!(
                "unknown record flag {other}"
            ))),
        }
    }

    /// Make sure `rid.page` exists and belongs to `heap` (WAL replay may
    /// reference pages that were never flushed before a crash).
    fn ensure_page(&mut self, pager: &Pager, heap: u32, pid: PageId) -> Result<()> {
        while pager.page_count() <= pid {
            let fresh = pager.allocate(Page::new(PageType::Free, 0))?;
            self.free_pages.push(fresh);
        }
        let (ty, owner) = pager.with_page(pid, |p| (p.page_type(), p.heap_id()))?;
        match ty {
            PageType::Heap if owner == heap => Ok(()),
            PageType::Free | PageType::Heap => {
                // Adopt the page for this heap (replay path).
                self.free_pages.retain(|&p| p != pid);
                pager.with_page_mut(pid, |p| {
                    *p = Page::new(PageType::Heap, heap);
                })?;
                let st = self.state_mut(heap)?;
                if !st.pages.contains(&pid) {
                    st.pages.push(pid);
                    st.pages.sort_unstable();
                }
                let free = pager.with_page(pid, |p| p.total_free())?;
                self.state_mut(heap)?.freemap.set(pid, free);
                Ok(())
            }
            PageType::Meta => Err(StorageError::Corrupt(format!(
                "record replay targets meta page {pid}"
            ))),
        }
    }

    /// Write `payload` at exactly `rid`, creating, resizing, or forwarding as
    /// needed. Idempotent: used both for committed updates and WAL replay.
    pub fn put_at(
        &mut self,
        pager: &Pager,
        heap: u32,
        rid: RecordId,
        payload: &[u8],
    ) -> Result<()> {
        if payload.len() > MAX_PAYLOAD {
            return Err(StorageError::RecordTooLarge {
                size: payload.len(),
                max: MAX_PAYLOAD,
            });
        }
        self.ensure_page(pager, heap, rid.page)?;
        // Inspect the current occupant.
        let current = pager.with_page(rid.page, |p| p.record(rid.slot).map(|r| r.to_vec()))?;
        let old_target = match current.as_deref().map(decode).transpose()? {
            Some((FLAG_FORWARD, stub)) => RecordId::from_bytes(stub),
            _ => None,
        };
        let extent = encode(FLAG_NORMAL, payload, HOME_MIN_EXTENT)?;
        let wrote = pager.with_page_mut(rid.page, |p| {
            if !p.ensure_slot(rid.slot) {
                return false;
            }
            p.update(rid.slot, &extent)
        })?;
        let free = pager.with_page(rid.page, |p| p.total_free())?;
        self.state_mut(heap)?.freemap.set(rid.page, free);
        if wrote {
            // In (home) place; drop any previous forward target.
            if let Some(t) = old_target {
                self.delete_extent(pager, heap, t)?;
            }
            return Ok(());
        }
        // Does not fit at home: place a forward target and rewrite the home
        // slot as a stub (guaranteed to fit thanks to HOME_MIN_EXTENT).
        if let Some(t) = old_target {
            self.delete_extent(pager, heap, t)?;
        }
        let target_extent = encode(FLAG_FWD_TARGET, payload, 0)?;
        let target = self.place(pager, heap, &target_extent)?;
        let stub = encode(FLAG_FORWARD, &target.to_bytes(), HOME_MIN_EXTENT)?;
        loop {
            let ok = pager.with_page_mut(rid.page, |p| {
                if !p.ensure_slot(rid.slot) {
                    return false;
                }
                p.update(rid.slot, &stub)
            })?;
            if ok {
                break;
            }
            // Live operation guarantees every home slot holds at least
            // HOME_MIN_EXTENT bytes, but WAL replay can meet a page image
            // fuller than it ever was live (an evicted page carrying
            // *later* record states). Forward another resident off the
            // page to make room rather than failing recovery.
            if !self.make_room_on(pager, heap, rid.page, rid.slot)? {
                return Err(StorageError::Internal(format!(
                    "forward stub does not fit at {rid} despite minimum extent"
                )));
            }
        }
        let free = pager.with_page(rid.page, |p| p.total_free())?;
        self.state_mut(heap)?.freemap.set(rid.page, free);
        Ok(())
    }

    /// Free at least one byte on `pid` so a forward stub fits at slot
    /// `except`: shrink an oversized reservation in place, or forward the
    /// largest resident record's body to another page. Returns false when
    /// nothing on the page can move.
    fn make_room_on(&mut self, pager: &Pager, heap: u32, pid: PageId, except: u16) -> Result<bool> {
        let victim = pager.with_page(pid, |p| {
            p.iter_records()
                .filter(|&(s, r)| {
                    s != except
                        && r.len() > HOME_MIN_EXTENT
                        && matches!(r.first(), Some(&FLAG_NORMAL) | Some(&FLAG_RESERVED))
                })
                .max_by_key(|&(_, r)| r.len())
                .map(|(s, r)| (s, r.to_vec()))
        })?;
        let Some((slot, raw)) = victim else {
            return Ok(false);
        };
        if raw[0] == FLAG_RESERVED {
            let shrunk = encode(FLAG_RESERVED, &[], HOME_MIN_EXTENT)?;
            let free = pager.with_page_mut(pid, |p| {
                p.update(slot, &shrunk);
                p.total_free()
            })?;
            self.state_mut(heap)?.freemap.set(pid, free);
            return Ok(true);
        }
        // Relocate the record body; its id stays at `slot` via a stub, so
        // identity is preserved. `place` cannot pick this page again: the
        // body is larger than the page's free space by construction.
        let (_, payload) = decode(&raw)?;
        let body = encode(FLAG_FWD_TARGET, payload, 0)?;
        let target = self.place(pager, heap, &body)?;
        let stub = encode(FLAG_FORWARD, &target.to_bytes(), HOME_MIN_EXTENT)?;
        let free = pager.with_page_mut(pid, |p| {
            let ok = p.update(slot, &stub);
            debug_assert!(ok, "stub is no larger than the extent it replaces");
            p.total_free()
        })?;
        self.state_mut(heap)?.freemap.set(pid, free);
        Ok(true)
    }

    fn delete_extent(&mut self, pager: &Pager, heap: u32, rid: RecordId) -> Result<()> {
        if rid.page >= pager.page_count() {
            return Ok(());
        }
        let free = pager.with_page_mut(rid.page, |p| {
            p.delete(rid.slot);
            p.total_free()
        })?;
        if self.heaps.contains_key(&heap) {
            self.state_mut(heap)?.freemap.set(rid.page, free);
        }
        Ok(())
    }

    /// Delete the record at `rid` (and its forward target, if relocated).
    /// Idempotent: deleting an absent record succeeds.
    pub fn delete(&mut self, pager: &Pager, heap: u32, rid: RecordId) -> Result<()> {
        if rid.page >= pager.page_count() {
            return Ok(());
        }
        let current = pager.with_page(rid.page, |p| p.record(rid.slot).map(|r| r.to_vec()))?;
        if let Some(raw) = current {
            if let (FLAG_FORWARD, stub) = decode(&raw)? {
                if let Some(t) = RecordId::from_bytes(stub) {
                    self.delete_extent(pager, heap, t)?;
                }
            }
        }
        self.delete_extent(pager, heap, rid)
    }

    /// Snapshot of the heap's page list, in scan order. Lets a caller take
    /// the list under a brief lock and run the scan itself without one.
    pub fn pages_of(&self, heap: u32) -> Result<Vec<PageId>> {
        Ok(self.state(heap)?.pages.clone())
    }

    /// Visit every live record of the heap as `(rid, payload)`, in page
    /// order. Forwarded records are yielded at their *home* id.
    pub fn scan(
        &self,
        pager: &Pager,
        heap: u32,
        visit: impl FnMut(RecordId, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        let pages = self.pages_of(heap)?;
        Self::scan_pages(pager, heap, &pages, visit)
    }

    /// [`HeapManager::scan`] over an already-snapshotted page list: needs no
    /// heap bookkeeping, so it runs with no structural lock held.
    pub fn scan_pages(
        pager: &Pager,
        heap: u32,
        pages: &[PageId],
        mut visit: impl FnMut(RecordId, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        for &pid in pages {
            let records: Vec<(u16, Vec<u8>)> = pager.with_page(pid, |p| {
                p.iter_records().map(|(s, r)| (s, r.to_vec())).collect()
            })?;
            for (slot, raw) in records {
                let (flag, payload) = decode(&raw)?;
                let rid = RecordId { page: pid, slot };
                match flag {
                    FLAG_NORMAL => {
                        if !visit(rid, payload)? {
                            return Ok(());
                        }
                    }
                    FLAG_FORWARD => {
                        let data = Self::read_record(pager, heap, rid)?;
                        if !visit(rid, &data)? {
                            return Ok(());
                        }
                    }
                    FLAG_RESERVED | FLAG_FWD_TARGET => {}
                    other => {
                        return Err(StorageError::Corrupt(format!(
                            "unknown record flag {other} during scan"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of pages owned by `heap`.
    pub fn page_count_of(&self, heap: u32) -> usize {
        self.heaps.get(&heap).map_or(0, |s| s.pages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn temp_pager(name: &str) -> (Pager, std::path::PathBuf) {
        let dir = std::env::temp_dir().join(format!("ode-heap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.odb"));
        let _ = std::fs::remove_file(&path);
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .unwrap();
        let pager = Pager::new(file, 64).unwrap();
        // Page 0 stands in for the meta page.
        pager.allocate(Page::new(PageType::Meta, 0)).unwrap();
        (pager, path)
    }

    #[test]
    fn insert_read_roundtrip() {
        let (pager, _p) = temp_pager("roundtrip");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let rid = mgr.insert(&pager, 1, b"stockitem 512 dram").unwrap();
        assert_eq!(mgr.read(&pager, 1, rid).unwrap(), b"stockitem 512 dram");
    }

    #[test]
    fn records_span_many_pages() {
        let (pager, _p) = temp_pager("many-pages");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let mut rids = Vec::new();
        for i in 0..500u32 {
            let data = vec![(i % 251) as u8; 100];
            rids.push((mgr.insert(&pager, 1, &data).unwrap(), data));
        }
        assert!(mgr.page_count_of(1) > 1);
        for (rid, data) in &rids {
            assert_eq!(&mgr.read(&pager, 1, *rid).unwrap(), data);
        }
    }

    #[test]
    fn update_grows_into_forwarding_and_id_stays_stable() {
        let (pager, _p) = temp_pager("forward");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        // Fill a page almost completely so growth must forward.
        let rid = mgr.insert(&pager, 1, &[1u8; 16]).unwrap();
        let mut fillers = Vec::new();
        loop {
            let f = mgr.insert(&pager, 1, &[9u8; 512]).unwrap();
            if f.page != rid.page {
                // Landed on a second page; the first is effectively full.
                mgr.delete(&pager, 1, f).unwrap();
                break;
            }
            fillers.push(f);
        }
        let big = vec![7u8; 4000];
        mgr.put_at(&pager, 1, rid, &big).unwrap();
        assert_eq!(mgr.read(&pager, 1, rid).unwrap(), big);
        // Shrink again: collapses back in place (still readable either way).
        let small = vec![3u8; 8];
        mgr.put_at(&pager, 1, rid, &small).unwrap();
        assert_eq!(mgr.read(&pager, 1, rid).unwrap(), small);
        for f in fillers {
            assert_eq!(mgr.read(&pager, 1, f).unwrap(), vec![9u8; 512]);
        }
    }

    #[test]
    fn forwarded_records_scan_at_home_id() {
        let (pager, _p) = temp_pager("scan-fwd");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let a = mgr.insert(&pager, 1, &[1u8; 3000]).unwrap();
        let b = mgr.insert(&pager, 1, &[2u8; 3000]).unwrap();
        let c = mgr.insert(&pager, 1, &[3u8; 1500]).unwrap();
        // Grow c so it forwards off the full page.
        mgr.put_at(&pager, 1, c, &[4u8; 5000]).unwrap();
        let mut seen = Vec::new();
        mgr.scan(&pager, 1, |rid, data| {
            seen.push((rid, data[0], data.len()));
            Ok(true)
        })
        .unwrap();
        assert!(seen.contains(&(a, 1, 3000)));
        assert!(seen.contains(&(b, 2, 3000)));
        assert!(seen.contains(&(c, 4, 5000)));
        assert_eq!(seen.len(), 3, "forward target must not be double-counted");
    }

    #[test]
    fn delete_frees_space_for_reuse() {
        let (pager, _p) = temp_pager("delete");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let mut rids = Vec::new();
        for _ in 0..50 {
            rids.push(mgr.insert(&pager, 1, &[5u8; 1000]).unwrap());
        }
        let pages_before = mgr.page_count_of(1);
        for rid in &rids {
            mgr.delete(&pager, 1, *rid).unwrap();
        }
        for _ in 0..50 {
            mgr.insert(&pager, 1, &[6u8; 1000]).unwrap();
        }
        assert_eq!(
            mgr.page_count_of(1),
            pages_before,
            "space from deleted records must be reused"
        );
    }

    #[test]
    fn reserve_then_put_at_then_read() {
        let (pager, _p) = temp_pager("reserve");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let rid = mgr.reserve(&pager, 1, 64).unwrap();
        assert!(matches!(
            mgr.read(&pager, 1, rid),
            Err(StorageError::NoSuchRecord { .. })
        ));
        mgr.put_at(&pager, 1, rid, b"now committed").unwrap();
        assert_eq!(mgr.read(&pager, 1, rid).unwrap(), b"now committed");
    }

    #[test]
    fn release_reclaims_reservation() {
        let (pager, _p) = temp_pager("release");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let rid = mgr.reserve(&pager, 1, 32).unwrap();
        mgr.release(&pager, 1, rid).unwrap();
        // The same slot becomes available again.
        let rid2 = mgr.insert(&pager, 1, b"x").unwrap();
        assert_eq!(rid, rid2);
    }

    #[test]
    fn reservations_skipped_by_scan() {
        let (pager, _p) = temp_pager("scan-reserved");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        mgr.reserve(&pager, 1, 16).unwrap();
        let real = mgr.insert(&pager, 1, b"real").unwrap();
        let mut seen = Vec::new();
        mgr.scan(&pager, 1, |rid, data| {
            seen.push((rid, data.to_vec()));
            Ok(true)
        })
        .unwrap();
        assert_eq!(seen, vec![(real, b"real".to_vec())]);
    }

    #[test]
    fn rebuild_reconstructs_membership_and_reclaims_reservations() {
        let (pager, path) = temp_pager("rebuild");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        mgr.create_heap(2);
        let a = mgr.insert(&pager, 1, b"heap one").unwrap();
        let b = mgr.insert(&pager, 2, b"heap two").unwrap();
        let r = mgr.reserve(&pager, 1, 16).unwrap();
        pager.sync().unwrap();
        drop(pager);
        drop(mgr);

        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)
            .unwrap();
        let pager = Pager::new(file, 64).unwrap();
        let live: BTreeSet<u32> = [1u32, 2].into_iter().collect();
        let mgr = HeapManager::rebuild(&pager, &live).unwrap();
        assert_eq!(mgr.read(&pager, 1, a).unwrap(), b"heap one");
        assert_eq!(mgr.read(&pager, 2, b).unwrap(), b"heap two");
        // Reservation was reclaimed: reading it fails, slot reusable.
        assert!(mgr.read(&pager, 1, r).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn drop_heap_recycles_pages() {
        let (pager, _p) = temp_pager("drop-heap");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        for _ in 0..200 {
            mgr.insert(&pager, 1, &[1u8; 500]).unwrap();
        }
        let page_count_before = pager.page_count();
        mgr.drop_heap(&pager, 1).unwrap();
        assert!(!mgr.has_heap(1));
        mgr.create_heap(2);
        for _ in 0..200 {
            mgr.insert(&pager, 2, &[2u8; 500]).unwrap();
        }
        assert_eq!(
            pager.page_count(),
            page_count_before,
            "pages from the dropped heap must be reused"
        );
    }

    #[test]
    fn oversized_record_rejected() {
        let (pager, _p) = temp_pager("oversize");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let too_big = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            mgr.insert(&pager, 1, &too_big),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn encode_rejects_payloads_past_u16_length() {
        // Regression: `payload.len() as u16` used to truncate silently,
        // writing a wrong slot length and corrupting the page.
        let huge = vec![0u8; u16::MAX as usize + 1];
        assert!(matches!(
            encode(FLAG_NORMAL, &huge, 0),
            Err(StorageError::RecordTooLarge {
                size,
                max
            }) if size == huge.len() && max == u16::MAX as usize
        ));
        // The boundary itself still encodes.
        assert!(encode(FLAG_NORMAL, &vec![0u8; u16::MAX as usize], 0).is_ok());
    }

    #[test]
    fn put_at_is_idempotent_like_wal_replay() {
        let (pager, _p) = temp_pager("idempotent");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let rid = RecordId { page: 5, slot: 3 };
        // Replay against a page that does not exist yet.
        mgr.put_at(&pager, 1, rid, b"replayed").unwrap();
        mgr.put_at(&pager, 1, rid, b"replayed").unwrap();
        assert_eq!(mgr.read(&pager, 1, rid).unwrap(), b"replayed");
        let mut n = 0;
        mgr.scan(&pager, 1, |_, _| {
            n += 1;
            Ok(true)
        })
        .unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn replay_pins_protect_future_home_slots() {
        let (pager, _p) = temp_pager("replay-pins");
        let mut mgr = HeapManager::new();
        mgr.create_heap(1);
        let home = mgr.insert(&pager, 1, &[1u8; 16]).unwrap();
        // Fill the home page so growing `home` must forward to a new page.
        loop {
            let f = mgr.insert(&pager, 1, &[9u8; 512]).unwrap();
            if f.page != home.page {
                mgr.delete(&pager, 1, f).unwrap();
                break;
            }
        }
        // The forward target would land at slot 0 of the next fresh page;
        // pin that slot, as if a later WAL op addressed it as its home.
        let future_home = RecordId {
            page: pager.page_count(),
            slot: 0,
        };
        mgr.pin_replay_homes([(1, future_home)]);
        let big = vec![7u8; 4000];
        mgr.put_at(&pager, 1, home, &big).unwrap();
        assert_eq!(mgr.read(&pager, 1, home).unwrap(), big);
        // Replay the pinned op: without the pin this would overwrite the
        // forward target and dangle `home`'s stub.
        mgr.put_at(&pager, 1, future_home, b"late replayed op")
            .unwrap();
        mgr.clear_replay_pins();
        assert_eq!(
            mgr.read(&pager, 1, home).unwrap(),
            big,
            "forward target survived the pinned home's replay"
        );
        assert_eq!(
            mgr.read(&pager, 1, future_home).unwrap(),
            b"late replayed op"
        );
    }

    #[test]
    fn record_id_byte_roundtrip() {
        let rid = RecordId {
            page: 0xDEAD_BEEF,
            slot: 0x1234,
        };
        assert_eq!(RecordId::from_bytes(&rid.to_bytes()), Some(rid));
        assert_eq!(RecordId::from_bytes(&[1, 2, 3]), None);
    }
}
