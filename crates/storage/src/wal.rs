//! Redo-only write-ahead log.
//!
//! Because the engine defers all updates until commit (see the crate docs),
//! the log only ever needs *redo* information: each committed transaction is
//! one `Begin … ops … Commit` group, and recovery simply re-applies every
//! complete group in order. All operations are expressed as idempotent
//! "ensure" forms (`Put` at an exact record id, `Delete` of an exact id), so
//! a crash during replay is handled by replaying again.
//!
//! Framing: every record is `[len: u32][crc32: u32][payload: len bytes]`.
//! A torn or corrupt tail ends replay — everything before it is intact
//! because records are appended and fsynced in order.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::crc::crc32;
use crate::error::{Result, StorageError};
use crate::heap::RecordId;

/// One redo operation inside a committed group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// Make sure the heap exists.
    EnsureHeap(u32),
    /// Drop the heap and free its pages.
    DropHeap(u32),
    /// Ensure the record at `rid` holds exactly `data`.
    Put {
        heap: u32,
        rid: RecordId,
        data: Vec<u8>,
    },
    /// Ensure no record lives at `rid`.
    Delete { heap: u32, rid: RecordId },
}

const TAG_BEGIN: u8 = 1;
const TAG_ENSURE_HEAP: u8 = 2;
const TAG_DROP_HEAP: u8 = 3;
const TAG_PUT: u8 = 4;
const TAG_DELETE: u8 = 5;
const TAG_COMMIT: u8 = 6;
const TAG_CHECKPOINT: u8 = 7;

fn encode_op(op: &WalOp, out: &mut Vec<u8>) {
    match op {
        WalOp::EnsureHeap(h) => {
            out.push(TAG_ENSURE_HEAP);
            out.extend_from_slice(&h.to_le_bytes());
        }
        WalOp::DropHeap(h) => {
            out.push(TAG_DROP_HEAP);
            out.extend_from_slice(&h.to_le_bytes());
        }
        WalOp::Put { heap, rid, data } => {
            out.push(TAG_PUT);
            out.extend_from_slice(&heap.to_le_bytes());
            out.extend_from_slice(&rid.to_bytes());
            out.extend_from_slice(&(data.len() as u32).to_le_bytes());
            out.extend_from_slice(data);
        }
        WalOp::Delete { heap, rid } => {
            out.push(TAG_DELETE);
            out.extend_from_slice(&heap.to_le_bytes());
            out.extend_from_slice(&rid.to_bytes());
        }
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.buf.get(self.at)?;
        self.at += 1;
        Some(v)
    }

    fn u32(&mut self) -> Option<u32> {
        let s = self.buf.get(self.at..self.at + 4)?;
        self.at += 4;
        Some(u32::from_le_bytes([s[0], s[1], s[2], s[3]]))
    }

    fn u64(&mut self) -> Option<u64> {
        let s = self.buf.get(self.at..self.at + 8)?;
        self.at += 8;
        Some(u64::from_le_bytes(s.try_into().ok()?))
    }

    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }

    fn rid(&mut self) -> Option<RecordId> {
        RecordId::from_bytes(self.bytes(6)?)
    }
}

/// A parsed log entry (only used internally and by tests).
#[derive(Debug, PartialEq, Eq)]
enum Entry {
    Begin(u64),
    Op(WalOp),
    Commit(u64),
    Checkpoint,
}

fn decode_entry(payload: &[u8]) -> Result<Entry> {
    let corrupt = |what: &str| StorageError::Corrupt(format!("wal entry: {what}"));
    let mut c = Cursor {
        buf: payload,
        at: 0,
    };
    let tag = c.u8().ok_or_else(|| corrupt("empty"))?;
    let entry = match tag {
        TAG_BEGIN => Entry::Begin(c.u64().ok_or_else(|| corrupt("short begin"))?),
        TAG_COMMIT => Entry::Commit(c.u64().ok_or_else(|| corrupt("short commit"))?),
        TAG_CHECKPOINT => Entry::Checkpoint,
        TAG_ENSURE_HEAP => Entry::Op(WalOp::EnsureHeap(
            c.u32().ok_or_else(|| corrupt("short ensure"))?,
        )),
        TAG_DROP_HEAP => Entry::Op(WalOp::DropHeap(
            c.u32().ok_or_else(|| corrupt("short drop"))?,
        )),
        TAG_PUT => {
            let heap = c.u32().ok_or_else(|| corrupt("short put heap"))?;
            let rid = c.rid().ok_or_else(|| corrupt("short put rid"))?;
            let len = c.u32().ok_or_else(|| corrupt("short put len"))? as usize;
            let data = c
                .bytes(len)
                .ok_or_else(|| corrupt("short put data"))?
                .to_vec();
            Entry::Op(WalOp::Put { heap, rid, data })
        }
        TAG_DELETE => {
            let heap = c.u32().ok_or_else(|| corrupt("short delete heap"))?;
            let rid = c.rid().ok_or_else(|| corrupt("short delete rid"))?;
            Entry::Op(WalOp::Delete { heap, rid })
        }
        other => return Err(corrupt(&format!("unknown tag {other}"))),
    };
    Ok(entry)
}

fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// The write-ahead log file.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    /// Bytes appended since open/truncate (drives checkpoint policy).
    len: u64,
    next_tx: u64,
    /// Commit groups appended since open (telemetry).
    appends: u64,
    /// fsyncs issued since open (telemetry).
    fsyncs: u64,
}

impl Wal {
    /// Open (or create) the log at `path` and return the committed batches
    /// recorded since the last checkpoint, in commit order.
    pub fn open(path: &Path) -> Result<(Wal, Vec<Vec<WalOp>>)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| StorageError::io("open wal", e))?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)
            .map_err(|e| StorageError::io("read wal", e))?;
        let (batches, valid_len, max_tx) = Self::parse(&raw);
        // Truncate any torn tail so future appends start on a clean frame.
        if (valid_len as u64) < raw.len() as u64 {
            file.set_len(valid_len as u64)
                .map_err(|e| StorageError::io("truncate torn wal tail", e))?;
        }
        file.seek(SeekFrom::End(0))
            .map_err(|e| StorageError::io("seek wal", e))?;
        let wal = Wal {
            path: path.to_path_buf(),
            writer: BufWriter::new(file),
            len: valid_len as u64,
            next_tx: max_tx + 1,
            appends: 0,
            fsyncs: 0,
        };
        Ok((wal, batches))
    }

    /// Parse raw log bytes: returns (committed batches, bytes of valid
    /// prefix, highest tx id seen).
    fn parse(raw: &[u8]) -> (Vec<Vec<WalOp>>, usize, u64) {
        let mut batches = Vec::new();
        let mut at = 0usize;
        let mut open_tx: Option<(u64, Vec<WalOp>)> = None;
        let mut max_tx = 0u64;
        let mut valid_end = 0usize;
        while at + 8 <= raw.len() {
            let len = u32::from_le_bytes(raw[at..at + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(raw[at + 4..at + 8].try_into().unwrap());
            let Some(payload) = raw.get(at + 8..at + 8 + len) else {
                break; // torn tail
            };
            if crc32(payload) != crc {
                break; // torn or corrupt tail
            }
            let Ok(entry) = decode_entry(payload) else {
                break;
            };
            at += 8 + len;
            match entry {
                Entry::Begin(tx) => {
                    max_tx = max_tx.max(tx);
                    open_tx = Some((tx, Vec::new()));
                }
                Entry::Op(op) => {
                    if let Some((_, ops)) = open_tx.as_mut() {
                        ops.push(op);
                    }
                    // An op outside Begin/Commit is ignored (cannot happen
                    // in well-formed logs; tolerated for robustness).
                }
                Entry::Commit(tx) => {
                    max_tx = max_tx.max(tx);
                    if let Some((open, ops)) = open_tx.take() {
                        if open == tx {
                            batches.push(ops);
                            valid_end = at;
                        }
                    }
                }
                Entry::Checkpoint => {
                    // Everything before a checkpoint is already in the data
                    // file; discard it from replay.
                    batches.clear();
                    open_tx = None;
                    valid_end = at;
                }
            }
        }
        // valid_end stops at the last complete Commit/Checkpoint: an open
        // group at the tail is truncated away, matching its non-durability.
        (batches, valid_end, max_tx)
    }

    /// Append one framed record through the buffered writer. Production
    /// appends go through [`Wal::append_commit`]'s all-or-nothing group
    /// write; tests use this to hand-craft partial groups.
    #[cfg(test)]
    fn frame(&mut self, payload: &[u8]) -> Result<()> {
        let mut head = [0u8; 8];
        head[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        head[4..].copy_from_slice(&crc32(payload).to_le_bytes());
        self.writer
            .write_all(&head)
            .and_then(|_| self.writer.write_all(payload))
            .map_err(|e| StorageError::io("append wal record", e))?;
        self.len += 8 + payload.len() as u64;
        Ok(())
    }

    /// Append one committed group. With `sync`, the group is fsynced before
    /// returning — the durability point of the whole store.
    ///
    /// The whole group is assembled in memory and written with one
    /// `write_all`, and on any failure (short write, ENOSPC, fsync) the
    /// file is truncated back to its pre-append length. Either way the log
    /// tail stays clean, so the caller may re-issue the identical batch —
    /// this is what makes a failed commit *retryable* (DESIGN.md §10).
    pub fn append_commit(&mut self, ops: &[WalOp], sync: bool) -> Result<u64> {
        let tx = self.next_tx;
        self.next_tx += 1;
        let mut group = Vec::with_capacity(64);
        let mut payload = Vec::with_capacity(16);
        payload.push(TAG_BEGIN);
        payload.extend_from_slice(&tx.to_le_bytes());
        frame_into(&mut group, &payload);
        for op in ops {
            payload.clear();
            encode_op(op, &mut payload);
            frame_into(&mut group, &payload);
        }
        payload.clear();
        payload.push(TAG_COMMIT);
        payload.extend_from_slice(&tx.to_le_bytes());
        frame_into(&mut group, &payload);

        let start = self.len;
        let result = self
            .writer
            .flush()
            .and_then(|()| self.writer.get_mut().write_all(&group))
            .map_err(|e| StorageError::io("append wal group", e))
            .and_then(|()| {
                if sync {
                    self.writer
                        .get_ref()
                        .sync_data()
                        .map_err(|e| StorageError::io("fsync wal", e))?;
                    self.fsyncs += 1;
                }
                Ok(())
            });
        if let Err(e) = result {
            // Best-effort rollback to the last complete group. If even
            // this fails, the torn tail is truncated at the next open.
            let file = self.writer.get_mut();
            let _ = file.set_len(start);
            let _ = file.seek(SeekFrom::Start(start));
            return Err(e);
        }
        self.len = start + group.len() as u64;
        self.appends += 1;
        Ok(tx)
    }

    /// Clone the underlying file handle so a group-commit leader can fsync
    /// from outside the lock protecting the `Wal` itself. Safe because
    /// `append_commit` writes through the raw fd (the `BufWriter` is
    /// flushed first), so every appended group is visible to the kernel —
    /// and hence covered by a `sync_data` on the clone — by the time
    /// `append_commit` returns.
    pub fn try_clone_file(&self) -> Result<std::fs::File> {
        self.writer
            .get_ref()
            .try_clone()
            .map_err(|e| StorageError::io("clone wal handle", e))
    }

    /// Commit groups appended since open.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// fsyncs issued since open.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs
    }

    /// Zero the append/fsync counters (benches measure deltas).
    pub fn reset_counters(&mut self) {
        self.appends = 0;
        self.fsyncs = 0;
    }

    /// Record a checkpoint and truncate the log: caller guarantees all
    /// earlier groups are durably in the data file.
    pub fn checkpoint(&mut self) -> Result<()> {
        self.writer
            .flush()
            .map_err(|e| StorageError::io("flush wal", e))?;
        let file = self.writer.get_ref();
        file.set_len(0)
            .map_err(|e| StorageError::io("truncate wal", e))?;
        file.sync_data()
            .map_err(|e| StorageError::io("fsync wal", e))?;
        self.writer
            .get_mut()
            .seek(SeekFrom::Start(0))
            .map_err(|e| StorageError::io("rewind wal", e))?;
        self.len = 0;
        Ok(())
    }

    /// Bytes accumulated since the last checkpoint.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True when no groups have been appended since the last checkpoint.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ode-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("{name}.wal"));
        let _ = std::fs::remove_file(&path);
        path
    }

    fn put(heap: u32, page: u32, slot: u16, data: &[u8]) -> WalOp {
        WalOp::Put {
            heap,
            rid: RecordId { page, slot },
            data: data.to_vec(),
        }
    }

    #[test]
    fn committed_batches_replay_in_order() {
        let path = temp_wal("order");
        {
            let (mut wal, replay) = Wal::open(&path).unwrap();
            assert!(replay.is_empty());
            wal.append_commit(&[WalOp::EnsureHeap(1), put(1, 1, 0, b"first")], true)
                .unwrap();
            wal.append_commit(&[put(1, 1, 1, b"second")], true).unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.len(), 2);
        assert_eq!(replay[0][0], WalOp::EnsureHeap(1));
        assert_eq!(replay[0][1], put(1, 1, 0, b"first"));
        assert_eq!(replay[1][0], put(1, 1, 1, b"second"));
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated() {
        let path = temp_wal("torn");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit(&[put(1, 1, 0, b"ok")], true).unwrap();
        }
        // Simulate a crash mid-append: garbage tail.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[0xFF, 0x00, 0x12]).unwrap();
        }
        let (mut wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.len(), 1);
        // The log is usable again after truncation.
        wal.append_commit(&[put(1, 1, 1, b"post-crash")], true)
            .unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.len(), 2);
    }

    #[test]
    fn uncommitted_group_is_not_replayed() {
        let path = temp_wal("uncommitted");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit(&[put(1, 1, 0, b"committed")], true)
                .unwrap();
            // Hand-write a Begin + op without a Commit.
            let mut payload = vec![TAG_BEGIN];
            payload.extend_from_slice(&99u64.to_le_bytes());
            wal.frame(&payload).unwrap();
            payload.clear();
            encode_op(&put(1, 1, 1, b"lost"), &mut payload);
            wal.frame(&payload).unwrap();
            wal.writer.flush().unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0][0], put(1, 1, 0, b"committed"));
    }

    #[test]
    fn checkpoint_clears_replay() {
        let path = temp_wal("checkpoint");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit(&[put(1, 1, 0, b"old")], true).unwrap();
            wal.checkpoint().unwrap();
            wal.append_commit(&[put(1, 2, 0, b"new")], true).unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.len(), 1);
        assert_eq!(replay[0][0], put(1, 2, 0, b"new"));
    }

    #[test]
    fn corrupt_middle_record_stops_replay_at_last_good_commit() {
        let path = temp_wal("corrupt-mid");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit(&[put(1, 1, 0, b"good")], true).unwrap();
            wal.append_commit(&[put(1, 1, 1, b"also good")], true)
                .unwrap();
        }
        // Flip one byte inside the second group's payload.
        {
            let mut raw = std::fs::read(&path).unwrap();
            let n = raw.len();
            raw[n - 5] ^= 0xAA;
            std::fs::write(&path, raw).unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.len(), 1);
    }

    #[test]
    fn all_op_kinds_roundtrip() {
        let path = temp_wal("kinds");
        let ops = vec![
            WalOp::EnsureHeap(7),
            put(7, 3, 9, b"payload bytes"),
            WalOp::Delete {
                heap: 7,
                rid: RecordId { page: 3, slot: 9 },
            },
            WalOp::DropHeap(7),
        ];
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit(&ops, true).unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay, vec![ops]);
    }

    #[test]
    fn tx_ids_continue_across_reopen() {
        let path = temp_wal("txids");
        let first = {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit(&[put(1, 1, 0, b"a")], true).unwrap()
        };
        let second = {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit(&[put(1, 1, 1, b"b")], true).unwrap()
        };
        assert!(second > first);
    }

    #[test]
    fn empty_commit_group_is_legal() {
        let path = temp_wal("empty-group");
        {
            let (mut wal, _) = Wal::open(&path).unwrap();
            wal.append_commit(&[], true).unwrap();
        }
        let (_, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay, vec![vec![]]);
    }
}
