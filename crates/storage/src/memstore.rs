//! In-memory [`Store`] for tests and I/O-free benchmarking.
//!
//! Implements the same contract as [`crate::FileStore`] — including the
//! reserve/commit protocol and stable record-id scan order — with plain
//! maps behind a reader-writer lock, so concurrent readers share access
//! just as they do on the striped file store. Record ids are synthesized
//! from a per-heap counter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::error::{Result, StorageError};
use crate::heap::{RecordId, MAX_PAYLOAD};
use crate::store::{HeapId, Store, StoreOp, StoreStats};

#[derive(Clone)]
enum Rec {
    Reserved,
    Data(Vec<u8>),
}

#[derive(Default)]
struct Heap {
    records: BTreeMap<RecordId, Rec>,
    next: u64,
}

impl Heap {
    fn fresh_rid(&mut self) -> RecordId {
        let n = self.next;
        self.next += 1;
        // Mirror the file layout's page/slot split so ids look realistic.
        RecordId {
            page: (n / 64) as u32 + 1,
            slot: (n % 64) as u16,
        }
    }
}

#[derive(Default)]
struct Inner {
    heaps: BTreeMap<HeapId, Heap>,
    next_heap: HeapId,
}

/// Volatile store: everything is lost on drop. Useful for unit tests and
/// for benchmarking engine logic without I/O noise.
#[derive(Default)]
pub struct MemStore {
    inner: RwLock<Inner>,
    commits: AtomicU64,
    record_reads: AtomicU64,
    record_writes: AtomicU64,
}

impl MemStore {
    /// Create an empty in-memory store.
    pub fn new() -> MemStore {
        MemStore {
            inner: RwLock::new(Inner {
                heaps: BTreeMap::new(),
                next_heap: 1,
            }),
            commits: AtomicU64::new(0),
            record_reads: AtomicU64::new(0),
            record_writes: AtomicU64::new(0),
        }
    }
}

impl Store for MemStore {
    fn create_heap(&self) -> Result<HeapId> {
        let mut g = self.inner.write();
        let id = g.next_heap;
        g.next_heap += 1;
        g.heaps.insert(id, Heap::default());
        Ok(id)
    }

    fn drop_heap(&self, heap: HeapId) -> Result<()> {
        self.inner
            .write()
            .heaps
            .remove(&heap)
            .map(|_| ())
            .ok_or(StorageError::NoSuchHeap(heap))
    }

    fn has_heap(&self, heap: HeapId) -> bool {
        self.inner.read().heaps.contains_key(&heap)
    }

    fn reserve(&self, heap: HeapId, _size_hint: usize) -> Result<RecordId> {
        let mut g = self.inner.write();
        let h = g
            .heaps
            .get_mut(&heap)
            .ok_or(StorageError::NoSuchHeap(heap))?;
        let rid = h.fresh_rid();
        h.records.insert(rid, Rec::Reserved);
        Ok(rid)
    }

    fn release(&self, heap: HeapId, rid: RecordId) -> Result<()> {
        let mut g = self.inner.write();
        let h = g
            .heaps
            .get_mut(&heap)
            .ok_or(StorageError::NoSuchHeap(heap))?;
        match h.records.get(&rid) {
            Some(Rec::Reserved) => {
                h.records.remove(&rid);
                Ok(())
            }
            _ => Err(StorageError::Internal(format!(
                "release of non-reserved record {rid}"
            ))),
        }
    }

    fn read(&self, heap: HeapId, rid: RecordId) -> Result<Vec<u8>> {
        // Shared lock: concurrent readers never serialize each other.
        self.record_reads.fetch_add(1, Ordering::Relaxed);
        let g = self.inner.read();
        let h = g.heaps.get(&heap).ok_or(StorageError::NoSuchHeap(heap))?;
        match h.records.get(&rid) {
            Some(Rec::Data(d)) => Ok(d.clone()),
            _ => Err(StorageError::NoSuchRecord {
                heap,
                page: rid.page,
                slot: rid.slot,
            }),
        }
    }

    fn commit(&self, ops: Vec<StoreOp>) -> Result<()> {
        let mut g = self.inner.write();
        // Validate first so the batch is all-or-nothing even in memory.
        // Enforce the same record-size limit as the durable store so
        // programs behave identically on both.
        for op in &ops {
            let heap = match op {
                StoreOp::Put { heap, .. } | StoreOp::Delete { heap, .. } => *heap,
            };
            if !g.heaps.contains_key(&heap) {
                return Err(StorageError::NoSuchHeap(heap));
            }
            if let StoreOp::Put { data, .. } = op {
                if data.len() > MAX_PAYLOAD {
                    return Err(StorageError::RecordTooLarge {
                        size: data.len(),
                        max: MAX_PAYLOAD,
                    });
                }
            }
        }
        for op in ops {
            match op {
                StoreOp::Put { heap, rid, data } => {
                    self.record_writes.fetch_add(1, Ordering::Relaxed);
                    let h = g.heaps.get_mut(&heap).expect("validated");
                    // Keep the id allocator ahead of replay-style puts.
                    let linear = (rid.page.saturating_sub(1)) as u64 * 64 + rid.slot as u64;
                    if linear >= h.next {
                        h.next = linear + 1;
                    }
                    h.records.insert(rid, Rec::Data(data));
                }
                StoreOp::Delete { heap, rid } => {
                    let h = g.heaps.get_mut(&heap).expect("validated");
                    h.records.remove(&rid);
                }
            }
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn scan(
        &self,
        heap: HeapId,
        visit: &mut dyn FnMut(RecordId, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        // Copy out one bounded chunk at a time (a B-tree range cursor
        // resumes after the last-visited rid), so scan residency is
        // O(chunk) rather than O(heap) — mirroring FileStore's
        // page-at-a-time bound — and the callback may still re-enter the
        // store: no lock is held while it runs.
        const SCAN_CHUNK: usize = 128;
        let mut resume_after: Option<RecordId> = None;
        loop {
            let chunk: Vec<(RecordId, Vec<u8>)> = {
                let g = self.inner.read();
                let h = g.heaps.get(&heap).ok_or(StorageError::NoSuchHeap(heap))?;
                let range = match resume_after {
                    None => h.records.range(..),
                    Some(last) => h
                        .records
                        .range((std::ops::Bound::Excluded(last), std::ops::Bound::Unbounded)),
                };
                range
                    .filter_map(|(rid, rec)| match rec {
                        Rec::Data(d) => Some((*rid, d.clone())),
                        Rec::Reserved => None,
                    })
                    .take(SCAN_CHUNK)
                    .collect()
            };
            let Some(&(last, _)) = chunk.last() else {
                return Ok(());
            };
            resume_after = Some(last);
            for (rid, data) in chunk {
                if !visit(rid, &data)? {
                    return Ok(());
                }
            }
        }
    }

    fn checkpoint(&self) -> Result<()> {
        Ok(())
    }

    fn stats(&self) -> StoreStats {
        StoreStats {
            commits: self.commits.load(Ordering::Relaxed),
            record_reads: self.record_reads.load(Ordering::Relaxed),
            record_writes: self.record_writes.load(Ordering::Relaxed),
            ..StoreStats::default()
        }
    }

    fn reset_stats(&self) {
        self.record_reads.store(0, Ordering::Relaxed);
        self.record_writes.store(0, Ordering::Relaxed);
    }

    fn clear_cache(&self) -> Result<()> {
        Ok(())
    }

    fn set_sync(&self, _sync: bool) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contract_matches_filestore() {
        let store = MemStore::new();
        let heap = store.create_heap().unwrap();
        assert_eq!(heap, 1);
        let rid = store.reserve(heap, 8).unwrap();
        assert!(store.read(heap, rid).is_err(), "reserved is unreadable");
        store
            .commit(vec![StoreOp::Put {
                heap,
                rid,
                data: b"v".to_vec(),
            }])
            .unwrap();
        assert_eq!(store.read(heap, rid).unwrap(), b"v");
        store.commit(vec![StoreOp::Delete { heap, rid }]).unwrap();
        assert!(store.read(heap, rid).is_err());
    }

    #[test]
    fn release_only_applies_to_reservations() {
        let store = MemStore::new();
        let heap = store.create_heap().unwrap();
        let rid = store.reserve(heap, 8).unwrap();
        store
            .commit(vec![StoreOp::Put {
                heap,
                rid,
                data: b"x".to_vec(),
            }])
            .unwrap();
        assert!(store.release(heap, rid).is_err());
    }

    #[test]
    fn scan_skips_reserved_and_orders_by_rid() {
        let store = MemStore::new();
        let heap = store.create_heap().unwrap();
        let a = store.reserve(heap, 8).unwrap();
        let _hole = store.reserve(heap, 8).unwrap();
        let b = store.reserve(heap, 8).unwrap();
        store
            .commit(vec![
                StoreOp::Put {
                    heap,
                    rid: b,
                    data: b"b".to_vec(),
                },
                StoreOp::Put {
                    heap,
                    rid: a,
                    data: b"a".to_vec(),
                },
            ])
            .unwrap();
        let mut seen = Vec::new();
        store
            .scan(heap, &mut |rid, d| {
                seen.push((rid, d.to_vec()));
                Ok(true)
            })
            .unwrap();
        assert_eq!(seen, vec![(a, b"a".to_vec()), (b, b"b".to_vec())]);
    }

    #[test]
    fn scan_callback_may_reenter_store() {
        let store = MemStore::new();
        let heap = store.create_heap().unwrap();
        for i in 0..3u8 {
            let rid = store.reserve(heap, 1).unwrap();
            store
                .commit(vec![StoreOp::Put {
                    heap,
                    rid,
                    data: vec![i],
                }])
                .unwrap();
        }
        let mut reads = 0;
        store
            .scan(heap, &mut |rid, _| {
                // Re-entrant read during scan must not deadlock.
                let _ = store.read(heap, rid).unwrap();
                reads += 1;
                Ok(true)
            })
            .unwrap();
        assert_eq!(reads, 3);
    }
}
