//! Durable [`Store`] implementation: pager + heaps + WAL in one directory.
//!
//! Layout on disk:
//! * `data.odb` — the page file; page 0 is the meta page (store magic,
//!   format version, next heap id, live heap ids),
//! * `wal.odb` — the redo log.
//!
//! Opening an existing store replays the WAL (idempotently) and then
//! rebuilds heap membership and free-space information by scanning page
//! headers, which also reclaims reservations orphaned by a crash.

use std::collections::BTreeSet;
use std::fs::OpenOptions;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Condvar, Mutex};

use crate::error::{Result, StorageError};
use crate::heap::{HeapManager, RecordId};
use crate::page::{Page, PageType};
use crate::pager::{Pager, PagerStats};
use crate::store::{CommitTicket, HeapId, Store, StoreOp, StoreStats};
use crate::wal::{Wal, WalOp};

/// Store-level magic in the meta record.
const META_MAGIC: u32 = 0x0DE0_0001;
/// On-disk format version.
const FORMAT_VERSION: u32 = 1;
/// Checkpoint when the WAL exceeds this many bytes.
const DEFAULT_CHECKPOINT_BYTES: u64 = 16 * 1024 * 1024;
/// Default buffer-pool capacity, in pages (= 32 MiB).
pub const DEFAULT_POOL_PAGES: usize = 4096;

struct Meta {
    next_heap_id: u32,
    heaps: BTreeSet<HeapId>,
}

impl Meta {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + 4 * self.heaps.len());
        out.extend_from_slice(&META_MAGIC.to_le_bytes());
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.next_heap_id.to_le_bytes());
        out.extend_from_slice(&(self.heaps.len() as u32).to_le_bytes());
        for h in &self.heaps {
            out.extend_from_slice(&h.to_le_bytes());
        }
        out
    }

    fn decode(bytes: &[u8]) -> Result<Meta> {
        let word = |i: usize| -> Result<u32> {
            bytes
                .get(i..i + 4)
                .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(|| StorageError::Corrupt("meta record truncated".into()))
        };
        if word(0)? != META_MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = word(4)?;
        if version != FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let next_heap_id = word(8)?;
        let count = word(12)? as usize;
        let mut heaps = BTreeSet::new();
        for i in 0..count {
            heaps.insert(word(16 + 4 * i)?);
        }
        Ok(Meta {
            next_heap_id,
            heaps,
        })
    }
}

/// Structural state: heap bookkeeping, the WAL, and the meta record. One
/// narrow lock guards it — mutations (commit apply, allocation, DDL) and
/// page-list snapshots take it; record reads never do, going straight to
/// the internally synchronized [`Pager`] (DESIGN.md §8).
struct StoreState {
    heaps: HeapManager,
    wal: Wal,
    meta: Meta,
    sync: bool,
    checkpoint_bytes: u64,
    /// Commits prepared ([`Store::commit_prepare`]) but not yet applied or
    /// abandoned. While nonzero the WAL holds groups whose effects are not
    /// in the pages yet, so checkpoints must not truncate it (DESIGN.md
    /// §13 — the invariant replacing the old single-writer `txn_gate`).
    pending_applies: u64,
}

impl StoreState {
    /// Persist the meta record into page 0, slot 0.
    fn write_meta(&mut self, pager: &Pager) -> Result<()> {
        let bytes = self.meta.encode();
        let ok = pager.with_page_mut(0, |p| {
            if !p.ensure_slot(0) {
                return false;
            }
            p.update(0, &bytes)
        })?;
        if !ok {
            return Err(StorageError::Internal(
                "meta record exceeds the meta page (too many heaps)".into(),
            ));
        }
        Ok(())
    }

    fn apply_store_op(&mut self, pager: &Pager, op: &StoreOp) -> Result<()> {
        match op {
            StoreOp::Put { heap, rid, data } => self.heaps.put_at(pager, *heap, *rid, data),
            StoreOp::Delete { heap, rid } => self.heaps.delete(pager, *heap, *rid),
        }
    }

    fn apply_op(&mut self, pager: &Pager, op: &WalOp) -> Result<()> {
        match op {
            WalOp::EnsureHeap(h) => {
                self.heaps.create_heap(*h);
                self.meta.heaps.insert(*h);
                self.meta.next_heap_id = self.meta.next_heap_id.max(h + 1);
                self.write_meta(pager)?;
            }
            WalOp::DropHeap(h) => {
                if self.heaps.has_heap(*h) {
                    self.heaps.drop_heap(pager, *h)?;
                }
                self.meta.heaps.remove(h);
                self.write_meta(pager)?;
            }
            WalOp::Put { heap, rid, data } => {
                self.heaps.put_at(pager, *heap, *rid, data)?;
            }
            WalOp::Delete { heap, rid } => {
                self.heaps.delete(pager, *heap, *rid)?;
            }
        }
        Ok(())
    }

    fn checkpoint(&mut self, pager: &Pager) -> Result<()> {
        pager.sync()?;
        self.wal.checkpoint()
    }

    fn maybe_checkpoint(&mut self, pager: &Pager) -> Result<()> {
        // Never truncate while prepared-but-unapplied groups exist: their
        // effects are only in the WAL, and a crash after truncation would
        // lose fsynced commits. The next commit to bring `pending_applies`
        // to zero picks the checkpoint up.
        if self.pending_applies == 0 && self.wal.len() > self.checkpoint_bytes {
            self.checkpoint(pager)?;
        }
        Ok(())
    }
}

/// Leader/follower fsync handoff for WAL group commit (DESIGN.md §13).
/// One committer at a time becomes the *leader*, snapshots the highest
/// appended group sequence, and issues a single `sync_data` that covers
/// every group appended so far; the others wait on the condvar and find
/// their sequence already durable when they wake.
struct SyncShared {
    /// Highest WAL group sequence appended by `commit_prepare`.
    appended_seq: u64,
    /// Highest sequence known durable (covered by a successful fsync).
    synced_seq: u64,
    /// Sequences at or below this failed their cohort fsync and must not
    /// be reported durable, even if a later fsync succeeds — after a
    /// failed fsync the kernel may have dropped the dirty pages, so a
    /// later success proves nothing about the earlier bytes.
    failed_upto: u64,
    /// A leader is currently in the fsync window.
    flushing: bool,
}

/// Durable, WAL-protected store rooted at a directory.
///
/// Locking: the buffer pool is lock-striped inside [`Pager`]; `read` and
/// the page-visiting part of `scan` touch only pager shards, so concurrent
/// readers on different pages never contend. Everything that mutates
/// structure — WAL appends, commit apply, heap create/drop, reservations —
/// serializes behind the single [`StoreState`] mutex, which keeps the
/// WAL-before-data ordering proof exactly as simple as the old
/// one-big-lock design.
pub struct FileStore {
    pager: Pager,
    state: Mutex<StoreState>,
    /// Signalled when `pending_applies` drops to zero (checkpoint barrier).
    apply_cv: Condvar,
    /// Group-commit fsync coordination; a WAL file handle cloned at open
    /// lets the leader fsync without holding the structural lock.
    sync_shared: Mutex<SyncShared>,
    sync_cv: Condvar,
    wal_sync_handle: std::fs::File,
    /// Successful cohort fsyncs / commits covered by one.
    commit_groups: AtomicU64,
    commit_group_members: AtomicU64,
    commits: AtomicU64,
    record_reads: AtomicU64,
    record_writes: AtomicU64,
    /// WAL commit groups replayed when this store was opened.
    replayed_groups: u64,
    /// Checkpoint attempts that failed (the WAL stays intact each time).
    checkpoint_failures: AtomicU64,
    dir: PathBuf,
}

/// Tuning knobs for [`FileStore::open_with`].
#[derive(Debug, Clone)]
pub struct FileStoreOptions {
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// fsync the WAL on every commit.
    pub sync_commits: bool,
    /// Checkpoint when the WAL exceeds this many bytes.
    pub checkpoint_bytes: u64,
}

impl Default for FileStoreOptions {
    fn default() -> Self {
        FileStoreOptions {
            pool_pages: DEFAULT_POOL_PAGES,
            sync_commits: true,
            checkpoint_bytes: DEFAULT_CHECKPOINT_BYTES,
        }
    }
}

impl FileStore {
    /// Open (creating if absent) a store in `dir` with default options.
    pub fn open(dir: &Path) -> Result<FileStore> {
        Self::open_with(dir, FileStoreOptions::default())
    }

    /// Open (creating if absent) a store in `dir`.
    pub fn open_with(dir: &Path, opts: FileStoreOptions) -> Result<FileStore> {
        std::fs::create_dir_all(dir).map_err(|e| StorageError::io("create store dir", e))?;
        let data_path = dir.join("data.odb");
        let wal_path = dir.join("wal.odb");
        let fresh = !data_path.exists();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&data_path)
            .map_err(|e| StorageError::io("open data file", e))?;
        let pager = Pager::new(file, opts.pool_pages)?;

        let (wal, replay) = Wal::open(&wal_path)?;
        let replayed_groups = replay.len() as u64;
        let mut state = if fresh || pager.page_count() == 0 {
            let mut meta_page = Page::new(PageType::Meta, 0);
            let meta = Meta {
                next_heap_id: 1,
                heaps: BTreeSet::new(),
            };
            meta_page
                .insert(&meta.encode())
                .expect("meta record fits a fresh page");
            pager.allocate(meta_page)?;
            StoreState {
                heaps: HeapManager::new(),
                wal,
                meta,
                sync: opts.sync_commits,
                checkpoint_bytes: opts.checkpoint_bytes,
                pending_applies: 0,
            }
        } else {
            let meta_bytes = pager.with_page(0, |p| p.record(0).map(|r| r.to_vec()))?;
            let meta_bytes =
                meta_bytes.ok_or_else(|| StorageError::Corrupt("meta record missing".into()))?;
            let meta = Meta::decode(&meta_bytes)?;
            // Heaps live after replay = meta heaps, plus Ensure, minus Drop.
            let mut live = meta.heaps.clone();
            for batch in &replay {
                for op in batch {
                    match op {
                        WalOp::EnsureHeap(h) => {
                            live.insert(*h);
                        }
                        WalOp::DropHeap(h) => {
                            live.remove(h);
                        }
                        _ => {}
                    }
                }
            }
            let heaps = HeapManager::rebuild(&pager, &live)?;
            let mut state = StoreState {
                heaps,
                wal,
                meta,
                sync: opts.sync_commits,
                checkpoint_bytes: opts.checkpoint_bytes,
                pending_applies: 0,
            };
            // Pin every home rid the replay stream will address, so that
            // forward-target placement during replay cannot allocate a slot
            // a later replayed operation owns (pre-crash those slots were
            // held by in-memory reservations, which are not durable).
            state
                .heaps
                .pin_replay_homes(replay.iter().flatten().filter_map(|op| match op {
                    WalOp::Put { heap, rid, .. } | WalOp::Delete { heap, rid } => {
                        Some((*heap, *rid))
                    }
                    _ => None,
                }));
            for batch in &replay {
                for op in batch {
                    state.apply_op(&pager, op)?;
                }
            }
            state.heaps.clear_replay_pins();
            // Everything replayed is now in buffer-pool pages; checkpoint so
            // the WAL does not grow across repeated crashes.
            state.write_meta(&pager)?;
            state.checkpoint(&pager)?;
            state
        };
        state.write_meta(&pager)?;
        let wal_sync_handle = state.wal.try_clone_file()?;
        Ok(FileStore {
            pager,
            state: Mutex::new(state),
            apply_cv: Condvar::new(),
            sync_shared: Mutex::new(SyncShared {
                appended_seq: 0,
                synced_seq: 0,
                failed_upto: 0,
                flushing: false,
            }),
            sync_cv: Condvar::new(),
            wal_sync_handle,
            commit_groups: AtomicU64::new(0),
            commit_group_members: AtomicU64::new(0),
            commits: AtomicU64::new(0),
            record_reads: AtomicU64::new(0),
            record_writes: AtomicU64::new(0),
            replayed_groups,
            checkpoint_failures: AtomicU64::new(0),
            dir: dir.to_path_buf(),
        })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Flush everything and truncate the WAL. Called on drop as well.
    pub fn close(&self) -> Result<()> {
        self.run_checkpoint()
    }

    /// WAL commit groups replayed when this store was opened.
    pub fn replayed_groups(&self) -> u64 {
        self.replayed_groups
    }

    fn run_checkpoint(&self) -> Result<()> {
        // Barrier: wait until every prepared commit has been applied (or
        // abandoned) before truncating the WAL — a group whose effects are
        // only in the log must survive the checkpoint. The wait releases
        // the structural lock, so appliers can drain. Bounded so a leaked
        // ticket (crash-torture's `mem::forget`) degrades to a checkpoint
        // failure instead of a hang; the WAL stays intact either way.
        let r = {
            let mut g = self.state.lock();
            let mut timed_out = false;
            while g.pending_applies > 0 && !timed_out {
                timed_out = self
                    .apply_cv
                    .wait_for(&mut g, std::time::Duration::from_secs(5))
                    .timed_out();
            }
            if g.pending_applies > 0 {
                Err(StorageError::Internal(
                    "checkpoint barrier: prepared commits never applied".into(),
                ))
            } else {
                g.checkpoint(&self.pager)
            }
        };
        if r.is_err() {
            self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        }
        r
    }

    fn finish_apply(&self, g: &mut StoreState) {
        g.pending_applies -= 1;
        if g.pending_applies == 0 {
            self.apply_cv.notify_all();
        }
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        // Best-effort clean shutdown; recovery handles the rest — but the
        // failure must not vanish: count it and say why the WAL remains.
        if let Err(e) = self.run_checkpoint() {
            eprintln!("ode-storage: checkpoint on close failed (WAL retained for recovery): {e}");
        }
    }
}

impl Store for FileStore {
    fn create_heap(&self) -> Result<HeapId> {
        let mut g = self.state.lock();
        let id = g.meta.next_heap_id;
        let sync = g.sync;
        g.wal.append_commit(&[WalOp::EnsureHeap(id)], sync)?;
        g.meta.next_heap_id += 1;
        g.meta.heaps.insert(id);
        g.heaps.create_heap(id);
        g.write_meta(&self.pager)?;
        Ok(id)
    }

    fn drop_heap(&self, heap: HeapId) -> Result<()> {
        let mut g = self.state.lock();
        if !g.heaps.has_heap(heap) {
            return Err(StorageError::NoSuchHeap(heap));
        }
        let sync = g.sync;
        g.wal.append_commit(&[WalOp::DropHeap(heap)], sync)?;
        g.heaps.drop_heap(&self.pager, heap)?;
        g.meta.heaps.remove(&heap);
        g.write_meta(&self.pager)?;
        Ok(())
    }

    fn has_heap(&self, heap: HeapId) -> bool {
        self.state.lock().heaps.has_heap(heap)
    }

    fn reserve(&self, heap: HeapId, size_hint: usize) -> Result<RecordId> {
        let mut g = self.state.lock();
        g.heaps.reserve(&self.pager, heap, size_hint)
    }

    fn release(&self, heap: HeapId, rid: RecordId) -> Result<()> {
        let mut g = self.state.lock();
        g.heaps.release(&self.pager, heap, rid)
    }

    fn read(&self, heap: HeapId, rid: RecordId) -> Result<Vec<u8>> {
        // No structural lock: record reads resolve entirely inside the
        // lock-striped pager, so readers on different pages run in
        // parallel and never queue behind a committing writer.
        self.record_reads.fetch_add(1, Ordering::Relaxed);
        HeapManager::read_record(&self.pager, heap, rid)
    }

    fn commit(&self, ops: Vec<StoreOp>) -> Result<()> {
        let mut g = self.state.lock();
        let wal_ops: Vec<WalOp> = ops
            .iter()
            .map(|op| match op {
                StoreOp::Put { heap, rid, data } => WalOp::Put {
                    heap: *heap,
                    rid: *rid,
                    data: data.clone(),
                },
                StoreOp::Delete { heap, rid } => WalOp::Delete {
                    heap: *heap,
                    rid: *rid,
                },
            })
            .collect();
        // Log first (the durability point), then apply to pages. The data
        // file can never get ahead of the log because pages are only
        // written back after this append returns. Holding the structural
        // lock across append + apply keeps the batch atomic with respect
        // to every other mutation.
        let sync = g.sync;
        g.wal.append_commit(&wal_ops, sync)?;
        for op in &wal_ops {
            if matches!(op, WalOp::Put { .. }) {
                self.record_writes.fetch_add(1, Ordering::Relaxed);
            }
            g.apply_op(&self.pager, op)?;
        }
        self.commits.fetch_add(1, Ordering::Relaxed);
        // The batch is durable once the WAL append returned: a failed
        // checkpoint here must not fail the commit (the caller would treat
        // a durable batch as lost). The WAL stays intact, so the next
        // checkpoint — or recovery — finishes the job.
        if g.maybe_checkpoint(&self.pager).is_err() {
            self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn commit_prepare(&self, ops: Vec<StoreOp>) -> Result<CommitTicket> {
        let mut g = self.state.lock();
        let wal_ops: Vec<WalOp> = ops
            .iter()
            .map(|op| match op {
                StoreOp::Put { heap, rid, data } => WalOp::Put {
                    heap: *heap,
                    rid: *rid,
                    data: data.clone(),
                },
                StoreOp::Delete { heap, rid } => WalOp::Delete {
                    heap: *heap,
                    rid: *rid,
                },
            })
            .collect();
        // Append without syncing: durability is phase 2's job, shared
        // across the cohort. On error nothing was logged (append_commit
        // rolls the tail back), so the caller may retry.
        let seq = g.wal.append_commit(&wal_ops, false)?;
        let sync = g.sync;
        g.pending_applies += 1;
        drop(g);
        if sync {
            let mut s = self.sync_shared.lock();
            s.appended_seq = s.appended_seq.max(seq);
        }
        Ok(CommitTicket {
            // seq 0 means "no durability wait" (WAL sequences start at 1).
            seq: if sync { seq } else { 0 },
            ops,
        })
    }

    fn commit_durable(&self, ticket: &CommitTicket) -> Result<()> {
        if ticket.seq == 0 {
            return Ok(()); // sync disabled when this commit was prepared
        }
        let seq = ticket.seq;
        let mut s = self.sync_shared.lock();
        loop {
            if s.failed_upto >= seq {
                return Err(StorageError::io(
                    "group-commit fsync",
                    std::io::Error::other("cohort leader fsync failed"),
                ));
            }
            if s.synced_seq >= seq {
                // A leader's fsync covered us: one cohort member, no fsync
                // of our own.
                self.commit_group_members.fetch_add(1, Ordering::Relaxed);
                return Ok(());
            }
            if !s.flushing {
                // Become the leader: fsync everything appended so far.
                s.flushing = true;
                let target = s.appended_seq;
                drop(s);
                let res = self.wal_sync_handle.sync_data();
                s = self.sync_shared.lock();
                s.flushing = false;
                match res {
                    Ok(()) => {
                        s.synced_seq = s.synced_seq.max(target);
                        self.commit_groups.fetch_add(1, Ordering::Relaxed);
                        self.commit_group_members.fetch_add(1, Ordering::Relaxed);
                        self.sync_cv.notify_all();
                        return Ok(());
                    }
                    Err(e) => {
                        s.failed_upto = s.failed_upto.max(target);
                        self.sync_cv.notify_all();
                        return Err(StorageError::io("group-commit fsync", e));
                    }
                }
            }
            self.sync_cv.wait(&mut s);
        }
    }

    fn commit_apply(&self, ticket: CommitTicket) -> Result<()> {
        let mut g = self.state.lock();
        let mut result = Ok(());
        for op in &ticket.ops {
            if matches!(op, StoreOp::Put { .. }) {
                self.record_writes.fetch_add(1, Ordering::Relaxed);
            }
            if let Err(e) = g.apply_store_op(&self.pager, op) {
                result = Err(e);
                break;
            }
        }
        self.finish_apply(&mut g);
        self.commits.fetch_add(1, Ordering::Relaxed);
        if result.is_ok() && g.maybe_checkpoint(&self.pager).is_err() {
            self.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
        }
        result
    }

    fn commit_abandon(&self, _ticket: CommitTicket) {
        let mut g = self.state.lock();
        self.finish_apply(&mut g);
    }

    fn commit_apply_retryable(&self) -> bool {
        false // apply bookkeeping is once-only; recovery replays instead
    }

    fn scan(
        &self,
        heap: HeapId,
        visit: &mut dyn FnMut(RecordId, &[u8]) -> Result<bool>,
    ) -> Result<()> {
        // Snapshot the page list under a brief structural lock, then walk
        // the pages through the pager only, so a long scan does not block
        // writers (the engine's apply gate prevents a commit from landing
        // mid-scan for snapshot readers; see DESIGN.md §8).
        let pages = self.state.lock().heaps.pages_of(heap)?;
        HeapManager::scan_pages(&self.pager, heap, &pages, |rid, data| visit(rid, data))
    }

    fn checkpoint(&self) -> Result<()> {
        self.run_checkpoint()
    }

    fn stats(&self) -> StoreStats {
        let g = self.state.lock();
        StoreStats {
            pager: self.pager.stats(),
            wal_bytes: g.wal.len(),
            page_count: self.pager.page_count(),
            commits: self.commits.load(Ordering::Relaxed),
            record_reads: self.record_reads.load(Ordering::Relaxed),
            record_writes: self.record_writes.load(Ordering::Relaxed),
            wal_appends: g.wal.appends(),
            // Cohort fsyncs happen on a cloned handle outside the Wal's
            // own counter; fold them in so fsyncs-per-commit is honest.
            wal_fsyncs: g.wal.fsyncs() + self.commit_groups.load(Ordering::Relaxed),
            replayed_groups: self.replayed_groups,
            faults_injected: 0,
            checkpoint_failures: self.checkpoint_failures.load(Ordering::Relaxed),
            commit_groups: self.commit_groups.load(Ordering::Relaxed),
            commit_group_members: self.commit_group_members.load(Ordering::Relaxed),
        }
    }

    fn pager_shard_stats(&self) -> Vec<PagerStats> {
        self.pager.stats_per_shard()
    }

    fn reset_stats(&self) {
        let mut g = self.state.lock();
        self.pager.reset_stats();
        self.record_reads.store(0, Ordering::Relaxed);
        self.record_writes.store(0, Ordering::Relaxed);
        self.commit_groups.store(0, Ordering::Relaxed);
        self.commit_group_members.store(0, Ordering::Relaxed);
        g.wal.reset_counters();
    }

    fn clear_cache(&self) -> Result<()> {
        self.pager.clear_cache()
    }

    fn set_sync(&self, sync: bool) {
        self.state.lock().sync = sync;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ode-filestore-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn create_commit_reopen_read() {
        let dir = temp_dir("reopen");
        let rid;
        let heap;
        {
            let store = FileStore::open(&dir).unwrap();
            heap = store.create_heap().unwrap();
            assert_eq!(heap, 1, "first heap id is deterministic");
            rid = store.reserve(heap, 32).unwrap();
            store
                .commit(vec![StoreOp::Put {
                    heap,
                    rid,
                    data: b"durable object".to_vec(),
                }])
                .unwrap();
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.read(heap, rid).unwrap(), b"durable object");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_replay_after_simulated_crash() {
        let dir = temp_dir("crash");
        let heap;
        let rid;
        {
            let store = FileStore::open(&dir).unwrap();
            heap = store.create_heap().unwrap();
            rid = store.reserve(heap, 16).unwrap();
            store
                .commit(vec![StoreOp::Put {
                    heap,
                    rid,
                    data: b"logged but maybe not paged".to_vec(),
                }])
                .unwrap();
            // Simulate a crash: leak the store so Drop's checkpoint (which
            // would flush pages) never runs. The WAL alone must carry the
            // commit.
            std::mem::forget(store);
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(
            store.read(heap, rid).unwrap(),
            b"logged but maybe not paged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_reservation_is_reclaimed_after_crash() {
        let dir = temp_dir("orphan");
        let heap;
        let orphan;
        {
            let store = FileStore::open(&dir).unwrap();
            heap = store.create_heap().unwrap();
            orphan = store.reserve(heap, 64).unwrap();
            // Push the reservation to the data file, then "crash" without
            // committing it.
            store.pager.sync().unwrap();
            std::mem::forget(store);
        }
        let store = FileStore::open(&dir).unwrap();
        assert!(store.read(heap, orphan).is_err());
        let mut count = 0;
        store
            .scan(heap, &mut |_, _| {
                count += 1;
                Ok(true)
            })
            .unwrap();
        assert_eq!(count, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_batch_multiple_ops() {
        let dir = temp_dir("batch");
        let store = FileStore::open(&dir).unwrap();
        let heap = store.create_heap().unwrap();
        let a = store.reserve(heap, 8).unwrap();
        let b = store.reserve(heap, 8).unwrap();
        store
            .commit(vec![
                StoreOp::Put {
                    heap,
                    rid: a,
                    data: b"alpha".to_vec(),
                },
                StoreOp::Put {
                    heap,
                    rid: b,
                    data: b"beta".to_vec(),
                },
            ])
            .unwrap();
        store
            .commit(vec![
                StoreOp::Delete { heap, rid: a },
                StoreOp::Put {
                    heap,
                    rid: b,
                    data: b"beta2".to_vec(),
                },
            ])
            .unwrap();
        assert!(store.read(heap, a).is_err());
        assert_eq!(store.read(heap, b).unwrap(), b"beta2");
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_heap_survives_reopen() {
        let dir = temp_dir("drop-heap");
        let (h1, h2);
        {
            let store = FileStore::open(&dir).unwrap();
            h1 = store.create_heap().unwrap();
            h2 = store.create_heap().unwrap();
            let rid = store.reserve(h1, 8).unwrap();
            store
                .commit(vec![StoreOp::Put {
                    heap: h1,
                    rid,
                    data: b"x".to_vec(),
                }])
                .unwrap();
            store.drop_heap(h1).unwrap();
        }
        let store = FileStore::open(&dir).unwrap();
        assert!(!store.has_heap(h1));
        assert!(store.has_heap(h2));
        // Heap ids keep advancing past dropped ids.
        let h3 = store.create_heap().unwrap();
        assert!(h3 > h2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_wal() {
        let dir = temp_dir("ckpt");
        let store = FileStore::open(&dir).unwrap();
        let heap = store.create_heap().unwrap();
        for i in 0..10u32 {
            let rid = store.reserve(heap, 16).unwrap();
            store
                .commit(vec![StoreOp::Put {
                    heap,
                    rid,
                    data: i.to_le_bytes().to_vec(),
                }])
                .unwrap();
        }
        assert!(store.stats().wal_bytes > 0);
        store.checkpoint().unwrap();
        assert_eq!(store.stats().wal_bytes, 0);
        // Data still readable after checkpoint + reopen.
        drop(store);
        let store = FileStore::open(&dir).unwrap();
        let mut n = 0;
        store
            .scan(heap, &mut |_, _| {
                n += 1;
                Ok(true)
            })
            .unwrap();
        assert_eq!(n, 10);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_order_is_stable() {
        let dir = temp_dir("scan-order");
        let store = FileStore::open(&dir).unwrap();
        let heap = store.create_heap().unwrap();
        let mut expected = Vec::new();
        for i in 0..100u32 {
            let rid = store.reserve(heap, 16).unwrap();
            store
                .commit(vec![StoreOp::Put {
                    heap,
                    rid,
                    data: i.to_le_bytes().to_vec(),
                }])
                .unwrap();
            expected.push(rid);
        }
        let mut seen = Vec::new();
        store
            .scan(heap, &mut |rid, _| {
                seen.push(rid);
                Ok(true)
            })
            .unwrap();
        assert_eq!(seen, expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn many_heaps_roundtrip_through_meta() {
        let dir = temp_dir("many-heaps");
        let mut ids = Vec::new();
        {
            let store = FileStore::open(&dir).unwrap();
            for _ in 0..50 {
                ids.push(store.create_heap().unwrap());
            }
        }
        let store = FileStore::open(&dir).unwrap();
        for id in ids {
            assert!(store.has_heap(id));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
