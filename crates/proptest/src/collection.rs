//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Acceptable size arguments for [`vec`]: an exact length, `a..b`, or
/// `a..=b`.
pub trait IntoSizeRange {
    /// Inclusive `(min, max)` length bounds.
    fn size_bounds(self) -> (usize, usize);
}

impl IntoSizeRange for usize {
    fn size_bounds(self) -> (usize, usize) {
        (self, self)
    }
}

impl IntoSizeRange for Range<usize> {
    fn size_bounds(self) -> (usize, usize) {
        assert!(self.start < self.end, "empty vec size range");
        (self.start, self.end - 1)
    }
}

impl IntoSizeRange for std::ops::RangeInclusive<usize> {
    fn size_bounds(self) -> (usize, usize) {
        assert!(self.start() <= self.end(), "empty vec size range");
        (*self.start(), *self.end())
    }
}

/// Strategy for vectors whose elements come from `elem`.
#[derive(Clone)]
pub struct VecStrategy<S> {
    elem: S,
    min: usize,
    max: usize,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.in_range(self.min, self.max);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// `Vec<T>` of a length drawn from `size`, elements drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
    let (min, max) = size.size_bounds();
    VecStrategy { elem, min, max }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = TestRng::new(21);
        let s = vec(0u8..255, 2..7);
        let mut seen = [false; 8];
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=6).contains(&v.len()));
            seen[v.len()] = true;
        }
        assert!(seen[2] && seen[6], "both bounds reachable");
        let exact = vec(0u8..255, 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }
}
