//! Vendored stand-in for the `proptest` crate (offline build).
//!
//! The build environment has no registry access, so the workspace routes
//! the `proptest` dev-dependency here. This is a small, deterministic
//! property-testing framework covering exactly the API surface Ode's test
//! suites use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_recursive` / `boxed`, tuple and range strategies, string-pattern
//! strategies, `any::<T>()`, `prop::collection::vec`, `prop::sample::select`,
//! and the `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * inputs are generated from a seed derived from the test name, so runs
//!   are fully deterministic (there is no `PROPTEST_` env handling),
//! * there is no shrinking — a failure reports the case number and seed,
//! * string "regex" patterns only honor the trailing `{m,n}` length range;
//!   the character class is a fixed printable palette (ASCII + multibyte).

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::{any, Arbitrary};
pub use strategy::{BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// The glob-import surface test files use (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};

    /// Mirror of proptest's `prelude::prop` module-alias.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run(__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                #[allow(clippy::redundant_closure_call)]
                let mut __body = move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __body()
            });
        }
        $crate::__proptest_items! { @cfg ($cfg) $($rest)* }
    };
}

/// Pick among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a property test; failure fails the case (not a panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Discard the current case (retried with fresh inputs, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}
