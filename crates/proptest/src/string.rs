//! String "pattern" strategies: `"pat{m,n}" `-style literals used directly
//! as strategies (e.g. `".*{0,24}"`, `".{0,80}"`, `"\\PC{0,12}"`).
//!
//! Only the trailing `{m,n}` length range is honored; the body selects a
//! character palette. That is enough for Ode's tests, which either only
//! need *some* string (totality fuzzing) or filter specifics away with
//! `prop_assume!`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Printable single-byte characters plus a sprinkling of multibyte ones,
/// so string round-trip tests exercise non-ASCII payloads.
const MULTIBYTE: [char; 12] = [
    'é', 'ß', 'λ', 'Ж', '中', '日', '〜', '€', '𝔘', '🦀', 'ñ', 'ø',
];

/// One palette character: mostly printable ASCII, sometimes multibyte.
pub(crate) fn palette_char(rng: &mut TestRng) -> char {
    match rng.next_u64() % 8 {
        0 => MULTIBYTE[rng.below(MULTIBYTE.len())],
        _ => (0x20 + rng.below(0x5F) as u8) as char, // ' ' ..= '~'
    }
}

/// Parse a trailing `{m,n}` length suffix; `None` if the literal has none.
fn length_suffix(pat: &str) -> Option<(usize, usize)> {
    let open = pat.rfind('{')?;
    let body = pat[open..].strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (min, max) = length_suffix(self).unwrap_or((0, 8));
        let len = rng.in_range(min, max);
        (0..len).map(|_| palette_char(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honors_length_suffix() {
        let mut rng = TestRng::new(41);
        for _ in 0..100 {
            let s: String = ".*{0,24}".generate(&mut rng);
            assert!(s.chars().count() <= 24);
            let t: String = "\\PC{3,12}".generate(&mut rng);
            let n = t.chars().count();
            assert!((3..=12).contains(&n), "len {n}");
        }
    }

    #[test]
    fn produces_multibyte_sometimes() {
        let mut rng = TestRng::new(42);
        let any_multibyte = (0..200).any(|_| !".{0,80}".generate(&mut rng).is_ascii());
        assert!(any_multibyte);
    }
}
