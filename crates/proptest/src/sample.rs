//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform choice from a fixed list; backs [`select`].
#[derive(Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}

/// Pick uniformly from `items` (which must be non-empty).
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select() needs at least one item");
    Select { items }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_items() {
        let s = select(vec!["a", "b", "c"]);
        let mut rng = TestRng::new(31);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(s.generate(&mut rng));
        }
        assert_eq!(seen.len(), 3);
    }
}
