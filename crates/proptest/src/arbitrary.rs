//! `any::<T>()` — canonical strategies for primitive types, with the same
//! edge-case bias real proptest applies (extremes show up often).

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    /// Generate one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // 1-in-8: an edge value; otherwise uniform bits.
                if rng.next_u64().is_multiple_of(8) {
                    match rng.next_u64() % 4 {
                        0 => 0 as $t,
                        1 => 1 as $t,
                        2 => <$t>::MAX,
                        _ => <$t>::MIN,
                    }
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

int_arbitrary!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64().is_multiple_of(2)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // NaN is deliberately excluded: generated values must satisfy
        // `Eq ⇒ same value after a codec round-trip`, which NaN breaks.
        if rng.next_u64().is_multiple_of(8) {
            const EDGES: [f64; 8] = [
                0.0,
                -0.0,
                1.0,
                -1.0,
                f64::MAX,
                f64::MIN_POSITIVE,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ];
            EDGES[rng.below(EDGES.len())]
        } else {
            loop {
                let v = f64::from_bits(rng.next_u64());
                if !v.is_nan() {
                    return v;
                }
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::palette_char(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_values_appear() {
        let mut rng = TestRng::new(11);
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..2000 {
            match u32::arbitrary(&mut rng) {
                0 => saw_zero = true,
                u32::MAX => saw_max = true,
                _ => {}
            }
        }
        assert!(saw_zero && saw_max);
    }

    #[test]
    fn floats_are_never_nan() {
        let mut rng = TestRng::new(12);
        for _ in 0..5000 {
            assert!(!f64::arbitrary(&mut rng).is_nan());
        }
    }
}
