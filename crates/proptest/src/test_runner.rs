//! Case driver: deterministic RNG, config, and the run loop behind the
//! `proptest!` macro.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};

/// Deterministic 64-bit generator (SplitMix64) used for all input
/// generation. Seeded from the test name, so every run of a given test
/// sees the same case sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Construct from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected (assumed-away) cases across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            max_global_rejects: cases.saturating_mul(200).max(1024),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it is retried, not counted.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError::Fail(reason.into())
    }

    /// A rejected (assumed-away) case.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "case rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "case failed: {r}"),
        }
    }
}

/// FNV-1a over the test name: a stable per-test base seed.
fn name_seed(name: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drive one property: generate-and-check `config.cases` inputs.
///
/// Panics (failing the surrounding `#[test]`) on the first failing case,
/// reporting the case number and seed so the run can be replayed under a
/// debugger by re-running the test binary.
pub fn run(
    config: ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let base = name_seed(name);
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    let mut passed = 0u32;
    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0xA076_1D64_78BD_642F);
        attempt += 1;
        let mut rng = TestRng::new(seed);
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest {name}: too many rejected cases \
                         ({rejects} rejects for {passed} passes)"
                    );
                }
            }
            Ok(Err(TestCaseError::Fail(reason))) => {
                panic!("proptest {name}: case #{passed} (seed {seed:#x}) failed:\n{reason}");
            }
            Err(payload) => {
                eprintln!("proptest {name}: case #{passed} (seed {seed:#x}) panicked");
                panic::resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(9);
        let mut b = TestRng::new(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn run_counts_cases() {
        let mut n = 0;
        run(ProptestConfig::with_cases(10), "count", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    fn rejects_are_retried() {
        let mut calls = 0;
        run(ProptestConfig::with_cases(5), "retry", |rng| {
            calls += 1;
            if rng.next_u64() % 2 == 0 {
                return Err(TestCaseError::reject("coin"));
            }
            Ok(())
        });
        assert!(calls >= 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        run(ProptestConfig::with_cases(5), "fail", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }
}
