//! The [`Strategy`] trait and its combinators.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds for it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Recursive strategies: `f` receives the strategy for "smaller" values
    /// and returns the composite level. `depth` bounds nesting; the other
    /// two parameters (desired size / expected branch size) exist for
    /// proptest signature compatibility and are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut level = base.clone();
        for _ in 0..depth {
            let branch = f(level).boxed();
            // Keep leaves reachable at every level so generated sizes vary.
            level = Union::new(vec![(1, base.clone()), (2, branch)]).boxed();
        }
        level
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            gen_fn: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    gen_fn: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen_fn: Rc::clone(&self.gen_fn),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen_fn)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Weighted choice among boxed strategies; backs `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms. Weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum to total")
    }
}

// ------------------------------------------------------------- primitives

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F2);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn map_and_ranges() {
        let mut rng = TestRng::new(3);
        let s = (0i64..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && (0..20).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights() {
        let mut rng = TestRng::new(4);
        let s = Union::new(vec![(9, Just(1u8).boxed()), (1, Just(2u8).boxed())]);
        let ones = (0..1000).filter(|_| s.generate(&mut rng) == 1).count();
        assert!(ones > 800, "ones = {ones}");
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0i64..100)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::new(5);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = s.generate(&mut rng);
            assert!(depth(&t) <= 4);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "recursion must actually branch");
    }

    #[test]
    fn flat_map_threads_values() {
        let s = (1usize..5).prop_flat_map(|n| crate::collection::vec(0i64..10, n..n + 1));
        let mut rng = TestRng::new(6);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }
}
