//! Frames and messages.
//!
//! Every message travels in one *frame*: a 4-byte big-endian payload
//! length followed by the payload. The first payload byte is a tag; the
//! rest is tag-specific. Strings are UTF-8 and unframed (the frame length
//! delimits them); integers are big-endian.
//!
//! A session opens with a handshake: the client's first frame must be
//! [`Request::Hello`] carrying its protocol version, answered by
//! [`Response::Welcome`] carrying the *negotiated* version (or a typed
//! [`Response::Error`] — admission rejection, draining shutdown, version
//! mismatch). The server accepts any client version in
//! [`MIN_PROTOCOL_VERSION`]`..=`[`PROTOCOL_VERSION`] and answers with the
//! lower of the two, so an older client keeps speaking its own revision
//! and never sees frames it cannot decode; a client from the future is
//! refused with a well-framed error rather than a desync. After the
//! handshake the client sends one request per frame and reads exactly
//! one response per request, in order.
//!
//! v2 adds [`Request::TracedLine`] (a line carrying the client-minted
//! trace id for the flight recorder) and the `Metrics` / `Trace` /
//! `SlowLog` control ops.
//!
//! v3 adds live subscriptions: the `Subscribe` / `Unsubscribe` control
//! ops and the asynchronous [`Response::Push`] frame. A push is the one
//! frame a server may send *unsolicited*; it only ever appears on a
//! session that negotiated v3 **and** subscribed, so the strict
//! one-response-per-request reading of older clients is never violated.
//! A v3 client must tolerate pushes interleaved before any response.

use std::io::{self, Read, Write};

/// Current protocol revision. Bumped on any frame change; see the module
/// docs for the negotiation rule.
pub const PROTOCOL_VERSION: u16 = 3;

/// Oldest revision this build still serves (v1: untraced lines, the
/// original three control ops).
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// The version a server answering `Hello { version: client }` should
/// speak for the rest of the session, or `None` when the client is
/// outside the supported window and must be refused.
pub fn negotiate(client: u16) -> Option<u16> {
    if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&client) {
        Some(client.min(PROTOCOL_VERSION))
    } else {
        None
    }
}

/// Hard ceiling on any frame this crate will read (64 MiB) — a defense
/// against garbage length prefixes, independent of the server's own
/// (smaller, configurable) request-size limit.
pub const MAX_FRAME_BYTES: u32 = 64 << 20;

// ----------------------------------------------------------- raw frames

/// Write one frame: `u32` BE payload length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Read one frame (blocking). `max_len` bounds the accepted payload
/// size; an oversized or truncated frame is an `InvalidData` error.
pub fn read_frame(r: &mut impl Read, max_len: u32) -> io::Result<Vec<u8>> {
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_be_bytes(hdr);
    if len > max_len.min(MAX_FRAME_BYTES) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds limit"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// An incremental frame assembler for non-blocking readers: push raw
/// bytes as they arrive, pop complete frames as they become available.
/// (The server reads sockets with a short timeout so it can poll its
/// shutdown flag; `read_exact` cannot resume across such timeouts.)
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A fresh empty assembler.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Append newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one has fully arrived. Returns an
    /// error if the pending frame's declared length exceeds `max_len`
    /// (the connection is then unrecoverable — framing is lost).
    pub fn next_frame(&mut self, max_len: u32) -> io::Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_be_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]);
        if len > max_len.min(MAX_FRAME_BYTES) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {len} bytes exceeds limit of {max_len}"),
            ));
        }
        let total = 4 + len as usize;
        if self.buf.len() < total {
            return Ok(None);
        }
        let payload = self.buf[4..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

// ------------------------------------------------------------- messages

/// Control operations — requests that bypass statement dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ControlOp {
    /// Liveness probe; answered with [`Response::Output`] (`"pong"`).
    Ping,
    /// Serving-layer telemetry (`.server`): accepted/rejected/timed-out
    /// counters, byte counts, request-latency histogram.
    ServerStats,
    /// The full engine telemetry snapshot as JSON.
    TelemetryJson,
    /// Prometheus text-format exposition of every metric (v2).
    Metrics,
    /// The span tree of one trace from the flight recorder (v2).
    Trace(u64),
    /// The slow-query log, rendered (v2).
    SlowLog,
    /// Register a live subscription (v3): `predicate` is evaluated over
    /// every object of `cluster` (deep extent) written by any commit, and
    /// matches arrive asynchronously as [`Response::Push`] frames.
    /// Answered with [`Response::Output`] carrying the subscription id as
    /// a decimal string.
    Subscribe {
        /// Cluster (class) name whose writes are watched.
        cluster: String,
        /// O++ boolean expression over the object's fields.
        predicate: String,
    },
    /// Cancel a subscription by id (v3). Pushes already in flight may
    /// still arrive after the acknowledgement.
    Unsubscribe(u64),
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Handshake: must be the first frame of a session.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// One shell input line (statement, meta-command, or a continuation
    /// line of a multi-line class declaration).
    Line(String),
    /// A shell input line plus the client-minted trace id that the server
    /// installs around its execution (v2; v1 peers never see this tag).
    TracedLine {
        /// The client-minted trace id (nonzero).
        trace: u64,
        /// The input line.
        text: String,
    },
    /// A control operation.
    Control(ControlOp),
    /// Orderly goodbye; the server answers [`Response::Goodbye`] and
    /// closes.
    Bye,
}

/// Why a request (or connection) was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed frame, unknown tag, handshake violation, or version
    /// mismatch. The connection is closed after this error.
    Protocol,
    /// The engine rejected the statement (parse error, constraint
    /// violation, unknown class, …). The session continues.
    Engine,
    /// Execution exceeded the server's per-request budget.
    Timeout,
    /// Admission control: the server is at its connection limit.
    Admission,
    /// The server is draining for shutdown.
    Shutdown,
    /// The request frame exceeded the server's size limit.
    TooLarge,
    /// The static analyzer rejected the statement before execution
    /// (unknown member, type mismatch, contradictory constraint, …).
    /// No transaction was opened; the session continues.
    Analysis,
    /// A transient storage failure (ENOSPC, a flaky disk) aborted the
    /// request after the engine's own retry budget ran out. The session
    /// survives and the request is safe to retry after a backoff
    /// (DESIGN.md §10).
    Unavailable,
    /// A trigger cascade hit the engine's depth limit (v3). The
    /// triggering commit itself succeeded — weak coupling — but the
    /// over-limit tail of the cascade was cut and dead-lettered. The
    /// session continues; retrying will not help until the trigger graph
    /// is fixed.
    Cascade,
}

impl ErrorKind {
    fn to_byte(self) -> u8 {
        match self {
            ErrorKind::Protocol => 1,
            ErrorKind::Engine => 2,
            ErrorKind::Timeout => 3,
            ErrorKind::Admission => 4,
            ErrorKind::Shutdown => 5,
            ErrorKind::TooLarge => 6,
            ErrorKind::Analysis => 7,
            ErrorKind::Unavailable => 8,
            ErrorKind::Cascade => 9,
        }
    }

    fn from_byte(b: u8) -> Option<ErrorKind> {
        Some(match b {
            1 => ErrorKind::Protocol,
            2 => ErrorKind::Engine,
            3 => ErrorKind::Timeout,
            4 => ErrorKind::Admission,
            5 => ErrorKind::Shutdown,
            6 => ErrorKind::TooLarge,
            7 => ErrorKind::Analysis,
            8 => ErrorKind::Unavailable,
            9 => ErrorKind::Cascade,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorKind::Protocol => "protocol",
            ErrorKind::Engine => "engine",
            ErrorKind::Timeout => "timeout",
            ErrorKind::Admission => "admission",
            ErrorKind::Shutdown => "shutdown",
            ErrorKind::TooLarge => "too-large",
            ErrorKind::Analysis => "analysis",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Cascade => "cascade",
        };
        f.write_str(s)
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Handshake accepted.
    Welcome {
        /// The server's [`PROTOCOL_VERSION`].
        version: u16,
    },
    /// Successful output (possibly empty) of a line or control op.
    Output(String),
    /// The line was absorbed; the statement needs more input lines
    /// (multi-line class declaration).
    Continue,
    /// A typed error. [`ErrorKind::Engine`] and [`ErrorKind::Timeout`]
    /// leave the session usable; every other kind closes it.
    Error {
        /// Error category.
        kind: ErrorKind,
        /// Human-oriented detail.
        message: String,
    },
    /// The session is over (after [`Request::Bye`], a `.exit`, or a
    /// server drain); the server closes the connection after sending it.
    Goodbye,
    /// An asynchronous subscription match (v3): a commit wrote an object
    /// of the subscribed cluster that satisfies the predicate. The only
    /// unsolicited frame in the protocol — it may arrive between a
    /// request and its response, and clients must buffer it.
    Push {
        /// The subscription that matched.
        sub_id: u64,
        /// Commit epoch of the matching write.
        epoch: u64,
        /// Rendered identity of the matching object.
        object: String,
    },
}

const TAG_HELLO: u8 = 0x01;
const TAG_LINE: u8 = 0x02;
const TAG_CONTROL: u8 = 0x03;
const TAG_BYE: u8 = 0x04;
const TAG_TRACED_LINE: u8 = 0x05;
const TAG_WELCOME: u8 = 0x81;
const TAG_OUTPUT: u8 = 0x82;
const TAG_CONTINUE: u8 = 0x83;
const TAG_ERROR: u8 = 0x84;
const TAG_GOODBYE: u8 = 0x85;
const TAG_PUSH: u8 = 0x86;

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

impl Request {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Request::Hello { version } => {
                let mut out = vec![TAG_HELLO];
                out.extend_from_slice(&version.to_be_bytes());
                out
            }
            Request::Line(text) => {
                let mut out = Vec::with_capacity(1 + text.len());
                out.push(TAG_LINE);
                out.extend_from_slice(text.as_bytes());
                out
            }
            Request::TracedLine { trace, text } => {
                let mut out = Vec::with_capacity(9 + text.len());
                out.push(TAG_TRACED_LINE);
                out.extend_from_slice(&trace.to_be_bytes());
                out.extend_from_slice(text.as_bytes());
                out
            }
            Request::Control(op) => match op {
                ControlOp::Ping => vec![TAG_CONTROL, 1],
                ControlOp::ServerStats => vec![TAG_CONTROL, 2],
                ControlOp::TelemetryJson => vec![TAG_CONTROL, 3],
                ControlOp::Metrics => vec![TAG_CONTROL, 4],
                ControlOp::Trace(id) => {
                    let mut out = vec![TAG_CONTROL, 5];
                    out.extend_from_slice(&id.to_be_bytes());
                    out
                }
                ControlOp::SlowLog => vec![TAG_CONTROL, 6],
                ControlOp::Subscribe { cluster, predicate } => {
                    let mut out = vec![TAG_CONTROL, 7];
                    out.extend_from_slice(&(cluster.len() as u16).to_be_bytes());
                    out.extend_from_slice(cluster.as_bytes());
                    out.extend_from_slice(predicate.as_bytes());
                    out
                }
                ControlOp::Unsubscribe(id) => {
                    let mut out = vec![TAG_CONTROL, 8];
                    out.extend_from_slice(&id.to_be_bytes());
                    out
                }
            },
            Request::Bye => vec![TAG_BYE],
        }
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> io::Result<Request> {
        let (&tag, rest) = payload.split_first().ok_or_else(|| bad("empty frame"))?;
        match tag {
            TAG_HELLO => {
                let bytes: [u8; 2] = rest
                    .try_into()
                    .map_err(|_| bad("hello frame must carry a u16 version"))?;
                Ok(Request::Hello {
                    version: u16::from_be_bytes(bytes),
                })
            }
            TAG_LINE => {
                let text = std::str::from_utf8(rest).map_err(|_| bad("line is not UTF-8"))?;
                Ok(Request::Line(text.to_string()))
            }
            TAG_TRACED_LINE => {
                if rest.len() < 8 {
                    return Err(bad("traced line missing trace id"));
                }
                let trace = u64::from_be_bytes(rest[..8].try_into().unwrap());
                let text = std::str::from_utf8(&rest[8..]).map_err(|_| bad("line is not UTF-8"))?;
                Ok(Request::TracedLine {
                    trace,
                    text: text.to_string(),
                })
            }
            TAG_CONTROL => match rest {
                [1] => Ok(Request::Control(ControlOp::Ping)),
                [2] => Ok(Request::Control(ControlOp::ServerStats)),
                [3] => Ok(Request::Control(ControlOp::TelemetryJson)),
                [4] => Ok(Request::Control(ControlOp::Metrics)),
                [5, id @ ..] if id.len() == 8 => Ok(Request::Control(ControlOp::Trace(
                    u64::from_be_bytes(id.try_into().unwrap()),
                ))),
                [6] => Ok(Request::Control(ControlOp::SlowLog)),
                [7, body @ ..] => {
                    if body.len() < 2 {
                        return Err(bad("subscribe op missing cluster length"));
                    }
                    let n = u16::from_be_bytes([body[0], body[1]]) as usize;
                    if body.len() < 2 + n {
                        return Err(bad("subscribe op truncated cluster name"));
                    }
                    let cluster = std::str::from_utf8(&body[2..2 + n])
                        .map_err(|_| bad("cluster name is not UTF-8"))?
                        .to_string();
                    let predicate = std::str::from_utf8(&body[2 + n..])
                        .map_err(|_| bad("predicate is not UTF-8"))?
                        .to_string();
                    Ok(Request::Control(ControlOp::Subscribe {
                        cluster,
                        predicate,
                    }))
                }
                [8, id @ ..] if id.len() == 8 => Ok(Request::Control(ControlOp::Unsubscribe(
                    u64::from_be_bytes(id.try_into().unwrap()),
                ))),
                _ => Err(bad("unknown control op")),
            },
            TAG_BYE => Ok(Request::Bye),
            other => Err(bad(format!("unknown request tag {other:#04x}"))),
        }
    }
}

impl Response {
    /// Encode into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            Response::Welcome { version } => {
                let mut out = vec![TAG_WELCOME];
                out.extend_from_slice(&version.to_be_bytes());
                out
            }
            Response::Output(text) => {
                let mut out = Vec::with_capacity(1 + text.len());
                out.push(TAG_OUTPUT);
                out.extend_from_slice(text.as_bytes());
                out
            }
            Response::Continue => vec![TAG_CONTINUE],
            Response::Error { kind, message } => {
                let mut out = Vec::with_capacity(2 + message.len());
                out.push(TAG_ERROR);
                out.push(kind.to_byte());
                out.extend_from_slice(message.as_bytes());
                out
            }
            Response::Goodbye => vec![TAG_GOODBYE],
            Response::Push {
                sub_id,
                epoch,
                object,
            } => {
                let mut out = Vec::with_capacity(17 + object.len());
                out.push(TAG_PUSH);
                out.extend_from_slice(&sub_id.to_be_bytes());
                out.extend_from_slice(&epoch.to_be_bytes());
                out.extend_from_slice(object.as_bytes());
                out
            }
        }
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> io::Result<Response> {
        let (&tag, rest) = payload.split_first().ok_or_else(|| bad("empty frame"))?;
        match tag {
            TAG_WELCOME => {
                let bytes: [u8; 2] = rest
                    .try_into()
                    .map_err(|_| bad("welcome frame must carry a u16 version"))?;
                Ok(Response::Welcome {
                    version: u16::from_be_bytes(bytes),
                })
            }
            TAG_OUTPUT => {
                let text = std::str::from_utf8(rest).map_err(|_| bad("output is not UTF-8"))?;
                Ok(Response::Output(text.to_string()))
            }
            TAG_CONTINUE => Ok(Response::Continue),
            TAG_ERROR => {
                let (&kind, msg) = rest
                    .split_first()
                    .ok_or_else(|| bad("error frame missing kind"))?;
                let kind = ErrorKind::from_byte(kind)
                    .ok_or_else(|| bad(format!("unknown error kind {kind}")))?;
                let message = std::str::from_utf8(msg)
                    .map_err(|_| bad("error message is not UTF-8"))?
                    .to_string();
                Ok(Response::Error { kind, message })
            }
            TAG_GOODBYE => Ok(Response::Goodbye),
            TAG_PUSH => {
                if rest.len() < 16 {
                    return Err(bad("push frame missing ids"));
                }
                let sub_id = u64::from_be_bytes(rest[..8].try_into().unwrap());
                let epoch = u64::from_be_bytes(rest[8..16].try_into().unwrap());
                let object = std::str::from_utf8(&rest[16..])
                    .map_err(|_| bad("push object is not UTF-8"))?
                    .to_string();
                Ok(Response::Push {
                    sub_id,
                    epoch,
                    object,
                })
            }
            other => Err(bad(format!("unknown response tag {other:#04x}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(Request::Hello {
            version: PROTOCOL_VERSION,
        });
        roundtrip_req(Request::Line("forall s in stockitem".into()));
        roundtrip_req(Request::Line(String::new()));
        roundtrip_req(Request::TracedLine {
            trace: 0xdead_beef_cafe,
            text: "update …".into(),
        });
        roundtrip_req(Request::TracedLine {
            trace: 1,
            text: String::new(),
        });
        roundtrip_req(Request::Control(ControlOp::Ping));
        roundtrip_req(Request::Control(ControlOp::ServerStats));
        roundtrip_req(Request::Control(ControlOp::TelemetryJson));
        roundtrip_req(Request::Control(ControlOp::Metrics));
        roundtrip_req(Request::Control(ControlOp::Trace(42)));
        roundtrip_req(Request::Control(ControlOp::SlowLog));
        roundtrip_req(Request::Control(ControlOp::Subscribe {
            cluster: "stockitem".into(),
            predicate: "quantity < 20 && name != \"x\"".into(),
        }));
        roundtrip_req(Request::Control(ControlOp::Subscribe {
            cluster: String::new(),
            predicate: String::new(),
        }));
        roundtrip_req(Request::Control(ControlOp::Unsubscribe(7)));
        roundtrip_req(Request::Bye);
    }

    #[test]
    fn negotiation_window() {
        // A v1 client keeps speaking v1; a current client gets v3.
        assert_eq!(negotiate(1), Some(1));
        assert_eq!(negotiate(2), Some(2));
        assert_eq!(negotiate(PROTOCOL_VERSION), Some(PROTOCOL_VERSION));
        // A future client is refused, not silently downgraded.
        assert_eq!(negotiate(PROTOCOL_VERSION + 1), None);
        assert_eq!(negotiate(0), None);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(Response::Welcome { version: 7 });
        roundtrip_resp(Response::Output("3 row(s)".into()));
        roundtrip_resp(Response::Continue);
        for kind in [
            ErrorKind::Protocol,
            ErrorKind::Engine,
            ErrorKind::Timeout,
            ErrorKind::Admission,
            ErrorKind::Shutdown,
            ErrorKind::TooLarge,
            ErrorKind::Analysis,
            ErrorKind::Unavailable,
            ErrorKind::Cascade,
        ] {
            roundtrip_resp(Response::Error {
                kind,
                message: format!("{kind} happened"),
            });
        }
        roundtrip_resp(Response::Goodbye);
        roundtrip_resp(Response::Push {
            sub_id: 3,
            epoch: 99,
            object: "stockitem:4:2.1".into(),
        });
        roundtrip_resp(Response::Push {
            sub_id: u64::MAX,
            epoch: 0,
            object: String::new(),
        });
    }

    #[test]
    fn malformed_payloads_are_typed_errors() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[0xff]).is_err());
        assert!(Request::decode(&[TAG_HELLO, 1]).is_err()); // truncated version
        assert!(Request::decode(&[TAG_CONTROL, 99]).is_err());
        assert!(Request::decode(&[TAG_TRACED_LINE, 1, 2]).is_err()); // short id
        assert!(Request::decode(&[TAG_CONTROL, 5, 1]).is_err()); // short trace op
        assert!(Request::decode(&[TAG_CONTROL, 7, 0]).is_err()); // short sub header
        assert!(Request::decode(&[TAG_CONTROL, 7, 0, 9, b'x']).is_err()); // truncated cluster
        assert!(Request::decode(&[TAG_CONTROL, 8, 1]).is_err()); // short unsubscribe id
        assert!(Response::decode(&[TAG_ERROR]).is_err());
        assert!(Response::decode(&[TAG_ERROR, 99]).is_err());
        assert!(Response::decode(&[TAG_PUSH, 1, 2, 3]).is_err()); // short push
        assert!(Request::decode(&[TAG_LINE, 0xc3]).is_err()); // invalid UTF-8
    }

    #[test]
    fn frame_io_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap(), b"");
        assert!(read_frame(&mut r, 1024).is_err()); // EOF
    }

    #[test]
    fn read_frame_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 64]).unwrap();
        let err = read_frame(&mut &buf[..], 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn frame_reader_handles_partial_arrival() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").unwrap();
        write_frame(&mut wire, b"defgh").unwrap();
        let mut fr = FrameReader::new();
        // Feed a byte at a time; frames pop exactly when complete.
        let mut got = Vec::new();
        for &b in &wire {
            fr.push(&[b]);
            while let Some(frame) = fr.next_frame(1024).unwrap() {
                got.push(frame);
            }
        }
        assert_eq!(got, vec![b"abc".to_vec(), b"defgh".to_vec()]);
        assert_eq!(fr.pending_bytes(), 0);
    }

    #[test]
    fn frame_reader_rejects_oversize_header() {
        let mut fr = FrameReader::new();
        fr.push(&u32::to_be_bytes(1 << 20));
        assert!(fr.next_frame(1024).is_err());
    }
}
