//! The blocking client: one `TcpStream`, one request in flight.
//!
//! [`ClientError`] is deliberately typed to keep *transport* failures
//! (connect refused, timeout, broken pipe — nothing reached the engine)
//! distinct from *engine* errors (the statement ran and was rejected:
//! parse error, constraint violation). Callers like `ode-shell
//! --connect` map the two classes to different exit codes.

use std::collections::VecDeque;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{
    read_frame, write_frame, ControlOp, ErrorKind, Request, Response, MAX_FRAME_BYTES,
    MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};

/// Typed client-side failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Socket-level failure: connect refused, I/O timeout, connection
    /// reset. The request may never have reached the server.
    Transport(String),
    /// The peer violated the wire protocol (bad frame, bad handshake).
    Protocol(String),
    /// Admission control refused the connection (server at capacity).
    Rejected(String),
    /// The server is draining for shutdown.
    ShuttingDown(String),
    /// The server gave up on the request (per-request budget exceeded).
    Timeout(String),
    /// The engine rejected the statement; the session remains usable.
    Engine(String),
    /// The request exceeded the server's frame-size limit.
    TooLarge(String),
    /// The static analyzer rejected the statement before execution; no
    /// transaction was opened and the session remains usable.
    Analysis(String),
    /// A transient storage failure on the server; the session survives
    /// and the request is safe to retry after a backoff (DESIGN.md §10).
    Unavailable(String),
    /// A trigger cascade hit the server's depth limit; the triggering
    /// commit itself succeeded (weak coupling) but the cascade tail was
    /// cut. The session remains usable; retrying will not help.
    Cascade(String),
}

impl ClientError {
    /// Is this a transport-class failure (as opposed to a server- or
    /// engine-reported one)?
    pub fn is_transport(&self) -> bool {
        matches!(self, ClientError::Transport(_))
    }

    /// Is this failure worth retrying after a backoff? True for the
    /// server's typed `Unavailable` (transient storage trouble; the
    /// session survives, so the same line can simply be re-sent).
    /// Transport errors are NOT retryable here: the connection state is
    /// unknown and the caller must reconnect first.
    pub fn is_retryable(&self) -> bool {
        matches!(self, ClientError::Unavailable(_))
    }

    fn from_io(e: io::Error) -> ClientError {
        ClientError::Transport(e.to_string())
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(m) => write!(f, "transport error: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Rejected(m) => write!(f, "connection rejected: {m}"),
            ClientError::ShuttingDown(m) => write!(f, "server shutting down: {m}"),
            ClientError::Timeout(m) => write!(f, "request timed out: {m}"),
            ClientError::Engine(m) => write!(f, "{m}"),
            ClientError::TooLarge(m) => write!(f, "request too large: {m}"),
            ClientError::Analysis(m) => write!(f, "{m}"),
            ClientError::Unavailable(m) => write!(f, "server unavailable (retryable): {m}"),
            ClientError::Cascade(m) => write!(f, "trigger cascade limit exhausted: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Outcome of sending one input line to the remote session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RemoteLine {
    /// The statement ran; here is its (possibly empty) output.
    Output(String),
    /// More input is needed (multi-line class declaration).
    Continue,
    /// The remote session ended (`.exit`, or the server drained).
    Goodbye,
}

/// Client-side backoff for retryable server errors
/// ([`ClientError::is_retryable`]). The delay doubles after each failed
/// attempt: `base_delay`, `2 × base_delay`, `4 × base_delay`, …
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 = fail immediately).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each time.
    pub base_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// No retries at all.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            attempts: 0,
            base_delay: Duration::ZERO,
        }
    }

    /// Backoff before retry number `attempt` (1-based).
    fn delay(&self, attempt: u32) -> Duration {
        self.base_delay
            .saturating_mul(1u32 << attempt.saturating_sub(1).min(16))
    }
}

/// An asynchronous subscription match delivered by the server (v3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PushEvent {
    /// The subscription that matched.
    pub sub_id: u64,
    /// Commit epoch of the matching write.
    pub epoch: u64,
    /// Rendered identity of the matching object.
    pub object: String,
}

/// A connected, handshaken session with an `ode-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The version negotiated at the handshake (≤ [`PROTOCOL_VERSION`]).
    version: u16,
    /// Trace-id minting state (v2 sessions trace every line).
    next_trace: u64,
    /// The trace id attached to the most recent [`Client::line`].
    last_trace: u64,
    /// Pushes that arrived interleaved with request/response traffic,
    /// buffered for [`Client::next_push`].
    pending_pushes: VecDeque<PushEvent>,
    /// The caller-requested I/O timeout, restored after the temporary
    /// read timeout [`Client::next_push`] installs.
    io_timeout: Option<Duration>,
}

impl Client {
    /// Connect and perform the protocol handshake. An admission-control
    /// rejection surfaces as [`ClientError::Rejected`], a draining server
    /// as [`ClientError::ShuttingDown`]. The server answers with the
    /// negotiated version — the lower of the two — which governs whether
    /// lines carry trace ids and which control ops are available.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::from_io)?;
        stream.set_nodelay(true).ok();
        // Seed trace minting so ids from concurrent clients rarely
        // collide; uniqueness is a convenience, not a requirement.
        let seed = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(1)
            ^ ((std::process::id() as u64) << 32);
        let mut client = Client {
            stream,
            version: PROTOCOL_VERSION,
            next_trace: seed | 1,
            last_trace: 0,
            pending_pushes: VecDeque::new(),
            io_timeout: None,
        };
        client.send(&Request::Hello {
            version: PROTOCOL_VERSION,
        })?;
        match client.recv()? {
            Response::Welcome { version }
                if (MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&version) =>
            {
                client.version = version;
                Ok(client)
            }
            Response::Welcome { version } => Err(ClientError::Protocol(format!(
                "server negotiated unsupported protocol v{version}, client v{PROTOCOL_VERSION}"
            ))),
            Response::Error { kind, message } => Err(typed(kind, message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected handshake response: {other:?}"
            ))),
        }
    }

    /// The protocol version negotiated at connect.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The trace id the most recent [`Client::line`] carried (0 on a v1
    /// session, where lines travel untraced).
    pub fn last_trace(&self) -> u64 {
        self.last_trace
    }

    /// Bound every subsequent socket read/write (`None` removes the
    /// bound). Expired bounds surface as [`ClientError::Transport`].
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.io_timeout = timeout;
        self.stream
            .set_read_timeout(timeout)
            .and_then(|()| self.stream.set_write_timeout(timeout))
            .map_err(ClientError::from_io)
    }

    /// Send one shell input line and read its response. On a v2 session
    /// the line carries a freshly minted trace id (readable afterwards
    /// via [`Client::last_trace`]) so the server records its spans under
    /// it; a v1 session sends the plain untraced frame.
    pub fn line(&mut self, text: &str) -> Result<RemoteLine, ClientError> {
        let req = if self.version >= 2 {
            self.last_trace = self.next_trace;
            self.next_trace = self.next_trace.wrapping_add(2); // stays odd, never 0
            Request::TracedLine {
                trace: self.last_trace,
                text: text.to_string(),
            }
        } else {
            self.last_trace = 0;
            Request::Line(text.to_string())
        };
        self.send(&req)?;
        match self.recv()? {
            Response::Output(out) => Ok(RemoteLine::Output(out)),
            Response::Continue => Ok(RemoteLine::Continue),
            Response::Goodbye => Ok(RemoteLine::Goodbye),
            Response::Error { kind, message } => Err(typed(kind, message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    /// [`Client::line`] with automatic backoff on retryable errors: when
    /// the server answers `Unavailable` (transient storage trouble — the
    /// session survives), sleep per `policy` and re-send the identical
    /// line. Every other error, and exhaustion of the retry budget,
    /// surfaces unchanged.
    pub fn line_with_retry(
        &mut self,
        text: &str,
        policy: RetryPolicy,
    ) -> Result<RemoteLine, ClientError> {
        let mut attempt = 0u32;
        loop {
            match self.line(text) {
                Err(e) if e.is_retryable() && attempt < policy.attempts => {
                    attempt += 1;
                    std::thread::sleep(policy.delay(attempt));
                }
                other => return other,
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.control(ControlOp::Ping)? {
            ref s if s == "pong" => Ok(()),
            other => Err(ClientError::Protocol(format!("ping answered `{other}`"))),
        }
    }

    /// Serving-layer telemetry, formatted as `name value` rows.
    pub fn server_stats(&mut self) -> Result<String, ClientError> {
        self.control(ControlOp::ServerStats)
    }

    /// The engine telemetry snapshot as JSON.
    pub fn telemetry_json(&mut self) -> Result<String, ClientError> {
        self.control(ControlOp::TelemetryJson)
    }

    /// Prometheus text-format metrics (v2 sessions only).
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        self.require_v2("metrics")?;
        self.control(ControlOp::Metrics)
    }

    /// The rendered span tree of `trace` from the server's flight
    /// recorder (v2 sessions only).
    pub fn trace(&mut self, trace: u64) -> Result<String, ClientError> {
        self.require_v2("trace retrieval")?;
        self.control(ControlOp::Trace(trace))
    }

    /// The server's slow-query log, rendered (v2 sessions only).
    pub fn slow_log(&mut self) -> Result<String, ClientError> {
        self.require_v2("slow-query log")?;
        self.control(ControlOp::SlowLog)
    }

    fn require_v2(&self, what: &str) -> Result<(), ClientError> {
        if self.version >= 2 {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "{what} requires protocol v2; this session negotiated v{}",
                self.version
            )))
        }
    }

    fn require_v3(&self, what: &str) -> Result<(), ClientError> {
        if self.version >= 3 {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!(
                "{what} requires protocol v3; this session negotiated v{}",
                self.version
            )))
        }
    }

    /// Register a live subscription (v3 sessions only): `predicate` is
    /// evaluated server-side against every object of `cluster` written by
    /// any commit; matches arrive asynchronously and are read with
    /// [`Client::next_push`]. Returns the subscription id.
    pub fn subscribe(&mut self, cluster: &str, predicate: &str) -> Result<u64, ClientError> {
        self.require_v3("live subscriptions")?;
        let out = self.control(ControlOp::Subscribe {
            cluster: cluster.to_string(),
            predicate: predicate.to_string(),
        })?;
        out.trim().parse().map_err(|_| {
            ClientError::Protocol(format!("subscribe answered non-numeric id `{out}`"))
        })
    }

    /// Cancel a subscription (v3 sessions only). Pushes already in flight
    /// may still be delivered afterwards.
    pub fn unsubscribe(&mut self, sub_id: u64) -> Result<(), ClientError> {
        self.require_v3("live subscriptions")?;
        self.control(ControlOp::Unsubscribe(sub_id))?;
        Ok(())
    }

    /// The next subscription push: a buffered one if any arrived
    /// interleaved with request/response traffic, otherwise block up to
    /// `wait` for the server to send one. `Ok(None)` means the wait
    /// elapsed without a push — no polling request is ever sent.
    pub fn next_push(&mut self, wait: Duration) -> Result<Option<PushEvent>, ClientError> {
        if let Some(p) = self.pending_pushes.pop_front() {
            return Ok(Some(p));
        }
        self.require_v3("live subscriptions")?;
        // Temporarily bound the read; the socket carries no other traffic
        // between requests, so anything that arrives is a push.
        self.stream
            .set_read_timeout(Some(wait.max(Duration::from_millis(1))))
            .map_err(ClientError::from_io)?;
        let result = read_frame(&mut self.stream, MAX_FRAME_BYTES);
        self.stream
            .set_read_timeout(self.io_timeout)
            .map_err(ClientError::from_io)?;
        let payload = match result {
            Ok(p) => p,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                return Ok(None)
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                return Err(ClientError::Protocol(e.to_string()))
            }
            Err(e) => return Err(ClientError::from_io(e)),
        };
        match Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))? {
            Response::Push {
                sub_id,
                epoch,
                object,
            } => Ok(Some(PushEvent {
                sub_id,
                epoch,
                object,
            })),
            other => Err(ClientError::Protocol(format!(
                "unsolicited non-push frame: {other:?}"
            ))),
        }
    }

    /// Orderly goodbye; consumes the client.
    pub fn bye(mut self) -> Result<(), ClientError> {
        self.send(&Request::Bye)?;
        match self.recv()? {
            Response::Goodbye => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "unexpected bye response: {other:?}"
            ))),
        }
    }

    fn control(&mut self, op: ControlOp) -> Result<String, ClientError> {
        self.send(&Request::Control(op))?;
        match self.recv()? {
            Response::Output(out) => Ok(out),
            Response::Error { kind, message } => Err(typed(kind, message)),
            other => Err(ClientError::Protocol(format!(
                "unexpected response: {other:?}"
            ))),
        }
    }

    fn send(&mut self, req: &Request) -> Result<(), ClientError> {
        write_frame(&mut self.stream, &req.encode()).map_err(ClientError::from_io)
    }

    fn recv(&mut self) -> Result<Response, ClientError> {
        // Pushes are the one unsolicited frame (v3): buffer any that
        // arrive ahead of the response we are actually waiting for.
        loop {
            let payload = read_frame(&mut self.stream, MAX_FRAME_BYTES).map_err(|e| {
                if e.kind() == io::ErrorKind::InvalidData {
                    ClientError::Protocol(e.to_string())
                } else {
                    ClientError::from_io(e)
                }
            })?;
            match Response::decode(&payload).map_err(|e| ClientError::Protocol(e.to_string()))? {
                Response::Push {
                    sub_id,
                    epoch,
                    object,
                } => self.pending_pushes.push_back(PushEvent {
                    sub_id,
                    epoch,
                    object,
                }),
                other => return Ok(other),
            }
        }
    }
}

fn typed(kind: ErrorKind, message: String) -> ClientError {
    match kind {
        ErrorKind::Protocol => ClientError::Protocol(message),
        ErrorKind::Engine => ClientError::Engine(message),
        ErrorKind::Timeout => ClientError::Timeout(message),
        ErrorKind::Admission => ClientError::Rejected(message),
        ErrorKind::Shutdown => ClientError::ShuttingDown(message),
        ErrorKind::TooLarge => ClientError::TooLarge(message),
        ErrorKind::Analysis => ClientError::Analysis(message),
        ErrorKind::Unavailable => ClientError::Unavailable(message),
        ErrorKind::Cascade => ClientError::Cascade(message),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_classification() {
        assert!(ClientError::Transport("refused".into()).is_transport());
        for e in [
            ClientError::Engine("parse".into()),
            ClientError::Rejected("full".into()),
            ClientError::Timeout("slow".into()),
            ClientError::Protocol("bad tag".into()),
        ] {
            assert!(!e.is_transport(), "{e}");
        }
    }

    #[test]
    fn connect_refused_is_transport() {
        // Port 1 on localhost is essentially never listening.
        let err = Client::connect("127.0.0.1:1").unwrap_err();
        assert!(err.is_transport(), "{err}");
    }

    #[test]
    fn typed_mapping_covers_all_kinds() {
        assert_eq!(
            typed(ErrorKind::Admission, "full".into()),
            ClientError::Rejected("full".into())
        );
        assert_eq!(
            typed(ErrorKind::Shutdown, "bye".into()),
            ClientError::ShuttingDown("bye".into())
        );
        assert_eq!(
            typed(ErrorKind::TooLarge, "big".into()),
            ClientError::TooLarge("big".into())
        );
        assert_eq!(
            typed(ErrorKind::Unavailable, "disk".into()),
            ClientError::Unavailable("disk".into())
        );
    }

    #[test]
    fn only_unavailable_is_retryable() {
        assert!(ClientError::Unavailable("enospc".into()).is_retryable());
        for e in [
            ClientError::Transport("refused".into()),
            ClientError::Engine("parse".into()),
            ClientError::Timeout("slow".into()),
            ClientError::Protocol("bad".into()),
            ClientError::Rejected("full".into()),
        ] {
            assert!(!e.is_retryable(), "{e}");
        }
    }

    #[test]
    fn retry_policy_backoff_doubles() {
        let p = RetryPolicy {
            attempts: 4,
            base_delay: Duration::from_millis(10),
        };
        assert_eq!(p.delay(1), Duration::from_millis(10));
        assert_eq!(p.delay(2), Duration::from_millis(20));
        assert_eq!(p.delay(3), Duration::from_millis(40));
        assert_eq!(RetryPolicy::none().attempts, 0);
    }
}
