//! # ode-wire
//!
//! The Ode client/server wire protocol and the blocking client library.
//!
//! This crate is the shared vocabulary between `ode-server` (the network
//! front-end) and `ode-shell --connect` (the remote REPL); it depends on
//! nothing so either side can use it without pulling in the engine.
//!
//! * [`protocol`] — length-prefixed frames and the typed
//!   [`Request`](protocol::Request)/[`Response`](protocol::Response)
//!   messages, with a version handshake,
//! * [`client`] — a blocking [`Client`](client::Client) over a
//!   `TcpStream`, returning typed [`ClientError`](client::ClientError)s
//!   that distinguish transport failures from engine errors.

pub mod client;
pub mod protocol;

pub use client::{Client, ClientError, PushEvent, RemoteLine};
pub use protocol::{ControlOp, ErrorKind, Request, Response, PROTOCOL_VERSION};
