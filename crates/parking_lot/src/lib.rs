//! Vendored stand-in for the `parking_lot` crate, implemented on top of
//! `std::sync`. The build environment has no registry access, so the
//! workspace routes the `parking_lot` dependency here (see the root
//! `Cargo.toml`). Only the API surface Ode actually uses is provided:
//! `Mutex`/`MutexGuard`, `RwLock` with its two guards, and `Condvar`, all
//! with parking_lot's non-poisoning semantics (a panicked holder does not
//! make the lock unusable).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// A mutual-exclusion lock. Unlike `std::sync::Mutex`, `lock()` returns the
/// guard directly and ignores poisoning, matching parking_lot.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized>(sync::MutexGuard<'a, T>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of [`Condvar::wait_for`]: whether the wait ended by timeout.
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed rather
    /// than a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's API: waits re-lock the guard
/// *in place* (`&mut MutexGuard`) instead of consuming and returning it,
/// and poisoning is ignored.
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Atomically release the guard's mutex and block until notified,
    /// re-acquiring it before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard and returns a fresh one; move the
        // inner guard out and back without running its destructor. Safe
        // because `Condvar::wait` does not unwind for a matched mutex and
        // the poisoned case is converted, so `guard.0` is always
        // re-initialized before anyone can observe it.
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let inner = self.0.wait(inner).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(&mut guard.0, inner);
        }
    }

    /// Like [`Condvar::wait`], but gives up after `timeout`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        unsafe {
            let inner = std::ptr::read(&guard.0);
            let (inner, result) = match self.0.wait_timeout(inner, timeout) {
                Ok((g, r)) => (g, r),
                Err(e) => {
                    let (g, r) = e.into_inner();
                    (g, r)
                }
            };
            std::ptr::write(&mut guard.0, inner);
            WaitTimeoutResult(result.timed_out())
        }
    }
}

/// A reader-writer lock with parking_lot's panic-tolerant semantics.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(|e| e.into_inner()))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(|e| e.into_inner()))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(g) => f.debug_tuple("RwLock").field(&&*g).finish(),
            Err(sync::TryLockError::Poisoned(e)) => {
                f.debug_tuple("RwLock").field(&&*e.into_inner()).finish()
            }
            Err(sync::TryLockError::WouldBlock) => f.write_str("RwLock(<locked>)"),
        }
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_and_notify() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            *ready = true;
            cv.notify_all();
            drop(ready);
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let r = cv.wait_for(&mut ready, Duration::from_secs(5));
            assert!(!r.timed_out(), "notification should arrive well within 5s");
        }
        drop(ready);
        t.join().unwrap();
        // And a pure timeout path.
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn mutex_survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 0);
    }
}
