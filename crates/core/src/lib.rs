//! # ode-core
//!
//! The Ode engine: a faithful Rust implementation of the database system
//! described in Agrawal & Gehani, *"ODE (Object Database and Environment):
//! The Language and the Data Model"*, SIGMOD 1989.
//!
//! | Paper facility | Here |
//! |---|---|
//! | persistent objects, `pnew`/`pdelete`, object ids (§2) | [`Transaction::pnew`], [`Transaction::pdelete`], [`ode_model::Oid`] |
//! | clusters = type extents, `create` (§2.5) | [`Database::create_cluster`], cluster-per-class heaps |
//! | sets (§2.6) | set-valued fields, [`Transaction::set_insert`], [`Transaction::iterate_set`] |
//! | `forall … suchthat … by` (§3.1) | [`query::Forall`] |
//! | cluster-hierarchy iteration + `is` (§3.1.1) | deep extents (default), [`Transaction::instance_of`] |
//! | join queries, multiple loop variables (§3.1) | [`query::ForallJoin`] |
//! | fixpoint / recursive queries (§3.2) | [`query::Forall::fixpoint`], [`Transaction::iterate_set`] |
//! | versions: `newversion`, generic & specific refs (§4) | [`version`] module ops on [`Transaction`] |
//! | constraints with abort + rollback (§5) | class constraints, checked per-update and at commit |
//! | once-only & perpetual triggers, weak coupling (§6) | [`Transaction::activate_trigger`], [`trigger`] |
//!
//! Start with [`Database::open`] (durable) or [`Database::in_memory`],
//! define classes with [`ode_model::ClassBuilder`], create clusters, and
//! work inside [`Transaction`]s.

pub mod analyze;
pub mod backup;
pub mod catalog;
pub mod database;
pub mod error;
pub mod index;
pub mod object;
pub mod oql;
pub mod query;
pub mod read;
pub mod trigger;
pub mod txn;
pub mod typed;
pub mod version;

/// Telemetry primitives and snapshot types (re-export of `ode-obs`).
pub use ode_obs as obs;

/// Static-analysis diagnostics and footprints (re-export of
/// `ode-analyze`).
pub use ode_analyze::{batch_interference, Diagnostic, Footprint, Severity};

pub use backup::DumpStats;
pub use database::{
    CallbackFn, CommitObserver, Database, DbConfig, FiringSink, ProfileBucket, SchedStatusFn,
    MAX_PROFILE_BUCKETS,
};
pub use error::{OdeError, Result};
pub use obs::{
    render_spans, FlightRecorder, PlanStrategy, QueryProfile, SlowQuery, SlowQueryLog, SpanRecord,
    SpanStage, TelemetrySnapshot, TraceEvent, TraceId, TracePhase, TraceScope, TraceSink,
    WorkStatRow,
};
pub use oql::{parse_query, ExecResult, QueryRows, QueryStmt};
pub use query::{Forall, ForallJoin};
pub use read::{ReadContext, ReadTransaction};
pub use trigger::{CommitInfo, CommitNote, FiredTrigger, PendingEvent, TriggerFailure, TriggerId};
pub use txn::{ObjWriter, Transaction};
pub use typed::{OdeInstance, Persistent};

/// Everything needed for typical use.
pub mod prelude {
    pub use crate::database::{Database, DbConfig};
    pub use crate::error::{OdeError, Result};
    pub use crate::read::{ReadContext, ReadTransaction};
    pub use crate::trigger::{CommitInfo, TriggerId};
    pub use crate::txn::{ObjWriter, Transaction};
    pub use crate::typed::{OdeInstance, Persistent};
    pub use ode_analyze::{Diagnostic, Severity};
    pub use ode_model::{ClassBuilder, Expr, ObjState, Oid, SetValue, Type, Value, VersionRef};
    pub use ode_obs::{QueryProfile, TelemetrySnapshot, TraceEvent, TraceSink};
}
