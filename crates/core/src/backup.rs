//! Whole-database export and import.
//!
//! A dump captures everything the catalog and clusters hold: class
//! declarations (with constraints and triggers), cluster and index
//! declarations, every object — including its full version history — and
//! live trigger activations. Importing into an *empty* database rebuilds
//! it all, remapping object identities (oids are physical addresses and
//! never survive a move) and compacting version numbers.
//!
//! This is also the practical answer to schema evolution, which the paper
//! explicitly leaves out (§1): dump, transform the text/classes offline,
//! reload.
//!
//! Format: the crate's own binary codec (`ode_model::encode`), with object
//! references rewritten to *ordinals* (position in the dump) and restored
//! to fresh oids on import. Dangling references (targets deleted before
//! the export) become `null`, and are counted in the report.

use std::collections::HashMap;

use ode_model::encode::{decode_class, encode_class, read_value, write_value, Reader, Writer};
use ode_model::{ModelError, ObjState, Oid, Value, VersionNo, VersionRef};
use ode_storage::RecordId;

use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::object::{decode_record, is_anchor, ObjRecord, NO_PARENT};

/// Dump format magic.
const MAGIC: &str = "ODEDUMP1";

/// Counters reported by [`Database::import`] (and produced during export).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct DumpStats {
    /// Classes defined.
    pub classes: usize,
    /// Clusters created.
    pub clusters: usize,
    /// Indexes declared.
    pub indexes: usize,
    /// Objects restored.
    pub objects: usize,
    /// Version records restored (beyond each object's current state).
    pub versions: usize,
    /// Trigger activations restored.
    pub activations: usize,
    /// References that dangled at export time and became `null`.
    pub dangling_refs: usize,
}

/// Synthetic cluster id marking a remapped reference inside a dump.
const ORDINAL_CLUSTER: u32 = u32::MAX;

fn ordinal_oid(ordinal: u32) -> Oid {
    Oid {
        cluster: ORDINAL_CLUSTER,
        rid: RecordId {
            page: ordinal,
            slot: 0,
        },
    }
}

/// Rewrite every object reference in `v` through `map` (export: oid →
/// ordinal; import: ordinal → fresh oid). Unmappable refs become `Null`.
fn remap_value(
    v: &Value,
    map: &mut impl FnMut(Oid, Option<VersionNo>) -> Option<Value>,
    dangling: &mut usize,
) -> Value {
    match v {
        Value::Ref(oid) => match map(*oid, None) {
            Some(v) => v,
            None => {
                *dangling += 1;
                Value::Null
            }
        },
        Value::VRef(vr) => match map(vr.oid, Some(vr.version)) {
            Some(v) => v,
            None => {
                *dangling += 1;
                Value::Null
            }
        },
        Value::Array(items) => Value::Array(
            items
                .iter()
                .map(|i| remap_value(i, map, dangling))
                .collect(),
        ),
        Value::Set(s) => Value::Set(s.iter().map(|i| remap_value(i, map, dangling)).collect()),
        other => other.clone(),
    }
}

fn write_fields(w: &mut Writer, fields: &[Value]) {
    w_u32(w, fields.len() as u32);
    for f in fields {
        write_value(w, f);
    }
}

fn read_fields(r: &mut Reader) -> Result<Vec<Value>> {
    let n = r_u32(r)? as usize;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        out.push(read_value(r)?);
    }
    Ok(out)
}

// Small numeric helpers over the model codec (which exposes value-level
// primitives only).
fn w_u32(w: &mut Writer, v: u32) {
    write_value(w, &Value::Int(v as i64));
}

fn r_u32(r: &mut Reader) -> Result<u32> {
    let v = read_value(r)?.as_int()?;
    u32::try_from(v).map_err(|_| ModelError::Decode(format!("bad u32 {v}")).into())
}

fn w_str(w: &mut Writer, s: &str) {
    write_value(w, &Value::Str(s.to_string()));
}

fn r_str(r: &mut Reader) -> Result<String> {
    Ok(read_value(r)?.as_str()?.to_string())
}

/// One exported version of one object.
struct DumpVersion {
    no: VersionNo,
    parent: VersionNo,
    fields: Vec<Value>,
}

/// One exported object.
struct DumpObject {
    class: String,
    /// `None` for unversioned objects (single current state).
    versions: Option<Vec<DumpVersion>>,
    /// Current state (also version `current` for versioned objects).
    fields: Vec<Value>,
}

impl Database {
    /// Serialize the entire database (schema, clusters, indexes, objects
    /// with version histories, trigger activations) into a self-contained
    /// dump.
    pub fn export(&self) -> Result<Vec<u8>> {
        // Shared apply gate: commits and DDL cannot publish while the
        // dump walks the store, but concurrent readers (and running write
        // transactions short of their publish window) proceed freely.
        let _apply = self.apply_gate.read();
        let inner = self.inner.read();
        let mut w = Writer::new();
        w_str(&mut w, MAGIC);

        // 1. Classes, in definition order.
        let classes = inner.schema.classes();
        w_u32(&mut w, classes.len() as u32);
        for def in classes {
            let bytes = encode_class(&inner.schema, def)?;
            w_u32(&mut w, bytes.len() as u32);
            w.append_bytes(&bytes);
        }

        // 2. Clusters + indexes (by class name).
        let mut cluster_names: Vec<String> = Vec::new();
        for def in classes {
            if inner.clusters.contains_key(&def.id) {
                cluster_names.push(def.name.clone());
            }
        }
        w_u32(&mut w, cluster_names.len() as u32);
        for name in &cluster_names {
            w_str(&mut w, name);
        }
        let index_pairs: Vec<(String, String)> = {
            let mut v: Vec<(String, String)> = inner
                .indexes
                .keys()
                .filter_map(|(class, field)| {
                    inner
                        .schema
                        .class(*class)
                        .ok()
                        .map(|c| (c.name.clone(), field.clone()))
                })
                .collect();
            v.sort();
            v
        };
        w_u32(&mut w, index_pairs.len() as u32);
        for (class, field) in &index_pairs {
            w_str(&mut w, class);
            w_str(&mut w, field);
        }

        // 3. Enumerate objects (shallow per cluster so each appears once),
        //    assigning ordinals, then write them with remapped refs.
        let mut objects: Vec<(Oid, DumpObject)> = Vec::new();
        let mut ordinal_of: HashMap<Oid, u32> = HashMap::new();
        for name in &cluster_names {
            let class = inner.schema.id_of(name)?;
            let heap = *inner.clusters.get(&class).expect("cluster listed");
            let mut raw: Vec<(RecordId, Vec<u8>)> = Vec::new();
            self.store.scan(heap, &mut |rid, bytes| {
                if is_anchor(bytes) {
                    raw.push((rid, bytes.to_vec()));
                }
                Ok(true)
            })?;
            for (rid, bytes) in raw {
                let oid = Oid { cluster: heap, rid };
                let dump = match decode_record(&bytes)? {
                    ObjRecord::Plain(state) => DumpObject {
                        class: inner.schema.class(state.class)?.name.clone(),
                        versions: None,
                        fields: state.fields,
                    },
                    ObjRecord::Anchor(table) => {
                        let mut versions = Vec::new();
                        let mut current_fields = Vec::new();
                        let mut class_name = String::new();
                        let mut entries = table.entries.clone();
                        entries.sort_by_key(|e| e.no);
                        for e in &entries {
                            let rec = self.store.read(heap, e.rid)?;
                            let ObjRecord::VersionRec { state, .. } = decode_record(&rec)? else {
                                return Err(OdeError::Version(format!(
                                    "anchor {oid} points at a non-version record"
                                )));
                            };
                            if class_name.is_empty() {
                                class_name = inner.schema.class(state.class)?.name.clone();
                            }
                            if e.no == table.current {
                                current_fields = state.fields.clone();
                            }
                            versions.push(DumpVersion {
                                no: e.no,
                                parent: e.parent,
                                fields: state.fields,
                            });
                        }
                        DumpObject {
                            class: class_name,
                            versions: Some(versions),
                            fields: current_fields,
                        }
                    }
                    ObjRecord::VersionRec { .. } => continue,
                };
                ordinal_of.insert(oid, objects.len() as u32);
                objects.push((oid, dump));
            }
        }

        let mut dangling = 0usize;
        let mut to_ordinal = |oid: Oid, version: Option<VersionNo>| -> Option<Value> {
            let ord = *ordinal_of.get(&oid)?;
            Some(match version {
                None => Value::Ref(ordinal_oid(ord)),
                Some(v) => Value::VRef(VersionRef {
                    oid: ordinal_oid(ord),
                    version: v,
                }),
            })
        };
        w_u32(&mut w, objects.len() as u32);
        for (_, obj) in &objects {
            w_str(&mut w, &obj.class);
            match &obj.versions {
                None => {
                    w_u32(&mut w, 0); // unversioned marker
                    let fields: Vec<Value> = obj
                        .fields
                        .iter()
                        .map(|v| remap_value(v, &mut to_ordinal, &mut dangling))
                        .collect();
                    write_fields(&mut w, &fields);
                }
                Some(versions) => {
                    w_u32(&mut w, versions.len() as u32);
                    for v in versions {
                        w_u32(&mut w, v.no);
                        w_u32(&mut w, v.parent);
                        let fields: Vec<Value> = v
                            .fields
                            .iter()
                            .map(|f| remap_value(f, &mut to_ordinal, &mut dangling))
                            .collect();
                        write_fields(&mut w, &fields);
                    }
                }
            }
        }
        // 4. Trigger activations.
        let mut acts: Vec<_> = inner.activations.values().collect();
        acts.sort_by_key(|a| a.id);
        let live_acts: Vec<_> = acts
            .iter()
            .filter(|a| ordinal_of.contains_key(&a.oid))
            .collect();
        w_u32(&mut w, live_acts.len() as u32);
        for a in live_acts {
            let ord = ordinal_of[&a.oid];
            w_u32(&mut w, ord);
            w_str(&mut w, &a.trigger);
            let args: Vec<Value> = a
                .args
                .iter()
                .map(|v| remap_value(v, &mut to_ordinal, &mut dangling))
                .collect();
            write_value(&mut w, &Value::Array(args));
        }

        // Trailer: references that already dangled at export time (their
        // targets were deleted); import reports them in its stats.
        w_u32(&mut w, dangling as u32);

        Ok(w.finish())
    }

    /// Rebuild a database from a dump produced by [`Database::export`].
    /// The database must be empty (no classes defined). Object identities
    /// are remapped; version numbers are compacted per object (specific
    /// references inside the data are adjusted to match). Returns what was
    /// restored.
    pub fn import(&self, bytes: &[u8]) -> Result<DumpStats> {
        if self.with_schema(|s| !s.is_empty()) {
            return Err(OdeError::Usage(
                "import requires an empty database (no classes defined)".into(),
            ));
        }
        let mut stats = DumpStats::default();
        let mut r = Reader::new(bytes);
        if r_str(&mut r)? != MAGIC {
            return Err(ModelError::Decode("not an Ode dump".into()).into());
        }

        // 1. Classes.
        let n_classes = r_u32(&mut r)? as usize;
        for _ in 0..n_classes {
            let len = r_u32(&mut r)? as usize;
            let class_bytes = r.take(len)?;
            self.define_class(decode_class(class_bytes)?)?;
            stats.classes += 1;
        }

        // 2. Clusters + indexes.
        for _ in 0..r_u32(&mut r)? {
            self.create_cluster(&r_str(&mut r)?)?;
            stats.clusters += 1;
        }
        for _ in 0..r_u32(&mut r)? {
            let class = r_str(&mut r)?;
            let field = r_str(&mut r)?;
            self.create_index(&class, &field)?;
            stats.indexes += 1;
        }

        // 3. Objects: parse them all first.
        struct InObject {
            class: String,
            versions: Option<Vec<DumpVersion>>,
            fields: Vec<Value>,
        }
        let n_objects = r_u32(&mut r)? as usize;
        let mut parsed: Vec<InObject> = Vec::with_capacity(n_objects.min(1 << 20));
        for _ in 0..n_objects {
            let class = r_str(&mut r)?;
            let n_versions = r_u32(&mut r)? as usize;
            if n_versions == 0 {
                let fields = read_fields(&mut r)?;
                parsed.push(InObject {
                    class,
                    versions: None,
                    fields,
                });
            } else {
                let mut versions = Vec::with_capacity(n_versions);
                for _ in 0..n_versions {
                    let no = r_u32(&mut r)?;
                    let parent = r_u32(&mut r)?;
                    let fields = read_fields(&mut r)?;
                    versions.push(DumpVersion { no, parent, fields });
                }
                versions.sort_by_key(|v| v.no);
                // Current state = highest-numbered version (the engine's
                // invariant: the current version is the newest live one).
                let fields = versions.last().expect("non-empty").fields.clone();
                parsed.push(InObject {
                    class,
                    versions: Some(versions),
                    fields,
                });
            }
        }
        let n_activations = r_u32(&mut r)? as usize;
        let mut activations = Vec::with_capacity(n_activations.min(1 << 20));
        for _ in 0..n_activations {
            let ord = r_u32(&mut r)?;
            let trigger = r_str(&mut r)?;
            let Value::Array(args) = read_value(&mut r)? else {
                return Err(ModelError::Decode("activation args not array".into()).into());
            };
            activations.push((ord, trigger, args));
        }
        let exported_dangling = r_u32(&mut r)? as usize;
        if !r.at_end() {
            return Err(ModelError::Decode("trailing bytes after dump".into()).into());
        }

        // 4. Materialize in one transaction with deferred constraints (the
        //    final commit re-validates everything).
        let mut tx = self.begin();
        tx.defer_constraints();
        // Pass 1: anchors (defaults only) so every ordinal has an oid.
        let mut oid_of: Vec<Oid> = Vec::with_capacity(parsed.len());
        for obj in &parsed {
            oid_of.push(tx.pnew(&obj.class, &[])?);
        }
        // Version-number compaction map per ordinal.
        let mut vmap: Vec<HashMap<VersionNo, VersionNo>> = vec![HashMap::new(); parsed.len()];
        for (i, obj) in parsed.iter().enumerate() {
            if let Some(versions) = &obj.versions {
                for (k, v) in versions.iter().enumerate() {
                    vmap[i].insert(v.no, k as VersionNo);
                }
            } else {
                vmap[i].insert(0, 0);
            }
        }
        let mut dangling = 0usize;
        // Pass 2: states (all ordinals now resolvable).
        for (i, obj) in parsed.iter().enumerate() {
            let oid = oid_of[i];
            let mut from_ordinal = |o: Oid, version: Option<VersionNo>| -> Option<Value> {
                if o.cluster != ORDINAL_CLUSTER {
                    return None; // corrupt/foreign ref: drop it
                }
                let ord = o.rid.page as usize;
                let target = *oid_of.get(ord)?;
                Some(match version {
                    None => Value::Ref(target),
                    Some(v) => {
                        let new_v = *vmap.get(ord)?.get(&v)?;
                        Value::VRef(VersionRef {
                            oid: target,
                            version: new_v,
                        })
                    }
                })
            };
            let apply = |tx: &mut crate::txn::Transaction<'_>,
                         oid: Oid,
                         fields: &[Value],
                         dangling: &mut usize,
                         from_ordinal: &mut dyn FnMut(Oid, Option<VersionNo>) -> Option<Value>|
             -> Result<()> {
                let names: Vec<String> = self.with_schema(|s| {
                    let state = ObjState {
                        class: s.id_of(&obj.class).expect("defined above"),
                        fields: Vec::new(),
                    };
                    s.class(state.class)
                        .map(|c| c.layout.iter().map(|f| f.name.clone()).collect())
                })?;
                tx.update(oid, |w| {
                    for (name, value) in names.iter().zip(fields.iter()) {
                        let v = remap_value(value, &mut |o, ver| from_ordinal(o, ver), dangling);
                        w.set(name, v)?;
                    }
                    Ok(())
                })
            };
            match &obj.versions {
                None => {
                    apply(&mut tx, oid, &obj.fields, &mut dangling, &mut from_ordinal)?;
                }
                Some(versions) => {
                    // First (lowest-numbered) version is the root state.
                    apply(
                        &mut tx,
                        oid,
                        &versions[0].fields,
                        &mut dangling,
                        &mut from_ordinal,
                    )?;
                    for v in &versions[1..] {
                        let new_parent = if v.parent == NO_PARENT {
                            0
                        } else {
                            *vmap[i].get(&v.parent).ok_or_else(|| {
                                OdeError::Version(format!(
                                    "dump references deleted parent version {}",
                                    v.parent
                                ))
                            })?
                        };
                        tx.newversion_from(VersionRef {
                            oid,
                            version: new_parent,
                        })?;
                        apply(&mut tx, oid, &v.fields, &mut dangling, &mut from_ordinal)?;
                        stats.versions += 1;
                    }
                }
            }
            stats.objects += 1;
        }
        // Pass 3: activations.
        for (ord, trigger, args) in activations {
            let Some(&oid) = oid_of.get(ord as usize) else {
                continue;
            };
            let mut from_ordinal = |o: Oid, version: Option<VersionNo>| -> Option<Value> {
                if o.cluster != ORDINAL_CLUSTER {
                    return None;
                }
                let t = *oid_of.get(o.rid.page as usize)?;
                Some(match version {
                    None => Value::Ref(t),
                    Some(v) => Value::VRef(VersionRef { oid: t, version: v }),
                })
            };
            let args: Vec<Value> = args
                .iter()
                .map(|v| remap_value(v, &mut from_ordinal, &mut dangling))
                .collect();
            tx.activate_trigger(oid, &trigger, args)?;
            stats.activations += 1;
        }
        tx.commit()?;
        stats.dangling_refs = dangling + exported_dangling;
        Ok(stats)
    }
}
