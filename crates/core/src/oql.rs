//! O++-flavoured query statements.
//!
//! §3.1 of the paper writes queries as
//!
//! ```text
//! for all x in cluster [suchthat (condition)] [by (expression)] statement
//! ```
//!
//! This module parses that statement form (accepting both `forall` and
//! `for all`) and executes it through the [`crate::query`] machinery, so a
//! whole query can be written as one string:
//!
//! ```text
//! forall e in employee, d in department suchthat (e.deptno == d.dno)
//! forall p in person suchthat (p is student && income > 1000) by (name) desc
//! forall s in only stockitem suchthat (quantity < 10)
//! ```
//!
//! * several `var in cluster` bindings make a join (§3.1),
//! * `only` before the cluster name restricts to the exact class
//!   (otherwise iteration covers the cluster hierarchy, §3.1.1),
//! * in single-variable queries the variable is bound, so qualified
//!   (`e.deptno`), bare (`deptno`), and `is`-test forms all work and
//!   indexed conjuncts are planned through the secondary indexes,
//! * `by (...)` with optional `desc` orders single-variable queries.
//!
//! The *statement body* is Rust: [`Transaction::query_run`] takes a
//! closure; [`Transaction::query`] materializes the bindings.

use std::collections::HashMap;

use ode_model::{extract_field_ranges, parse_expr, Expr, FieldRange, ModelError, Oid};
use ode_obs::QueryProfile;

use crate::error::{OdeError, Result};
use crate::query::{new_forall, new_forall_join};
use crate::read::{ReadContext, ReadTransaction};
use crate::txn::Transaction;

/// A parsed query statement.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStmt {
    /// `(variable, cluster, deep)` bindings, in order.
    pub bindings: Vec<(String, String, bool)>,
    /// The `suchthat` predicate.
    pub suchthat: Option<Expr>,
    /// The `by` key and descending flag (single-variable queries only).
    pub by: Option<(Expr, bool)>,
}

/// The key ranges a DML statement's `suchthat` provably pins on its
/// (single) loop variable — the write half of the footprint the analyzer
/// computes statically (DESIGN.md §14). Joins get no ranges: their write
/// sets depend on the other bindings.
fn suchthat_ranges(stmt: &QueryStmt) -> Vec<FieldRange> {
    match (&stmt.bindings[..], &stmt.suchthat) {
        ([(var, _, _)], Some(pred)) => extract_field_ranges(pred, Some(var.as_str())),
        _ => Vec::new(),
    }
}

/// Materialized query result: variable names plus one row per binding
/// combination, in iteration order.
#[derive(Debug, Clone)]
pub struct QueryRows {
    /// The loop variables, in declaration order.
    pub vars: Vec<String>,
    /// One oid per variable per row.
    pub rows: Vec<Vec<Oid>>,
}

impl QueryRows {
    /// Rows as name→oid maps.
    pub fn maps(&self) -> Vec<HashMap<String, Oid>> {
        self.rows
            .iter()
            .map(|row| self.vars.iter().cloned().zip(row.iter().copied()).collect())
            .collect()
    }

    /// Single-variable convenience: the oids of the only variable.
    pub fn oids(&self) -> Result<Vec<Oid>> {
        if self.vars.len() != 1 {
            return Err(OdeError::Usage(format!(
                "query has {} variables; oids() needs exactly one",
                self.vars.len()
            )));
        }
        Ok(self.rows.iter().map(|r| r[0]).collect())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Is the result empty?
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Parse a `forall …` statement.
pub fn parse_query(src: &str) -> Result<QueryStmt> {
    let mut p = Lex { src, at: 0 };
    // `forall` or `for all`.
    let opener = p.eat_kw("forall") || (p.eat_kw("for") && p.eat_kw("all"));
    if !opener {
        return Err(p.err("expected `forall`"));
    }
    let mut bindings = Vec::new();
    loop {
        let var = p.ident()?;
        if !p.eat_kw("in") {
            return Err(p.err("expected `in` after the loop variable"));
        }
        let deep = !p.eat_kw("only");
        let cluster = p.ident()?;
        bindings.push((var, cluster, deep));
        if !p.eat_sym(",") {
            break;
        }
    }
    let mut suchthat = None;
    if p.eat_kw("suchthat") {
        suchthat = Some(p.paren_expr()?);
    }
    let mut by = None;
    if p.eat_kw("by") {
        let key = p.paren_expr()?;
        let desc = p.eat_kw("desc");
        by = Some((key, desc));
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err(format!(
            "unexpected trailing input `{}`",
            p.rest().chars().take(16).collect::<String>()
        )));
    }
    // Duplicate variable names would make bindings ambiguous.
    for i in 0..bindings.len() {
        for j in i + 1..bindings.len() {
            if bindings[i].0 == bindings[j].0 {
                return Err(OdeError::Usage(format!(
                    "loop variable `{}` is bound twice",
                    bindings[i].0
                )));
            }
        }
    }
    Ok(QueryStmt {
        bindings,
        suchthat,
        by,
    })
}

struct Lex<'a> {
    src: &'a str,
    at: usize,
}

impl<'a> Lex<'a> {
    fn rest(&self) -> &'a str {
        &self.src[self.at..]
    }

    fn at_end(&self) -> bool {
        self.rest().trim().is_empty()
    }

    fn err(&self, message: impl Into<String>) -> OdeError {
        OdeError::Model(ModelError::Parse {
            message: message.into(),
            at: self.at,
        })
    }

    fn skip_ws(&mut self) {
        let rest = self.rest();
        let trimmed = rest.trim_start();
        self.at += rest.len() - trimmed.len();
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let rest = self.rest();
        if let Some(tail) = rest.strip_prefix(kw) {
            let after = tail.chars().next();
            if !matches!(after, Some(c) if c.is_ascii_alphanumeric() || c == '_') {
                self.at += kw.len();
                return true;
            }
        }
        false
    }

    fn eat_sym(&mut self, sym: &str) -> bool {
        self.skip_ws();
        if self.rest().starts_with(sym) {
            self.at += sym.len();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        self.skip_ws();
        let rest = self.rest();
        let mut end = 0;
        for (i, c) in rest.char_indices() {
            if (i == 0 && (c.is_ascii_alphabetic() || c == '_'))
                || (i > 0 && (c.is_ascii_alphanumeric() || c == '_'))
            {
                end = i + c.len_utf8();
            } else {
                break;
            }
        }
        if end == 0 {
            return Err(self.err(format!(
                "expected an identifier, found `{}`",
                rest.chars().take(12).collect::<String>()
            )));
        }
        self.at += end;
        Ok(rest[..end].to_string())
    }

    /// Capture raw text up to a top-level occurrence of any stop char
    /// (respecting nested parens and string literals), leaving the stop
    /// character unconsumed. End of input is also a valid stop.
    fn take_until_any(&mut self, stops: &[char]) -> Result<String> {
        self.skip_ws();
        let rest = self.rest();
        let mut depth = 0usize;
        let mut in_str: Option<char> = None;
        let mut end = rest.len();
        for (i, c) in rest.char_indices() {
            match in_str {
                Some(q) => {
                    if c == q {
                        in_str = None;
                    }
                }
                None => match c {
                    '\'' | '"' => in_str = Some(c),
                    '(' => depth += 1,
                    ')' if depth > 0 => depth -= 1,
                    _ if depth == 0 && stops.contains(&c) => {
                        end = i;
                        break;
                    }
                    _ => {}
                },
            }
        }
        let text = rest[..end].trim().to_string();
        if text.is_empty() {
            return Err(self.err("expected an expression"));
        }
        self.at += end;
        Ok(text)
    }

    /// Parse a parenthesized expression, respecting nested parens and
    /// string literals.
    fn paren_expr(&mut self) -> Result<Expr> {
        self.skip_ws();
        if !self.eat_sym("(") {
            return Err(self.err("expected `(`"));
        }
        let rest = self.rest();
        let mut depth = 1usize;
        let mut in_str: Option<char> = None;
        let mut end = None;
        for (i, c) in rest.char_indices() {
            match in_str {
                Some(q) => {
                    if c == q {
                        in_str = None;
                    }
                }
                None => match c {
                    '\'' | '"' => in_str = Some(c),
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(i);
                            break;
                        }
                    }
                    _ => {}
                },
            }
        }
        let Some(end) = end else {
            return Err(self.err("unbalanced parenthesis in clause"));
        };
        let text = &rest[..end];
        let expr = parse_expr(text)?;
        self.at += end + 1;
        Ok(expr)
    }
}

impl<'db> Transaction<'db> {
    /// Execute a `forall …` statement and materialize the qualifying
    /// bindings.
    pub fn query(&mut self, src: &str) -> Result<QueryRows> {
        self.ensure_live()?;
        let stmt = parse_query(src)?;
        self.run_stmt(stmt)
            .map_err(|e| with_statement_context(e, src))
    }

    /// Execute a `forall …` statement, running `f` for every qualifying
    /// binding. Returns the number of bindings visited.
    pub fn query_run(
        &mut self,
        src: &str,
        mut f: impl FnMut(&mut Transaction<'db>, &HashMap<String, Oid>) -> Result<()>,
    ) -> Result<usize> {
        let rows = self.query(src)?;
        let maps = rows.maps();
        for m in &maps {
            f(self, m)?;
        }
        Ok(maps.len())
    }

    fn run_stmt(&mut self, stmt: QueryStmt) -> Result<QueryRows> {
        run_stmt_ctx(self, stmt, &mut QueryProfile::default())
    }

    /// Execute any statement — query or DML — returning what it produced.
    ///
    /// ```text
    /// forall s in stockitem suchthat (quantity < 10)        → Rows
    /// pnew stockitem (name = "dram", quantity = 100)        → Created
    /// update s in stockitem suchthat (quantity < 10)
    ///     set on_order = on_order + 100, quantity = 10      → Updated(n)
    /// delete s in stockitem suchthat (quantity == 0)        → Deleted(n)
    /// ```
    ///
    /// DML runs inside this transaction: constraints apply per update
    /// (§5), and trigger conditions are evaluated when the transaction
    /// commits (§6).
    pub fn execute(&mut self, src: &str) -> Result<ExecResult> {
        self.ensure_live()?;
        // The front-end runs first (DESIGN.md §9): a statement the
        // analyzer rejects does no transaction work at all.
        self.db.analysis_gate(src)?;
        self.execute_unchecked(src)
            .map_err(|e| with_statement_context(e, src))
    }

    fn execute_unchecked(&mut self, src: &str) -> Result<ExecResult> {
        let trimmed = src.trim_start();
        if let Some(rest) = trimmed.strip_prefix("explain") {
            if rest.starts_with(char::is_whitespace) {
                let stmt = parse_query(rest)?;
                let mut prof = QueryProfile::default();
                run_stmt_ctx(self, stmt, &mut prof)?;
                return Ok(ExecResult::Explain(prof));
            }
        }
        if trimmed.starts_with("pnew") {
            let (class, inits) = parse_pnew(src)?;
            let mut pairs = Vec::new();
            {
                let inner = self.db.inner.read();
                for (field, expr) in &inits {
                    let v = ode_model::EvalCtx::new(&inner.schema).eval(expr)?;
                    pairs.push((field.clone(), v));
                }
            }
            let init_refs: Vec<(&str, ode_model::Value)> =
                pairs.iter().map(|(f, v)| (f.as_str(), v.clone())).collect();
            let oid = self.pnew(&class, &init_refs)?;
            return Ok(ExecResult::Created(oid));
        }
        if trimmed.starts_with("update") {
            let (query, assigns) = parse_update(src)?;
            let ranges = suchthat_ranges(&query);
            let rows = self.run_stmt(query)?;
            let oids = rows.oids()?;
            let n = oids.len();
            // Self-verifying note: commit re-checks that every written
            // object really sat inside `ranges` and only the assigned
            // fields moved, then stamps the heap with the ranges instead
            // of a whole-heap stamp (narrowed validation, DESIGN.md §14).
            self.note_ranged_write(oids.clone(), ranges);
            for oid in oids {
                self.update(oid, |w| {
                    for (field, expr) in &assigns {
                        // Assignments see the object's *pre-statement*
                        // fields through the writer (left-to-right within
                        // one object, as in a C++ body).
                        let state = ObjStateView(w);
                        let v = state.eval(expr)?;
                        w.set(field, v)?;
                    }
                    Ok(())
                })?;
            }
            return Ok(ExecResult::Updated(n));
        }
        if trimmed.starts_with("delete") {
            let query = parse_delete(src)?;
            let ranges = suchthat_ranges(&query);
            let rows = self.run_stmt(query)?;
            let oids = rows.oids()?;
            let n = oids.len();
            self.note_ranged_write(oids.clone(), ranges);
            for oid in oids {
                self.pdelete(oid)?;
            }
            return Ok(ExecResult::Deleted(n));
        }
        Ok(ExecResult::Rows(self.query(src)?))
    }
}

impl ReadTransaction<'_> {
    /// Execute a `forall …` statement against this snapshot and
    /// materialize the qualifying bindings.
    pub fn query(&mut self, src: &str) -> Result<QueryRows> {
        let stmt = parse_query(src)?;
        run_stmt_ctx(self, stmt, &mut QueryProfile::default())
            .map_err(|e| with_statement_context(e, src))
    }

    /// Execute a read-only statement: `forall` queries and `explain`.
    /// DML (`pnew`/`update … set`/`delete`) needs a write transaction —
    /// requesting it here is a usage error, not a silent no-op.
    pub fn execute(&mut self, src: &str) -> Result<ExecResult> {
        // Front-end first, as in `Transaction::execute`.
        self.db.analysis_gate(src)?;
        let trimmed = src.trim_start();
        if let Some(rest) = trimmed.strip_prefix("explain") {
            if rest.starts_with(char::is_whitespace) {
                let stmt = parse_query(rest)?;
                let mut prof = QueryProfile::default();
                run_stmt_ctx(self, stmt, &mut prof)?;
                return Ok(ExecResult::Explain(prof));
            }
        }
        for kw in ["pnew", "update", "delete"] {
            if trimmed.starts_with(kw) {
                return Err(OdeError::Usage(format!(
                    "`{kw}` mutates the database; a read transaction only runs `forall`/`explain`"
                )));
            }
        }
        Ok(ExecResult::Rows(self.query(src)?))
    }
}

/// Execute a parsed query through either transaction kind, accumulating
/// its execution profile — the engine behind `explain <query>`.
fn run_stmt_ctx<C: ReadContext>(
    tx: &mut C,
    stmt: QueryStmt,
    prof: &mut QueryProfile,
) -> Result<QueryRows> {
    if stmt.bindings.len() == 1 {
        let (var, cluster, deep) = stmt.bindings.into_iter().next().unwrap();
        let mut q = new_forall(tx, &cluster)?.bind(&var);
        if !deep {
            q = q.shallow();
        }
        if let Some(pred) = stmt.suchthat {
            q = q.suchthat_expr(pred);
        }
        if let Some((key, desc)) = stmt.by {
            q = if desc {
                q.by_desc(&key.to_string())?
            } else {
                q.by(&key.to_string())?
            };
        }
        let oids = q.collect_oids_profiled(prof)?;
        return Ok(QueryRows {
            vars: vec![var],
            rows: oids.into_iter().map(|o| vec![o]).collect(),
        });
    }
    // Join form. `by` over joins is not defined by the paper's grammar.
    if stmt.by.is_some() {
        return Err(OdeError::Usage(
            "`by` is only supported on single-variable queries".into(),
        ));
    }
    for (var, _, deep) in &stmt.bindings {
        if !deep {
            return Err(OdeError::Usage(format!(
                "`only` on join variable `{var}` is not supported"
            )));
        }
    }
    let vars: Vec<(&str, &str)> = stmt
        .bindings
        .iter()
        .map(|(v, c, _)| (v.as_str(), c.as_str()))
        .collect();
    let mut q = new_forall_join(tx, &vars)?;
    if let Some(pred) = stmt.suchthat {
        q = q.suchthat_expr(pred);
    }
    let rows = q.collect_profiled(prof)?;
    Ok(QueryRows {
        vars: stmt.bindings.into_iter().map(|(v, ..)| v).collect(),
        rows,
    })
}

/// Helper: evaluate an expression against an in-progress [`ObjWriter`].
struct ObjStateView<'a, 'b>(&'a crate::txn::ObjWriter<'b>);

impl ObjStateView<'_, '_> {
    fn eval(&self, expr: &Expr) -> Result<ode_model::Value> {
        let (schema, state) = self.0.parts();
        Ok(ode_model::EvalCtx::new(schema)
            .with_this(state)
            .eval(expr)?)
    }
}

/// Result of [`Transaction::execute`].
#[derive(Debug, Clone)]
pub enum ExecResult {
    /// A `forall` query's bindings.
    Rows(QueryRows),
    /// `pnew` created this object.
    Created(Oid),
    /// `update … set` modified this many objects.
    Updated(usize),
    /// `delete` removed this many objects.
    Deleted(usize),
    /// `explain <query>`: the executed query's plan and profile.
    Explain(QueryProfile),
}

/// Parse `pnew <class> (field = expr, ...)`.
pub(crate) fn parse_pnew(src: &str) -> Result<(String, Vec<(String, Expr)>)> {
    let mut p = Lex { src, at: 0 };
    if !p.eat_kw("pnew") {
        return Err(p.err("expected `pnew`"));
    }
    let class = p.ident()?;
    let mut inits = Vec::new();
    p.skip_ws();
    if p.eat_sym("(") {
        p.skip_ws();
        if !p.eat_sym(")") {
            loop {
                let field = p.ident()?;
                if !p.eat_sym("=") {
                    return Err(p.err("expected `=` in initializer"));
                }
                let expr_src = p.take_until_any(&[',', ')'])?;
                inits.push((field, parse_expr(&expr_src)?));
                if p.eat_sym(")") {
                    break;
                }
                if !p.eat_sym(",") {
                    return Err(p.err("expected `,` or `)` in initializer list"));
                }
            }
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input after pnew"));
    }
    Ok((class, inits))
}

/// Parse `update <var> in <class> [suchthat (…)] set f = expr [, …]`.
pub(crate) fn parse_update(src: &str) -> Result<(QueryStmt, Vec<(String, Expr)>)> {
    let mut p = Lex { src, at: 0 };
    if !p.eat_kw("update") {
        return Err(p.err("expected `update`"));
    }
    let var = p.ident()?;
    if !p.eat_kw("in") {
        return Err(p.err("expected `in`"));
    }
    let deep = !p.eat_kw("only");
    let cluster = p.ident()?;
    let suchthat = if p.eat_kw("suchthat") {
        Some(p.paren_expr()?)
    } else {
        None
    };
    if !p.eat_kw("set") {
        return Err(p.err("expected `set`"));
    }
    let mut assigns = Vec::new();
    loop {
        let field = p.ident()?;
        if !p.eat_sym("=") {
            return Err(p.err("expected `=` in assignment"));
        }
        let expr_src = p.take_until_any(&[','])?;
        assigns.push((field, parse_expr(&expr_src)?));
        if !p.eat_sym(",") {
            break;
        }
    }
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input after assignments"));
    }
    Ok((
        QueryStmt {
            bindings: vec![(var, cluster, deep)],
            suchthat,
            by: None,
        },
        assigns,
    ))
}

/// Parse `delete <var> in <class> [suchthat (…)]`.
pub(crate) fn parse_delete(src: &str) -> Result<QueryStmt> {
    let mut p = Lex { src, at: 0 };
    if !p.eat_kw("delete") {
        return Err(p.err("expected `delete`"));
    }
    let var = p.ident()?;
    if !p.eat_kw("in") {
        return Err(p.err("expected `in`"));
    }
    let deep = !p.eat_kw("only");
    let cluster = p.ident()?;
    let suchthat = if p.eat_kw("suchthat") {
        Some(p.paren_expr()?)
    } else {
        None
    };
    p.skip_ws();
    if !p.at_end() {
        return Err(p.err("unexpected trailing input after delete"));
    }
    Ok(QueryStmt {
        bindings: vec![(var, cluster, deep)],
        suchthat,
        by: None,
    })
}

/// Annotate eval-time unbound-variable failures with the statement they
/// came from (`$param` outside a trigger body, a bare name the evaluator
/// could not resolve), so shell/server users see *where* it failed
/// instead of a naked `unknown variable`.
fn with_statement_context(e: OdeError, src: &str) -> OdeError {
    match e {
        OdeError::Model(ModelError::UnknownVar(_)) => OdeError::InStatement {
            statement: clip_statement(src),
            source: Box::new(e),
        },
        other => other,
    }
}

/// One display line of statement text: whitespace collapsed, long tails
/// elided.
fn clip_statement(src: &str) -> String {
    const MAX: usize = 120;
    let collapsed = src.split_whitespace().collect::<Vec<_>>().join(" ");
    if collapsed.chars().count() > MAX {
        let head: String = collapsed.chars().take(MAX).collect();
        format!("{head}…")
    } else {
        collapsed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statement_forms_parse() {
        let q = parse_query("forall p in person").unwrap();
        assert_eq!(q.bindings, vec![("p".into(), "person".into(), true)]);
        assert!(q.suchthat.is_none() && q.by.is_none());

        let q = parse_query("for all p in only person suchthat (age > 21) by (name) desc").unwrap();
        assert_eq!(q.bindings, vec![("p".into(), "person".into(), false)]);
        assert!(q.suchthat.is_some());
        assert!(matches!(q.by, Some((_, true))));

        let q = parse_query("forall e in employee, d in department suchthat (e.deptno == d.dno)")
            .unwrap();
        assert_eq!(q.bindings.len(), 2);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_query("select * from person").is_err());
        assert!(parse_query("forall in person").is_err());
        assert!(parse_query("forall p person").is_err());
        assert!(parse_query("forall p in person suchthat age > 1").is_err());
        assert!(parse_query("forall p in person suchthat (age > 1").is_err());
        assert!(parse_query("forall p in person trailing junk").is_err());
        assert!(parse_query("forall p in a, p in b").is_err(), "dup var");
    }

    #[test]
    fn nested_parens_and_strings_in_clauses() {
        let q = parse_query(r#"forall p in person suchthat ((age + 1) * 2 > 4 && name != "a)b")"#)
            .unwrap();
        assert!(q.suchthat.is_some());
    }
}
