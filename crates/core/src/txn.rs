//! Transactions: deferred-update write sets, constraint enforcement,
//! commit, and weak-coupled trigger firing.
//!
//! The paper treats "any O++ program that interacts with the database" as
//! one transaction (§1); here transactions are explicit. A transaction
//! keeps every write in a private write-set (read-your-writes, invisible
//! to the store until commit), so abort is trivial and the storage layer
//! only ever sees committed batches.
//!
//! Commit pipeline, in order:
//!
//! 1. **Constraints** (§5): every object written must satisfy every
//!    constraint of its class, inherited ones included; a violation aborts
//!    and rolls back the whole transaction (footnote 17 / Cactis).
//!    Constraints are *also* checked eagerly after each `update`/`pnew`.
//! 2. **Trigger conditions** (§6): evaluated "at the end of the
//!    transaction" for every activation whose subject was written.
//! 3. The write-set is materialized into one atomic store batch (objects,
//!    version records, catalog records for trigger activations).
//! 4. In-memory indexes and the activation table are updated.
//! 5. Fired trigger actions each run as an **independent transaction**
//!    (weak coupling) — they start only after the commit, and an aborted
//!    transaction fires nothing.

use std::collections::{HashMap, HashSet};

use ode_model::eval::EvalCtx;
use ode_model::{
    ClassId, FieldRange, ModelError, ObjState, Oid, Resolver, TriggerAction, Value, VersionNo,
    VersionRef,
};
use ode_obs::{SpanGuard, SpanStage, TracePhase, TraceScope};
use ode_storage::{RecordId, StoreOp};

use crate::catalog::{CatalogRecord, CATALOG_HEAP};
use crate::database::{Database, WriteSummary};
use crate::error::{OdeError, Result};
use crate::object::{
    decode_record, encode_anchor, encode_plain, encode_vrec, ObjRecord, VersionEntry, VersionTable,
};
use crate::trigger::{
    Activation, CommitInfo, CommitNote, FiredTrigger, Firing, PendingEvent, TriggerFailure,
    TriggerId,
};

/// What `do_commit` hands back to the caller once the batch is published:
/// firings to run inline (empty in decoupled mode), events already durably
/// enqueued for the scheduler (empty inline), and the write note for an
/// installed commit observer.
pub(crate) struct CommitOutcome {
    pub firings: Vec<Firing>,
    pub events: Vec<PendingEvent>,
    pub note: Option<CommitNote>,
}

/// One version row in a transaction's working table.
#[derive(Debug, Clone)]
pub(crate) struct TxnVEntry {
    pub no: VersionNo,
    pub parent: VersionNo,
    /// Record id on disk (`None` = created in this transaction).
    pub rid: Option<RecordId>,
    /// In-transaction snapshot to write at commit (`None` = disk content is
    /// already correct, or this is the current version whose state lives in
    /// [`TxnObj::state`]).
    pub frozen: Option<ObjState>,
    /// Marked deleted this transaction.
    pub deleted: bool,
}

/// A versioned object's working table.
#[derive(Debug, Clone, Default)]
pub(crate) struct TxnVersionTable {
    pub current: VersionNo,
    pub entries: Vec<TxnVEntry>,
}

impl TxnVersionTable {
    pub(crate) fn from_committed(t: &VersionTable) -> TxnVersionTable {
        TxnVersionTable {
            current: t.current,
            entries: t
                .entries
                .iter()
                .map(|e| TxnVEntry {
                    no: e.no,
                    parent: e.parent,
                    rid: Some(e.rid),
                    frozen: None,
                    deleted: false,
                })
                .collect(),
        }
    }

    pub(crate) fn next_no(&self) -> VersionNo {
        self.entries.iter().map(|e| e.no + 1).max().unwrap_or(0)
    }
}

/// Write-set entry for one object.
#[derive(Debug, Clone)]
pub(crate) struct TxnObj {
    /// Created by this transaction (`pnew`).
    pub new: bool,
    /// Current-version state was modified.
    pub dirty: bool,
    /// Working state of the *current* version.
    pub state: ObjState,
    /// Committed current state (index maintenance); `None` for new objects.
    pub pre_state: Option<ObjState>,
    /// Version table, if the object is (or became) versioned.
    pub vt: Option<TxnVersionTable>,
    /// Table structure changed (new versions, deletions, re-current).
    pub vt_dirty: bool,
}

/// Tombstone for an object deleted this transaction.
#[derive(Debug, Clone)]
pub(crate) struct DeletedObj {
    /// Committed current state (index removal).
    pub(crate) pre_state: ObjState,
    /// Version record ids to delete alongside the anchor.
    pub(crate) version_rids: Vec<RecordId>,
}

/// One scan-set entry: the publish epoch at first observation plus, when
/// the statement's predicate proved key ranges, the ranges every object
/// the scan *used* was inside. `ranges: None` is the classic whole-heap
/// entry; a ranged entry lets commit validation ignore writers whose
/// footprint is provably disjoint (DESIGN.md §14).
#[derive(Debug, Clone)]
pub(crate) struct ScanEntry {
    /// Publish epoch at first observation (older on merge — conservative).
    pub epoch: u64,
    /// Proven per-field intervals, or `None` for the whole heap.
    pub ranges: Option<Vec<FieldRange>>,
}

/// A self-verifying note for one ranged DML statement's writes: the oids
/// it wrote and the pre-state ranges its predicate proved. At commit the
/// transaction re-checks each note against the final write-set (pre-state
/// inside the range, range fields unchanged, no version machinery) and
/// only then presents the ranges to the validator — analysis can narrow
/// validation, never weaken it.
#[derive(Debug, Clone)]
pub(crate) struct WriteNote {
    pub oids: Vec<Oid>,
    pub ranges: Vec<FieldRange>,
}

/// Field-level writer handed to [`Transaction::update`] closures. Performs
/// type checking against the declared member types.
pub struct ObjWriter<'a> {
    schema: &'a ode_model::Schema,
    state: &'a mut ObjState,
}

impl ObjWriter<'_> {
    /// Read a field.
    pub fn get(&self, field: &str) -> Result<Value> {
        let def = self.schema.class(self.state.class)?;
        let i = def.field_index(field)?;
        Ok(self.state.fields[i].clone())
    }

    /// Assign a field (type-checked).
    pub fn set(&mut self, field: &str, value: impl Into<Value>) -> Result<()> {
        let value = value.into();
        let i = self.schema.check_assign(self.state.class, field, &value)?;
        self.state.fields[i] = value;
        Ok(())
    }

    /// Insert into a set-valued field; returns true if the element was new.
    pub fn set_insert(&mut self, field: &str, value: impl Into<Value>) -> Result<bool> {
        let value = value.into();
        let def = self.schema.class(self.state.class)?;
        let i = def.field_index(field)?;
        match &mut self.state.fields[i] {
            Value::Set(s) => Ok(s.insert(value)),
            Value::Null => {
                let mut s = ode_model::SetValue::new();
                s.insert(value);
                let v = Value::Set(s);
                self.schema.check_assign(self.state.class, field, &v)?;
                self.state.fields[i] = v;
                Ok(true)
            }
            other => Err(
                ModelError::Type(format!("field `{field}` is not a set (found {other})")).into(),
            ),
        }
    }

    /// Remove from a set-valued field; returns true if it was present.
    pub fn set_remove(&mut self, field: &str, value: &Value) -> Result<bool> {
        let def = self.schema.class(self.state.class)?;
        let i = def.field_index(field)?;
        match &mut self.state.fields[i] {
            Value::Set(s) => Ok(s.remove(value)),
            Value::Null => Ok(false),
            other => Err(
                ModelError::Type(format!("field `{field}` is not a set (found {other})")).into(),
            ),
        }
    }

    /// The object's dynamic class.
    pub fn class(&self) -> ClassId {
        self.state.class
    }

    /// Schema + in-progress state, for expression evaluation against the
    /// object mid-update (used by `update … set` statements).
    pub fn parts(&self) -> (&ode_model::Schema, &ObjState) {
        (self.schema, self.state)
    }
}

/// Why a transaction rolled back, for the telemetry taxonomy: constraint
/// rejections and optimistic-validation conflicts are tracked apart from
/// explicit/other aborts.
#[derive(Clone, Copy)]
enum AbortCause {
    Constraint,
    Conflict,
    Other,
}

/// An Ode transaction. Obtain with [`Database::begin`] or
/// [`Database::transaction`]; finish with [`Transaction::commit`] or
/// [`Transaction::abort`] (dropping an unfinished transaction aborts it).
pub struct Transaction<'db> {
    pub(crate) db: &'db Database,
    /// Publish epoch when this transaction began. Reads observed at later
    /// epochs record their own; validation compares each against the
    /// commit table (DESIGN.md §13).
    pub(crate) begin_epoch: u64,
    /// Object → publish epoch at *first* read of its committed image.
    /// Interior mutability: reads take `&self` but must record themselves.
    read_set: parking_lot::Mutex<HashMap<Oid, u64>>,
    /// Heap → scan entry at first extent scan (phantom protection; ranged
    /// entries narrow commit validation to the proven key intervals).
    scan_set: parking_lot::Mutex<HashMap<u32, ScanEntry>>,
    /// Statement-scoped hint: predicate ranges proven for the scan the
    /// query layer is about to run. Consulted by [`note_extent_scan`];
    /// interior mutability because scans take `&self`.
    ///
    /// [`note_extent_scan`]: Transaction::note_extent_scan
    scan_ranges: parking_lot::Mutex<Option<Vec<FieldRange>>>,
    /// Ranged-write notes from `update`/`delete` statements, verified
    /// against the final write-set at commit (see [`WriteNote`]).
    ranged_writes: Vec<WriteNote>,
    pub(crate) writes: HashMap<Oid, TxnObj>,
    pub(crate) write_order: Vec<Oid>,
    pub(crate) deleted: HashMap<Oid, DeletedObj>,
    pending_activations: Vec<Activation>,
    pending_deactivations: Vec<u64>,
    /// Pending-event ids this transaction acknowledges at commit (set by
    /// the scheduler's dispatch: the action's own commit batch removes the
    /// event from the durable pending record — exactly-once across
    /// crashes).
    ack_events: Vec<u64>,
    pub(crate) reserved: Vec<(u32, RecordId)>,
    aborted: bool,
    committed: bool,
    depth: usize,
    /// Telemetry serial pairing this transaction's trace spans.
    serial: u64,
    /// Flight-recorder span covering the transaction's whole lifetime
    /// (recorded on drop). While this guard lives, child spans (execute,
    /// commit, trigger) parent under it.
    flight_span: SpanGuard,
    /// Skip the eager per-update constraint check; commit still checks
    /// every written object. Used by bulk loads (import) whose
    /// intermediate states are transiently inconsistent.
    defer_constraints: bool,
}

impl<'db> Transaction<'db> {
    pub(crate) fn new(db: &'db Database, depth: usize) -> Transaction<'db> {
        let serial = db
            .next_txn_serial
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        db.tel.txn.begun.inc();
        db.tel.txn.write_txns.inc();
        let flight_span = db.flight.span(SpanStage::Txn, format!("txn#{serial}"));
        // No gate: writers run concurrently, validating at commit. The
        // registration pins this begin epoch for stamp pruning.
        let begin_epoch = db.register_txn();
        let tx = Transaction {
            db,
            begin_epoch,
            read_set: parking_lot::Mutex::new(HashMap::new()),
            scan_set: parking_lot::Mutex::new(HashMap::new()),
            scan_ranges: parking_lot::Mutex::new(None),
            ranged_writes: Vec::new(),
            writes: HashMap::new(),
            write_order: Vec::new(),
            deleted: HashMap::new(),
            pending_activations: Vec::new(),
            pending_deactivations: Vec::new(),
            ack_events: Vec::new(),
            reserved: Vec::new(),
            aborted: false,
            committed: false,
            depth,
            serial,
            flight_span,
            defer_constraints: false,
        };
        tx.db
            .trace_event(TraceScope::Transaction, TracePhase::Begin, serial, || {
                format!("begin depth={depth}")
            });
        tx
    }

    /// Defer constraint checking to commit time for the rest of this
    /// transaction (§5's checks still run — once, over final states —
    /// before anything becomes durable). For bulk loads and migrations
    /// whose intermediate states are transiently inconsistent.
    pub fn defer_constraints(&mut self) {
        self.defer_constraints = true;
    }

    pub(crate) fn ensure_live(&self) -> Result<()> {
        if self.aborted {
            Err(OdeError::TransactionAborted)
        } else {
            Ok(())
        }
    }

    pub(crate) fn mark_aborted(&mut self) {
        self.mark_aborted_cause(AbortCause::Other);
    }

    /// Abort because a constraint rejected the transaction's state (the
    /// rollback cause the paper's §5 semantics single out).
    pub(crate) fn mark_aborted_constraint(&mut self) {
        self.mark_aborted_cause(AbortCause::Constraint);
    }

    /// Abort because optimistic commit validation lost the race to a
    /// concurrent writer (DESIGN.md §13). Shows up under `txn.conflicts`
    /// (incremented at the validation site), not `aborted_other`: a
    /// conflict abort is transient by contract and usually retried away
    /// by [`Database::transaction`].
    pub(crate) fn mark_aborted_conflict(&mut self) {
        self.mark_aborted_cause(AbortCause::Conflict);
    }

    fn mark_aborted_cause(&mut self, cause: AbortCause) {
        if !self.aborted {
            self.aborted = true;
            let detail = match cause {
                AbortCause::Constraint => "abort:constraint",
                AbortCause::Conflict => "abort:conflict",
                AbortCause::Other => "abort",
            };
            self.flight_span.set_detail(detail);
            self.release_reservations();
            let tel = &self.db.tel.txn;
            match cause {
                AbortCause::Constraint => tel.aborted_constraint.inc(),
                // Already counted in `txn.conflicts` at the validation
                // site (`claim_commit`); a conflict abort is transient
                // by contract and stays out of the abort taxonomy.
                AbortCause::Conflict => {}
                AbortCause::Other => tel.aborted_other.inc(),
            }
            let serial = self.serial;
            self.db
                .trace_event(TraceScope::Transaction, TracePhase::End, serial, || {
                    detail.to_string()
                });
        }
    }

    fn release_reservations(&mut self) {
        for (heap, rid) in self.reserved.drain(..) {
            // A failed release leaks the reserved slot until the next
            // reopen reclaims it — survivable, but it must be visible.
            if self.db.store.release(heap, rid).is_err() {
                self.db.tel.txn.release_errors.inc();
            }
        }
    }

    // ------------------------------------------------------------ reads

    /// Load the committed image of an object (ignoring the write-set).
    ///
    /// Records the read in this transaction's read-set at the epoch
    /// *observed before* the store read — if a concurrent commit publishes
    /// between the epoch capture and the read, the stamp is conservative
    /// (older), which can only produce a false conflict, never a missed
    /// one. The store reads themselves run under a shared apply-gate hold
    /// so a versioned object's anchor and current-version records are
    /// never torn across a concurrent batch apply.
    pub(crate) fn load_committed(&self, oid: Oid) -> Result<(ObjState, Option<VersionTable>)> {
        let observed = self.db.commit_epoch();
        self.read_set.lock().entry(oid).or_insert(observed);
        let _apply = self.db.apply_gate.read();
        let bytes = self
            .db
            .store
            .read(oid.cluster, oid.rid)
            .map_err(|_| OdeError::NoSuchObject(oid.to_string()))?;
        match decode_record(&bytes)? {
            ObjRecord::Plain(state) => Ok((state, None)),
            ObjRecord::Anchor(table) => {
                self.db.tel.versions.generic_derefs.inc();
                let vrid = table.current_rid()?;
                match decode_record(&self.db.store.read(oid.cluster, vrid)?)? {
                    ObjRecord::VersionRec { state, .. } => Ok((state, Some(table))),
                    _ => Err(OdeError::Version(format!(
                        "anchor {oid} points at a non-version record"
                    ))),
                }
            }
            ObjRecord::VersionRec { .. } => Err(OdeError::NoSuchObject(format!(
                "{oid} is a version record, not an object"
            ))),
        }
    }

    /// Record an extent scan over `heap` at the current publish epoch.
    /// Phantom protection: commit-time validation compares this against
    /// the heap's write stamps.
    ///
    /// When the statement-scoped range hint is set (the query layer
    /// proved the predicate pins key intervals), the entry records those
    /// ranges so validation can ignore provably disjoint writers. Merging
    /// is monotone toward the conservative pole: the epoch only ever gets
    /// *older* (first observation wins) and the ranges only ever get
    /// *wider* — two different range sets, or ranged plus whole-heap,
    /// collapse to whole-heap.
    pub(crate) fn note_extent_scan(&self, heap: u32) {
        let observed = self.db.commit_epoch();
        let hint = self.scan_ranges.lock().clone();
        let hint = hint.filter(|r| !r.is_empty());
        let mut set = self.scan_set.lock();
        match set.entry(heap) {
            std::collections::hash_map::Entry::Vacant(v) => {
                if hint.is_some() {
                    self.db.tel.txn.ranged_scans.inc();
                }
                v.insert(ScanEntry {
                    epoch: observed,
                    ranges: hint,
                });
            }
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let e = o.get_mut();
                if e.ranges.is_some() && e.ranges != hint {
                    // Widen; the first-observed (older) epoch stays, which
                    // can only produce a false conflict, never a missed one.
                    e.ranges = None;
                }
            }
        }
    }

    /// Force whole-heap scan entries for `heaps`, widening any ranged
    /// entry already present, and drop the range hint. Called when a
    /// statement errors mid-evaluation: with short-circuit `&&`, whether
    /// the error fires can depend on rows *outside* the extracted ranges,
    /// so only a whole-heap entry is sound.
    pub(crate) fn note_scan_unbounded(&self, heaps: &[u32]) {
        *self.scan_ranges.lock() = None;
        let observed = self.db.commit_epoch();
        let mut set = self.scan_set.lock();
        for &heap in heaps {
            set.entry(heap)
                .and_modify(|e| e.ranges = None)
                .or_insert(ScanEntry {
                    epoch: observed,
                    ranges: None,
                });
        }
    }

    /// Install the statement-scoped range hint for the scans the query
    /// layer is about to run. The caller clears it (or widens via
    /// [`note_scan_unbounded`]) when the enumeration ends.
    ///
    /// [`note_scan_unbounded`]: Transaction::note_scan_unbounded
    pub(crate) fn set_scan_ranges(&self, ranges: Vec<FieldRange>) {
        *self.scan_ranges.lock() = Some(ranges);
    }

    /// Drop the statement-scoped range hint.
    pub(crate) fn clear_scan_ranges(&self) {
        *self.scan_ranges.lock() = None;
    }

    /// Note that a ranged DML statement wrote `oids` with predicate-proven
    /// pre-state `ranges`. Verified against the final write-set at commit.
    pub(crate) fn note_ranged_write(&mut self, oids: Vec<Oid>, ranges: Vec<FieldRange>) {
        if !ranges.is_empty() {
            self.ranged_writes.push(WriteNote { oids, ranges });
        }
    }

    /// Test-only: the oids in this transaction's read-set (the footprint
    /// soundness oracle compares them against the analyzer's prediction).
    #[doc(hidden)]
    pub fn observed_read_oids(&self) -> Vec<Oid> {
        self.read_set.lock().keys().copied().collect()
    }

    /// Test-only: `(heap, ranged)` per scan-set entry.
    #[doc(hidden)]
    pub fn observed_scans(&self) -> Vec<(u32, bool)> {
        self.scan_set
            .lock()
            .iter()
            .map(|(&h, e)| (h, e.ranges.is_some()))
            .collect()
    }

    /// Does the object exist (in this transaction's view)?
    pub fn exists(&self, oid: Oid) -> bool {
        if self.deleted.contains_key(&oid) {
            return false;
        }
        if self.writes.contains_key(&oid) {
            return true;
        }
        self.load_committed(oid).is_ok()
    }

    /// Read an object's current state (write-set overlay included) —
    /// dereferencing a *generic* reference (§4).
    pub fn read(&self, oid: Oid) -> Result<ObjState> {
        self.ensure_live()?;
        if self.deleted.contains_key(&oid) {
            return Err(OdeError::NoSuchObject(format!("{oid} (deleted)")));
        }
        if let Some(obj) = self.writes.get(&oid) {
            return Ok(obj.state.clone());
        }
        Ok(self.load_committed(oid)?.0)
    }

    /// Read one field.
    pub fn get(&self, oid: Oid, field: &str) -> Result<Value> {
        let state = self.read(oid)?;
        let inner = self.db.inner.read();
        let def = inner.schema.class(state.class)?;
        let i = def.field_index(field)?;
        Ok(state.fields[i].clone())
    }

    /// The object's dynamic (most-derived) class.
    pub fn class_of(&self, oid: Oid) -> Result<ClassId> {
        Ok(self.read(oid)?.class)
    }

    /// The paper's `is` test (§3.1.1): is the object an instance of (a
    /// subclass of) `class_name`?
    pub fn instance_of(&self, oid: Oid, class_name: &str) -> Result<bool> {
        let class = self.read(oid)?.class;
        let inner = self.db.inner.read();
        let target = inner.schema.id_of(class_name)?;
        Ok(inner.schema.is_subclass(class, target))
    }

    /// Call a registered method on the object.
    pub fn call(&self, oid: Oid, method: &str, args: &[Value]) -> Result<Value> {
        let state = self.read(oid)?;
        let inner = self.db.inner.read();
        let m = inner.schema.lookup_method(state.class, method)?;
        Ok(m(&state, args)?)
    }

    // ----------------------------------------------------------- writes

    /// Create a persistent object — the paper's `pnew` (§2.4). The cluster
    /// for the class must already exist (§2.5). Field initializers are
    /// applied over the class defaults, then constraints are checked
    /// (constructor semantics).
    pub fn pnew(&mut self, class_name: &str, inits: &[(&str, Value)]) -> Result<Oid> {
        self.ensure_live()?;
        let (state, heap) = {
            let inner = self.db.inner.read();
            let class = inner.schema.id_of(class_name)?;
            let Some(&heap) = inner.clusters.get(&class) else {
                return Err(OdeError::NoSuchCluster(class_name.to_string()));
            };
            let mut state = inner.schema.new_object(class)?;
            for (field, value) in inits {
                let i = inner.schema.check_assign(class, field, value)?;
                state.fields[i] = value.clone();
            }
            (state, heap)
        };
        let size_hint = encode_plain(&state).len();
        let rid = self.db.store.reserve(heap, size_hint)?;
        self.reserved.push((heap, rid));
        let oid = Oid { cluster: heap, rid };
        self.writes.insert(
            oid,
            TxnObj {
                new: true,
                dirty: true,
                state,
                pre_state: None,
                vt: None,
                vt_dirty: false,
            },
        );
        self.write_order.push(oid);
        if !self.defer_constraints {
            if let Err(e) = self.check_object_constraints(oid) {
                self.mark_aborted_constraint();
                return Err(e);
            }
        }
        Ok(oid)
    }

    /// Pull an object into the write-set.
    pub(crate) fn load_for_write(&mut self, oid: Oid) -> Result<()> {
        self.ensure_live()?;
        if self.deleted.contains_key(&oid) {
            return Err(OdeError::NoSuchObject(format!("{oid} (deleted)")));
        }
        if self.writes.contains_key(&oid) {
            return Ok(());
        }
        let (state, vt) = self.load_committed(oid)?;
        self.writes.insert(
            oid,
            TxnObj {
                new: false,
                dirty: false,
                pre_state: Some(state.clone()),
                state,
                vt: vt.as_ref().map(TxnVersionTable::from_committed),
                vt_dirty: false,
            },
        );
        self.write_order.push(oid);
        Ok(())
    }

    /// Update an object through a closure receiving a type-checked
    /// [`ObjWriter`]. The closure's changes are applied atomically (an
    /// error inside leaves the object untouched), then the object's
    /// constraints are checked — a violation **aborts the transaction**
    /// (§5).
    pub fn update(
        &mut self,
        oid: Oid,
        f: impl FnOnce(&mut ObjWriter<'_>) -> Result<()>,
    ) -> Result<()> {
        self.load_for_write(oid)?;
        {
            let inner = self.db.inner.read();
            let obj = self.writes.get_mut(&oid).expect("just loaded");
            let mut work = obj.state.clone();
            {
                let mut w = ObjWriter {
                    schema: &inner.schema,
                    state: &mut work,
                };
                f(&mut w)?;
            }
            obj.state = work;
            obj.dirty = true;
        }
        if !self.defer_constraints {
            if let Err(e) = self.check_object_constraints(oid) {
                self.mark_aborted_constraint();
                return Err(e);
            }
        }
        Ok(())
    }

    /// Assign one field.
    pub fn set(&mut self, oid: Oid, field: &str, value: impl Into<Value>) -> Result<()> {
        let value = value.into();
        self.update(oid, |w| w.set(field, value))
    }

    /// Insert into a set-valued field (§2.6).
    pub fn set_insert(&mut self, oid: Oid, field: &str, value: impl Into<Value>) -> Result<bool> {
        let value = value.into();
        let mut added = false;
        self.update(oid, |w| {
            added = w.set_insert(field, value)?;
            Ok(())
        })?;
        Ok(added)
    }

    /// Remove from a set-valued field.
    pub fn set_remove(&mut self, oid: Oid, field: &str, value: &Value) -> Result<bool> {
        let mut removed = false;
        self.update(oid, |w| {
            removed = w.set_remove(field, value)?;
            Ok(())
        })?;
        Ok(removed)
    }

    /// Delete a persistent object — the paper's `pdelete` (§2.4). Deletes
    /// every version. References held elsewhere dangle (dereferencing them
    /// reports "no such object"), as in the paper's pointer model.
    pub fn pdelete(&mut self, oid: Oid) -> Result<()> {
        self.ensure_live()?;
        if self.deleted.contains_key(&oid) {
            return Err(OdeError::NoSuchObject(format!("{oid} (already deleted)")));
        }
        if let Some(obj) = self.writes.remove(&oid) {
            self.write_order.retain(|&o| o != oid);
            if obj.new {
                // Never existed outside this transaction: release the
                // reserved anchor and forget it entirely.
                self.reserved
                    .retain(|&(h, r)| !(h == oid.cluster && r == oid.rid));
                if self.db.store.release(oid.cluster, oid.rid).is_err() {
                    self.db.tel.txn.release_errors.inc();
                }
                self.pending_activations.retain(|a| a.oid != oid);
                return Ok(());
            }
            let version_rids = obj
                .vt
                .iter()
                .flat_map(|t| t.entries.iter().filter_map(|e| e.rid))
                .collect();
            self.deleted.insert(
                oid,
                DeletedObj {
                    pre_state: obj.pre_state.expect("committed object has pre-state"),
                    version_rids,
                },
            );
        } else {
            let (state, vt) = self.load_committed(oid)?;
            let version_rids = vt
                .iter()
                .flat_map(|t| t.entries.iter().map(|e| e.rid))
                .collect();
            self.deleted.insert(
                oid,
                DeletedObj {
                    pre_state: state,
                    version_rids,
                },
            );
        }
        self.pending_activations.retain(|a| a.oid != oid);
        Ok(())
    }

    // ------------------------------------------------------ constraints

    /// Check every constraint applying to the object's class (§5).
    pub(crate) fn check_object_constraints(&self, oid: Oid) -> Result<()> {
        let state = match self.writes.get(&oid) {
            Some(o) => o.state.clone(),
            None => self.read(oid)?,
        };
        let inner = self.db.inner.read();
        for (class_def, c) in inner.schema.all_constraints(state.class)? {
            let ctx = EvalCtx::new(&inner.schema)
                .with_this(&state)
                .with_resolver(self);
            let ok = ctx.eval_bool(&c.expr)?;
            if !ok {
                return Err(OdeError::ConstraintViolation {
                    class: class_def.name.clone(),
                    constraint: c.name.clone(),
                    src: c.src.clone(),
                    object: oid.to_string(),
                });
            }
        }
        Ok(())
    }

    // --------------------------------------------------------- triggers

    /// Activate a trigger on an object — the paper's
    /// `trigger-id = object->T(args)` (§6). The returned [`TriggerId`] can
    /// deactivate it later. The activation becomes durable with this
    /// transaction's commit.
    pub fn activate_trigger(
        &mut self,
        oid: Oid,
        trigger: &str,
        args: Vec<Value>,
    ) -> Result<TriggerId> {
        self.ensure_live()?;
        let class = self.class_of(oid)?;
        {
            let inner = self.db.inner.read();
            let (_, decl) = inner.schema.find_trigger(class, trigger)?;
            if decl.params.len() != args.len() {
                return Err(OdeError::Trigger(format!(
                    "trigger `{trigger}` takes {} argument(s), got {}",
                    decl.params.len(),
                    args.len()
                )));
            }
        }
        let id = self.db.alloc_activation_id();
        self.db.tel.triggers.activations.inc();
        self.pending_activations.push(Activation {
            id,
            oid,
            trigger: trigger.to_string(),
            args,
        });
        Ok(TriggerId(id))
    }

    /// Deactivate a trigger before it fires (§6's explicit deactivation).
    pub fn deactivate_trigger(&mut self, id: TriggerId) -> Result<()> {
        self.ensure_live()?;
        if let Some(i) = self.pending_activations.iter().position(|a| a.id == id.0) {
            self.pending_activations.remove(i);
            return Ok(());
        }
        let inner = self.db.inner.read();
        if !inner.activations.contains_key(&id.0) {
            return Err(OdeError::Trigger(format!("{id} is not active")));
        }
        drop(inner);
        if !self.pending_deactivations.contains(&id.0) {
            self.pending_deactivations.push(id.0);
        }
        Ok(())
    }

    /// Trigger activations currently attached to an object (committed view
    /// plus this transaction's pending ones).
    pub fn active_triggers(&self, oid: Oid) -> Vec<TriggerId> {
        let inner = self.db.inner.read();
        let mut ids: Vec<u64> = inner
            .activations_by_oid
            .get(&oid)
            .cloned()
            .unwrap_or_default();
        ids.retain(|id| !self.pending_deactivations.contains(id));
        ids.extend(
            self.pending_activations
                .iter()
                .filter(|a| a.oid == oid)
                .map(|a| a.id),
        );
        ids.sort_unstable();
        ids.into_iter().map(TriggerId).collect()
    }

    // ----------------------------------------------------------- commit

    /// Commit. Inline mode: returns what fired (weak-coupled trigger
    /// actions have already run by the time this returns). Decoupled mode
    /// (a firing sink is installed): fired triggers are durably enqueued,
    /// reported in [`CommitInfo::enqueued`], and their actions run
    /// asynchronously — commit latency excludes action time.
    pub fn commit(mut self) -> Result<CommitInfo> {
        let started = std::time::Instant::now();
        let outcome = match self.do_commit() {
            Ok(o) => o,
            Err(e) => {
                if matches!(e, OdeError::ConstraintViolation { .. }) {
                    self.mark_aborted_constraint();
                } else if matches!(e, OdeError::WriteConflict { .. }) {
                    self.mark_aborted_conflict();
                } else {
                    self.mark_aborted();
                }
                return Err(e);
            }
        };
        let db = self.db;
        let depth = self.depth;
        let serial = self.serial;
        db.tel.txn.committed.inc();
        db.tel
            .triggers
            .deferred_actions
            .add((outcome.firings.len() + outcome.events.len()) as u64);
        self.flight_span.set_detail(format!("txn#{serial} commit"));
        drop(self); // deregister before running actions (they begin anew)
        db.trace_event(TraceScope::Transaction, TracePhase::End, serial, || {
            "commit".to_string()
        });
        if let Some(note) = &outcome.note {
            db.notify_commit(note);
        }
        let mut info = CommitInfo::default();
        if !outcome.events.is_empty() {
            for e in &outcome.events {
                info.enqueued.push(FiredTrigger {
                    id: TriggerId(e.activation),
                    oid: e.oid,
                    trigger: e.trigger.clone(),
                });
            }
            db.tel.sched.enqueued.add(outcome.events.len() as u64);
            if let Some(sink) = db.firing_sink() {
                sink(outcome.events);
            }
        }
        run_firings(db, outcome.firings, depth, &mut info);
        db.tel
            .txn
            .commit_latency
            .record_ns(started.elapsed().as_nanos() as u64);
        Ok(info)
    }

    /// Abort: discard the write-set and release reservations.
    pub fn abort(mut self) {
        self.mark_aborted();
    }

    /// Re-check every ranged-write note against the final write-set and
    /// return, per heap, the ranges this commit can present to the
    /// validator. A heap qualifies only when **every** batch op on it is
    /// an anchor of a note-covered, note-verified object:
    ///
    /// * written (not new, not versioned) with its committed pre-state
    ///   inside each noted range and every noted field *unchanged* by the
    ///   transaction, or
    /// * deleted (no version records) with its pre-state inside each
    ///   noted range.
    ///
    /// Anything else — a `pnew`, a version record, a note range on a
    /// changed field, an uncovered op — silently demotes the heap to the
    /// classic whole-heap stamp. Verification failure can therefore never
    /// weaken validation, only decline to narrow it.
    fn verify_ranged_writes(
        &self,
        write_oids: &[Oid],
        ops: &[StoreOp],
    ) -> HashMap<u32, Vec<crate::database::RangedWrite>> {
        use std::collections::BTreeSet;
        if self.ranged_writes.is_empty() {
            return HashMap::new();
        }
        let inner = self.db.inner.read();
        let mut per_heap: HashMap<u32, Vec<crate::database::RangedWrite>> = HashMap::new();
        let mut failed_heaps: HashSet<u32> = HashSet::new();
        let mut covered: HashSet<Oid> = HashSet::new();
        for note in &self.ranged_writes {
            let mut assigned: BTreeSet<String> = BTreeSet::new();
            let mut heaps: HashSet<u32> = HashSet::new();
            let mut ok = true;
            for &oid in &note.oids {
                heaps.insert(oid.cluster);
                covered.insert(oid);
                let verified = (|| {
                    if let Some(obj) = self.writes.get(&oid) {
                        if obj.new || obj.vt.is_some() || obj.vt_dirty {
                            return false;
                        }
                        let Some(pre) = obj.pre_state.as_ref() else {
                            return false;
                        };
                        if obj.state.class != pre.class {
                            return false;
                        }
                        let Ok(def) = inner.schema.class(pre.class) else {
                            return false;
                        };
                        for fr in &note.ranges {
                            let Ok(slot) = def.field_index(&fr.field) else {
                                return false;
                            };
                            if !fr.range.contains(&pre.fields[slot])
                                || obj.state.fields[slot] != pre.fields[slot]
                            {
                                return false;
                            }
                        }
                        for (i, f) in def.layout.iter().enumerate() {
                            if pre.fields[i] != obj.state.fields[i] {
                                assigned.insert(f.name.clone());
                            }
                        }
                        true
                    } else if let Some(dead) = self.deleted.get(&oid) {
                        if !dead.version_rids.is_empty() {
                            return false;
                        }
                        let Ok(def) = inner.schema.class(dead.pre_state.class) else {
                            return false;
                        };
                        note.ranges.iter().all(|fr| {
                            def.field_index(&fr.field)
                                .is_ok_and(|slot| fr.range.contains(&dead.pre_state.fields[slot]))
                        })
                    } else {
                        false
                    }
                })();
                if !verified {
                    ok = false;
                    break;
                }
            }
            if ok {
                let assigned: Vec<String> = assigned.into_iter().collect();
                for h in heaps {
                    per_heap
                        .entry(h)
                        .or_default()
                        .push(crate::database::RangedWrite {
                            ranges: note.ranges.clone(),
                            assigned: assigned.clone(),
                        });
                }
            } else {
                failed_heaps.extend(heaps);
            }
        }
        per_heap.retain(|h, _| {
            !failed_heaps.contains(h)
                && write_oids
                    .iter()
                    .filter(|o| o.cluster == *h)
                    .all(|o| covered.contains(o))
                && ops.iter().all(|op| {
                    let (heap, rid) = match op {
                        StoreOp::Put { heap, rid, .. } | StoreOp::Delete { heap, rid } => {
                            (*heap, *rid)
                        }
                    };
                    heap != *h || covered.contains(&Oid { cluster: heap, rid })
                })
        });
        per_heap
    }

    /// Steps 1–4 of the commit pipeline. Returns the firings to run (or,
    /// in decoupled mode, the events durably enqueued in the batch).
    fn do_commit(&mut self) -> Result<CommitOutcome> {
        self.ensure_live()?;

        // 1. Deferred constraint check over every written object.
        for &oid in &self.write_order.clone() {
            if self.deleted.contains_key(&oid) {
                continue;
            }
            self.check_object_constraints(oid)?;
        }

        // 2. Trigger-condition evaluation on touched objects.
        let mut firings = self.evaluate_triggers()?;

        // Which activations stop existing: explicit deactivations, fired
        // once-only ones, and activations on deleted objects.
        let mut kill_committed: Vec<u64> = self.pending_deactivations.clone();
        let mut fired_pending: HashSet<u64> = HashSet::new();
        {
            let inner = self.db.inner.read();
            for f in &firings {
                let (_, decl) = inner
                    .schema
                    .find_trigger(self.read(f.activation.oid)?.class, &f.activation.trigger)?;
                if !decl.perpetual {
                    if inner.activations.contains_key(&f.activation.id) {
                        kill_committed.push(f.activation.id);
                    } else {
                        fired_pending.insert(f.activation.id);
                    }
                }
            }
            for oid in self.deleted.keys() {
                if let Some(ids) = inner.activations_by_oid.get(oid) {
                    kill_committed.extend_from_slice(ids);
                }
            }
        }
        kill_committed.sort_unstable();
        kill_committed.dedup();

        // Decoupled mode: convert the firings into durable pending events.
        // The once-only kill logic above already ran off `firings`, so a
        // once-only activation dies in the very batch that persists its
        // event — a crash between commit and drain can neither lose the
        // firing nor re-arm it.
        let events: Vec<PendingEvent> = if self.db.firing_decoupled() {
            firings
                .drain(..)
                .map(|f| PendingEvent {
                    id: self.db.alloc_event_id(),
                    activation: f.activation.id,
                    oid: f.activation.oid,
                    trigger: f.activation.trigger,
                    args: f.activation.args,
                    depth: self.depth as u64 + 1,
                })
                .collect()
        } else {
            Vec::new()
        };

        // 3. Materialize the batch.
        let collect_writes = self.db.has_commit_observer();
        let mut obs_writes: Vec<(Oid, ode_model::ClassId)> = Vec::new();
        let mut ops: Vec<StoreOp> = Vec::new();
        let mut index_updates: Vec<(Oid, Option<ObjState>, Option<ObjState>)> = Vec::new();
        for &oid in &self.write_order.clone() {
            let obj = self.writes.get(&oid).expect("write order tracks writes");
            let obj = obj.clone();
            self.materialize_object(oid, &obj, &mut ops)?;
            if obj.dirty || obj.new {
                if collect_writes {
                    obs_writes.push((oid, obj.state.class));
                }
                index_updates.push((oid, obj.pre_state.clone(), Some(obj.state.clone())));
            }
        }
        for (&oid, dead) in &self.deleted {
            ops.push(StoreOp::Delete {
                heap: oid.cluster,
                rid: oid.rid,
            });
            for &rid in &dead.version_rids {
                ops.push(StoreOp::Delete {
                    heap: oid.cluster,
                    rid,
                });
            }
            index_updates.push((oid, Some(dead.pre_state.clone()), None));
        }

        // Catalog: persist surviving pending activations; delete killed ones.
        let mut persisted_activations: Vec<(Activation, RecordId)> = Vec::new();
        for a in &self.pending_activations {
            if fired_pending.contains(&a.id) {
                continue; // once-only, fired in its own birth transaction
            }
            let rec = CatalogRecord::Activation {
                id: a.id,
                oid: a.oid,
                trigger: a.trigger.clone(),
                args: a.args.clone(),
            }
            .encode();
            let rid = self.db.store.reserve(CATALOG_HEAP, rec.len())?;
            self.reserved.push((CATALOG_HEAP, rid));
            ops.push(StoreOp::Put {
                heap: CATALOG_HEAP,
                rid,
                data: rec,
            });
            persisted_activations.push((a.clone(), rid));
        }
        {
            let inner = self.db.inner.read();
            for id in &kill_committed {
                if let Some(&rid) = inner.catalog.activation_rids.get(id) {
                    ops.push(StoreOp::Delete {
                        heap: CATALOG_HEAP,
                        rid,
                    });
                }
            }
        }

        // Workload write counters, keyed by destination cluster (applied
        // only after the store commit succeeds).
        let mut per_heap: HashMap<u32, u64> = HashMap::new();
        for op in &ops {
            let heap = match op {
                StoreOp::Put { heap, .. } | StoreOp::Delete { heap, .. } => *heap,
            };
            if heap != CATALOG_HEAP {
                *per_heap.entry(heap).or_default() += 1;
            }
        }

        // 4. Decoupled firing: put one catalog record per event this commit
        // enqueues and delete the records of events this (action)
        // transaction acknowledges — all in this same batch, so the
        // pending set moves atomically with the commit. Per-event records
        // keep a trigger storm unbounded by the max record size. Safe to
        // build outside the publish window: the scheduler owns each
        // pending event exclusively while dispatching it, so no concurrent
        // commit acknowledges the same ids.
        let mut event_rids: Vec<(u64, RecordId)> = Vec::new();
        let mut acked_ids: Vec<u64> = Vec::new();
        if !events.is_empty() || !self.ack_events.is_empty() {
            let inner = self.db.inner.read();
            for id in &self.ack_events {
                if let Some(&rid) = inner.catalog.pending_rids.get(id) {
                    ops.push(StoreOp::Delete {
                        heap: CATALOG_HEAP,
                        rid,
                    });
                    acked_ids.push(*id);
                }
            }
            drop(inner);
            for e in &events {
                let rec = CatalogRecord::Pending(e.clone()).encode();
                let rid = self.db.store.reserve(CATALOG_HEAP, rec.len())?;
                self.reserved.push((CATALOG_HEAP, rid));
                ops.push(StoreOp::Put {
                    heap: CATALOG_HEAP,
                    rid,
                    data: rec,
                });
                event_rids.push((e.id, rid));
            }
        }

        // Read-only short-circuit: nothing to publish and nothing that can
        // conflict (each read was individually consistent) — claim no
        // epoch, touch no gate, skip validation. This gives a pure-read
        // `Database::transaction` call read-committed semantics; use
        // [`Database::begin_read`] for a full snapshot.
        if ops.is_empty() && kill_committed.is_empty() && firings.is_empty() && events.is_empty() {
            self.committed = true;
            let mut span = self.db.flight.span(SpanStage::Commit, "read-only");
            span.set_detail("read-only: no epoch claimed");
            return Ok(CommitOutcome {
                firings,
                events,
                note: None,
            });
        }

        // 5. The optimistic commit pipeline (DESIGN.md §13): validate +
        // claim an epoch + WAL-append in the short commit-gate critical
        // section; share the fsync with the cohort outside every lock;
        // then apply in epoch order under the publish window. Holding
        // `apply_gate` exclusively during the apply (lock order:
        // apply_gate before inner) keeps the whole commit invisible to
        // snapshot readers until every update has landed, so a
        // ReadTransaction can never observe a torn commit (DESIGN.md §8).
        let mut commit_span = self
            .db
            .flight
            .span(SpanStage::Commit, format!("{} ops", ops.len()));
        let mut write_oids: Vec<Oid> = self
            .write_order
            .iter()
            .filter(|oid| {
                self.writes
                    .get(oid)
                    .is_some_and(|o| o.dirty || o.new || o.vt_dirty)
            })
            .copied()
            .collect();
        write_oids.extend(self.deleted.keys().copied());
        let heap_ranges = self.verify_ranged_writes(&write_oids, &ops);
        let (epoch, ticket) = {
            let read_set = self.read_set.lock();
            let scan_set = self.scan_set.lock();
            let summary = WriteSummary {
                begin_epoch: self.begin_epoch,
                read_set: &read_set,
                scan_set: &scan_set,
                write_oids: &write_oids,
                kills: &kill_committed,
                heap_ranges: &heap_ranges,
            };
            self.db.claim_commit(&summary, ops)?
        };

        // Phase 2: durability, outside every lock — concurrent committers
        // share one fsync (group commit). A failure here is *in-doubt*:
        // the batch is in the WAL and may survive a crash even though this
        // process cannot confirm it. Abandon the ticket, publish the
        // claimed epoch as a no-op so the sequence cannot stall, and
        // surface the storage error (transient → wire `Unavailable`).
        if let Err(e) = self.db.store.commit_durable(&ticket) {
            self.db.store.commit_abandon(ticket);
            self.db.wait_turn(epoch);
            self.db.publish_epoch(epoch);
            return Err(e.into());
        }

        // Phase 3: apply in epoch order under the publish window. The
        // validation/turn wait is surfaced in the commit span so the
        // slow-query log attributes contended commits correctly.
        let turn_started = std::time::Instant::now();
        self.db.wait_turn(epoch);
        let publish = self.db.apply_gate.write();
        // Stores whose apply is the whole (idempotent) commit absorb
        // transient failures (ENOSPC, a flaky disk) through a bounded
        // retry, exactly like the pre-group-commit pipeline did. FileStore
        // opts out: its batch is already durable, so recovery replays it.
        let max_retries = if self.db.store.commit_apply_retryable() {
            self.db.config.commit_retries
        } else {
            0
        };
        let mut ticket = Some(ticket);
        let mut attempt = 0usize;
        loop {
            // Clone only while a retry remains; the last attempt moves.
            let t = if attempt < max_retries {
                ticket
                    .as_ref()
                    .expect("ticket kept while retries remain")
                    .clone()
            } else {
                ticket
                    .take()
                    .expect("ticket moved only on the final attempt")
            };
            match self.db.store.commit_apply(t) {
                Ok(()) => break,
                Err(e) if e.is_transient() && attempt < max_retries => {
                    attempt += 1;
                    self.db.tel.txn.commit_retries.inc();
                }
                Err(e) => {
                    // Durable but not applied in this process: recovery
                    // replays it. Publish so the epoch sequence moves on;
                    // surface the failure as in-doubt.
                    self.db.publish_epoch(epoch);
                    drop(publish);
                    return Err(e.into());
                }
            }
        }
        self.committed = true;

        let mut inner = self.db.inner.write();
        for (oid, old, new) in index_updates {
            let keys: Vec<(ClassId, String)> = inner.indexes.keys().cloned().collect();
            for key in keys {
                let (ixclass, field) = &key;
                let class = old
                    .as_ref()
                    .or(new.as_ref())
                    .map(|s| s.class)
                    .expect("one side present");
                if !inner.schema.is_subclass(class, *ixclass) {
                    continue;
                }
                let slot = inner.schema.class(class)?.field_index(field)?;
                let old_key = old.as_ref().map(|s| s.fields[slot].clone());
                let new_key = new.as_ref().map(|s| s.fields[slot].clone());
                if old_key == new_key {
                    continue;
                }
                let ix = inner.indexes.get_mut(&key).expect("key from keys()");
                if let Some(k) = old_key {
                    if !k.is_null() {
                        ix.remove(&k, oid);
                    }
                }
                if let Some(k) = new_key {
                    if !k.is_null() {
                        ix.insert(k, oid);
                    }
                }
            }
        }
        for (a, rid) in persisted_activations {
            inner.catalog.activation_rids.insert(a.id, rid);
            inner
                .activations_by_oid
                .entry(a.oid)
                .or_default()
                .push(a.id);
            inner.activations.insert(a.id, a);
        }
        for id in kill_committed {
            inner.catalog.activation_rids.remove(&id);
            if let Some(a) = inner.activations.remove(&id) {
                if let Some(v) = inner.activations_by_oid.get_mut(&a.oid) {
                    v.retain(|&x| x != id);
                }
            }
        }
        for (heap, n) in per_heap {
            if let Some(&class) = inner.class_of_cluster.get(&heap) {
                if let Ok(def) = inner.schema.class(class) {
                    let name = def.name.clone();
                    self.db.note_cluster_writes(&name, n);
                }
            }
        }
        for id in &acked_ids {
            inner.catalog.pending_rids.remove(id);
            inner.pending.remove(id);
        }
        for ((id, rid), e) in event_rids.iter().zip(events.iter()) {
            inner.catalog.pending_rids.insert(*id, *rid);
            inner.pending.insert(e.id, e.clone());
        }
        drop(inner);
        let note = collect_writes.then_some(CommitNote {
            epoch,
            writes: obs_writes,
        });
        // Publish while still holding the apply gate: the epoch advance is
        // ordered inside the publish window, so a snapshot's epoch always
        // names exactly the commits it can see.
        self.db.publish_epoch(epoch);
        drop(publish);
        commit_span.set_detail(format!(
            "published epoch {epoch} (turn wait {}us)",
            turn_started.elapsed().as_micros()
        ));

        Ok(CommitOutcome {
            firings,
            events,
            note,
        })
    }

    /// Turn one write-set entry into store operations.
    fn materialize_object(&mut self, oid: Oid, obj: &TxnObj, ops: &mut Vec<StoreOp>) -> Result<()> {
        match &obj.vt {
            None => {
                if obj.dirty || obj.new {
                    ops.push(StoreOp::Put {
                        heap: oid.cluster,
                        rid: oid.rid,
                        data: encode_plain(&obj.state),
                    });
                }
            }
            Some(vt) => {
                let mut entries = Vec::new();
                let mut anchor_dirty = obj.vt_dirty;
                for e in &vt.entries {
                    if e.deleted {
                        if let Some(rid) = e.rid {
                            ops.push(StoreOp::Delete {
                                heap: oid.cluster,
                                rid,
                            });
                        }
                        anchor_dirty = true;
                        continue;
                    }
                    let state_to_write: Option<&ObjState> = if e.no == vt.current {
                        if obj.dirty || e.rid.is_none() {
                            Some(&obj.state)
                        } else {
                            None
                        }
                    } else if e.frozen.is_some() {
                        e.frozen.as_ref()
                    } else {
                        None
                    };
                    let rid = match e.rid {
                        Some(rid) => rid,
                        None => {
                            let data_len = state_to_write
                                .map(|s| encode_vrec(e.no, s).len())
                                .unwrap_or(64);
                            let rid = self.db.store.reserve(oid.cluster, data_len)?;
                            self.reserved.push((oid.cluster, rid));
                            anchor_dirty = true;
                            rid
                        }
                    };
                    if let Some(state) = state_to_write {
                        ops.push(StoreOp::Put {
                            heap: oid.cluster,
                            rid,
                            data: encode_vrec(e.no, state),
                        });
                    }
                    entries.push(VersionEntry {
                        no: e.no,
                        rid,
                        parent: e.parent,
                    });
                }
                if anchor_dirty || obj.new {
                    let table = VersionTable {
                        current: vt.current,
                        entries,
                    };
                    ops.push(StoreOp::Put {
                        heap: oid.cluster,
                        rid: oid.rid,
                        data: encode_anchor(&table),
                    });
                }
            }
        }
        Ok(())
    }

    /// Evaluate trigger conditions for every touched object (§6).
    fn evaluate_triggers(&self) -> Result<Vec<Firing>> {
        let inner = self.db.inner.read();
        let mut firings = Vec::new();
        let consider = |act: &Activation, firings: &mut Vec<Firing>| -> Result<()> {
            if self.pending_deactivations.contains(&act.id) {
                return Ok(());
            }
            let Some(obj) = self.writes.get(&act.oid) else {
                return Ok(());
            };
            if !(obj.dirty || obj.new) || self.deleted.contains_key(&act.oid) {
                return Ok(());
            }
            let (_, decl) = inner.schema.find_trigger(obj.state.class, &act.trigger)?;
            let params: HashMap<String, Value> = decl
                .params
                .iter()
                .cloned()
                .zip(act.args.iter().cloned())
                .collect();
            let ctx = EvalCtx::new(&inner.schema)
                .with_this(&obj.state)
                .with_params(&params)
                .with_resolver(self);
            self.db.tel.triggers.condition_evals.inc();
            if ctx.eval_bool(&decl.condition)? {
                firings.push(Firing {
                    activation: act.clone(),
                    decl: decl.clone(),
                });
            }
            Ok(())
        };
        // Only activations whose subject was written can change outcome, so
        // the per-commit cost scales with the write-set, not with the total
        // number of activations in the database (figure F7's cold sweep).
        for oid in &self.write_order {
            if let Some(ids) = inner.activations_by_oid.get(oid) {
                for id in ids {
                    if let Some(act) = inner.activations.get(id) {
                        consider(act, &mut firings)?;
                    }
                }
            }
        }
        for act in &self.pending_activations {
            consider(act, &mut firings)?;
        }
        // Deterministic firing order: by activation id.
        firings.sort_by_key(|f| f.activation.id);
        Ok(firings)
    }

    // -------------------------------------------------------- misc info

    /// Objects written (created or modified) so far.
    pub fn touched(&self) -> Vec<Oid> {
        self.write_order
            .iter()
            .filter(|oid| {
                self.writes
                    .get(oid)
                    .map(|o| o.dirty || o.new)
                    .unwrap_or(false)
            })
            .copied()
            .collect()
    }

    /// The database this transaction runs against.
    pub fn database(&self) -> &'db Database {
        self.db
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if !self.committed && !self.aborted {
            self.mark_aborted();
        }
        // Runs exactly once per transaction (commit consumes self and ends
        // here too): un-pin this begin epoch from the stamp pruner's floor.
        self.db.deregister_txn(self.begin_epoch);
    }
}

impl Resolver for Transaction<'_> {
    fn deref_obj(&self, oid: Oid) -> ode_model::Result<ObjState> {
        self.read(oid).map_err(|e| ModelError::Eval(e.to_string()))
    }

    fn deref_version(&self, vref: VersionRef) -> ode_model::Result<ObjState> {
        self.read_version(vref)
            .map_err(|e| ModelError::Eval(e.to_string()))
    }
}

/// Run fired trigger actions, each in its own transaction (weak coupling),
/// cascading up to the configured depth. Per weak coupling, failures are
/// recorded in `info` rather than propagated: the triggering transaction
/// has already committed.
pub(crate) fn run_firings(
    db: &Database,
    firings: Vec<Firing>,
    depth: usize,
    info: &mut CommitInfo,
) {
    if firings.is_empty() {
        return;
    }
    if depth >= db.config.trigger_cascade_limit {
        for f in firings {
            db.tel.triggers.action_failures.inc();
            db.tel.triggers.cascade_exhausted.inc();
            info.failures.push(TriggerFailure {
                id: TriggerId(f.activation.id),
                oid: f.activation.oid,
                error: OdeError::TriggerCascade {
                    limit: db.config.trigger_cascade_limit,
                },
            });
        }
        return;
    }
    for firing in firings {
        info.fired.push(FiredTrigger {
            id: TriggerId(firing.activation.id),
            oid: firing.activation.oid,
            trigger: firing.activation.trigger.clone(),
        });
        db.tel.triggers.firings.inc();
        db.tel.triggers.max_cascade_depth.observe(depth as u64 + 1);
        let act_id = firing.activation.id;
        db.trace_event(TraceScope::Trigger, TracePhase::Begin, act_id, || {
            firing.activation.trigger.clone()
        });
        let mut trigger_span = db
            .flight
            .span(SpanStage::Trigger, firing.activation.trigger.as_str());
        let result: Result<Vec<Firing>> = (|| {
            let mut tx = Transaction::new(db, depth + 1);
            apply_actions(&mut tx, &firing)?;
            let outcome = tx.do_commit()?;
            let serial = tx.serial;
            drop(tx);
            db.tel.txn.committed.inc();
            db.tel
                .triggers
                .deferred_actions
                .add(outcome.firings.len() as u64);
            db.trace_event(TraceScope::Transaction, TracePhase::End, serial, || {
                "commit".to_string()
            });
            if let Some(note) = &outcome.note {
                db.notify_commit(note);
            }
            Ok(outcome.firings)
        })();
        let ok = result.is_ok();
        match result {
            Ok(next) => run_firings(db, next, depth + 1, info),
            Err(error) => {
                db.tel.triggers.action_failures.inc();
                info.failures.push(TriggerFailure {
                    id: TriggerId(firing.activation.id),
                    oid: firing.activation.oid,
                    error,
                });
            }
        }
        trigger_span.set_detail(format!(
            "{} {}",
            firing.activation.trigger,
            if ok { "ok" } else { "failed" }
        ));
        drop(trigger_span);
        db.trace_event(TraceScope::Trigger, TracePhase::End, act_id, || {
            if ok {
                "ok".to_string()
            } else {
                "failed".to_string()
            }
        });
    }
}

/// Run one durably enqueued event's action in its own write transaction —
/// the decoupled scheduler's dispatch path ([`Database::dispatch_firing`]).
/// The action's commit batch acknowledges the event (removes it from the
/// catalog's pending record), so a crash at any point either replays the
/// whole action or none of it — never half, never twice. Returns the
/// next-round events the action itself enqueued (cascade).
pub(crate) fn run_one_event(db: &Database, event: &PendingEvent) -> Result<Vec<PendingEvent>> {
    db.tel.triggers.firings.inc();
    db.tel.triggers.max_cascade_depth.observe(event.depth);
    db.trace_event(
        TraceScope::Trigger,
        TracePhase::Begin,
        event.activation,
        || event.trigger.clone(),
    );
    let mut trigger_span = db.flight.span(SpanStage::Trigger, event.trigger.as_str());
    let result: Result<Vec<PendingEvent>> = (|| {
        let mut tx = Transaction::new(db, event.depth as usize);
        tx.ack_events.push(event.id);
        let class = tx.read(event.oid)?.class;
        let decl = {
            let inner = db.inner.read();
            inner.schema.find_trigger(class, &event.trigger)?.1.clone()
        };
        let firing = Firing {
            activation: Activation {
                id: event.activation,
                oid: event.oid,
                trigger: event.trigger.clone(),
                args: event.args.clone(),
            },
            decl,
        };
        apply_actions(&mut tx, &firing)?;
        let outcome = tx.do_commit()?;
        let serial = tx.serial;
        drop(tx);
        db.tel.txn.committed.inc();
        db.tel
            .triggers
            .deferred_actions
            .add(outcome.events.len() as u64);
        db.trace_event(TraceScope::Transaction, TracePhase::End, serial, || {
            "commit".to_string()
        });
        if let Some(note) = &outcome.note {
            db.notify_commit(note);
        }
        Ok(outcome.events)
    })();
    let ok = result.is_ok();
    if !ok {
        db.tel.triggers.action_failures.inc();
    }
    trigger_span.set_detail(format!(
        "{} {}",
        event.trigger,
        if ok { "ok" } else { "failed" }
    ));
    drop(trigger_span);
    db.trace_event(
        TraceScope::Trigger,
        TracePhase::End,
        event.activation,
        || {
            if ok {
                "ok".to_string()
            } else {
                "failed".to_string()
            }
        },
    );
    result
}

/// Execute one firing's actions inside `tx`.
fn apply_actions(tx: &mut Transaction<'_>, firing: &Firing) -> Result<()> {
    let oid = firing.activation.oid;
    let params: HashMap<String, Value> = firing
        .decl
        .params
        .iter()
        .cloned()
        .zip(firing.activation.args.iter().cloned())
        .collect();
    for action in &firing.decl.actions {
        match action {
            TriggerAction::Assign { field, expr, .. } => {
                let state = tx.read(oid)?;
                let value = {
                    let inner = tx.db.inner.read();
                    EvalCtx::new(&inner.schema)
                        .with_this(&state)
                        .with_params(&params)
                        .with_resolver(tx)
                        .eval(expr)?
                };
                tx.set(oid, field, value)?;
            }
            TriggerAction::Callback { name } => {
                let cb = tx.db.callback(name)?;
                cb(tx, oid, &firing.activation.args)?;
            }
        }
    }
    Ok(())
}
