//! The [`Database`]: schema DDL, clusters, indexes, and open/recover.
//!
//! A database ties a [`Store`] (durable or in-memory) to the O++ data
//! model. Its catalog (heap 1) holds class declarations, cluster
//! registrations, index declarations, and trigger activations; opening an
//! existing store replays that catalog, then rebuilds the in-memory
//! indexes by scanning.
//!
//! Concurrency model (DESIGN.md §8, §13): the paper explicitly leaves
//! concurrency out of scope (§1); we use optimistic multi-writer
//! concurrency. Write transactions run fully in parallel, buffering
//! writes locally and recording the epoch at which each read was served;
//! commit validates the read set against the [`CommitTable`] inside a
//! short critical section, claims the next epoch, and publishes in epoch
//! order. Readers are unchanged from §8: [`Database::begin_read`] hands
//! out snapshot [`ReadTransaction`]s sharing the `apply_gate`
//! reader-writer lock, and a committing writer takes it exclusively only
//! around its publish window. DDL operations claim an epoch through the
//! same table and stamp `schema_stamp`, so every in-flight writer that
//! began earlier conflicts and retries against the new schema.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex, RwLock};

use ode_model::encode::{decode_class, encode_class};
use ode_model::{ClassBuilder, ClassId, FieldRange, ObjState, Oid, Schema, Value};
use ode_obs::{
    EngineTelemetry, FlightRecorder, QueryProfile, SlowQueryLog, SpanStage, StorageSnapshot,
    TelemetrySnapshot, TraceEvent, TracePhase, TraceScope, TraceSink, WorkStatRow, WorkloadStats,
    DEFAULT_FLIGHT_CAPACITY, DEFAULT_SLOW_THRESHOLD_NS,
};
use ode_storage::{CommitTicket, FileStore, MemStore, Store, StoreOp, StoreStats};

use crate::catalog::{CatalogRecord, CatalogState, CATALOG_HEAP};
use crate::error::{OdeError, Result};
use crate::index::BTreeIndex;
use crate::object::{decode_record, is_anchor, ObjRecord};
use crate::read::ReadTransaction;
use crate::trigger::{Activation, CommitNote, PendingEvent};
use crate::txn::{ScanEntry, Transaction};

/// Signature of a host callback invocable from trigger actions.
pub type CallbackFn = Arc<dyn Fn(&mut Transaction<'_>, Oid, &[Value]) -> Result<()> + Send + Sync>;

/// Sink receiving fired-trigger events from committing transactions when
/// the database runs in decoupled-firing mode (a scheduler is attached).
/// Invoked after the triggering commit has published, outside every engine
/// lock; the events are already durable in the catalog's pending record.
pub type FiringSink = Arc<dyn Fn(Vec<PendingEvent>) + Send + Sync>;

/// Observer notified after each published write commit with the objects it
/// wrote (live subscriptions). Invoked outside every engine lock; must be
/// cheap and must not commit a write transaction synchronously.
pub type CommitObserver = Arc<dyn Fn(&CommitNote) + Send + Sync>;

/// Hook supplying scheduler status rows to the shell's `.triggers` command
/// (queue depth, dead letters, …). Registered by an attached scheduler.
pub type SchedStatusFn = Arc<dyn Fn() -> Vec<(String, String)> + Send + Sync>;

/// Upper bound on distinct accumulated query-profile buckets. Long-lived
/// servers execute unbounded query streams; past this many distinct
/// (target, strategy) shapes, new shapes are dropped (existing buckets
/// keep accumulating) until the map is cleared by
/// [`Database::reset_telemetry`].
pub const MAX_PROFILE_BUCKETS: usize = 1024;

/// One accumulated per-query-shape profile (see
/// [`Database::query_profiles`]): every executed pass is absorbed into
/// the bucket keyed by its `(target, strategy)` shape.
#[derive(Debug, Clone, Default)]
pub struct ProfileBucket {
    /// Query passes absorbed into this bucket.
    pub passes: u64,
    /// Accumulated counters ([`QueryProfile::absorb`] semantics: sums,
    /// except `rows` which holds the last pass's value).
    pub profile: QueryProfile,
}

/// Tuning knobs.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Maximum trigger cascade depth before the engine gives up.
    pub trigger_cascade_limit: usize,
    /// How many times a transient store-commit failure is retried before
    /// the transaction aborts. Safe because the WAL rolls a failed group
    /// append back to a clean tail (DESIGN.md §10); 0 disables retries.
    pub commit_retries: usize,
    /// How many times [`Database::transaction`] re-runs a closure whose
    /// commit lost optimistic validation ([`OdeError::WriteConflict`],
    /// DESIGN.md §13) before surfacing the conflict. Retries back off
    /// exponentially (capped in the low milliseconds), so extent-scanning
    /// transactions make progress against streams of small writers.
    /// 0 disables conflict retries.
    pub conflict_retries: usize,
    /// Capacity (in spans) of the always-on flight recorder ring.
    pub flight_capacity: usize,
    /// Statements slower than this land in the slow-query log.
    pub slow_query_threshold_ns: u64,
}

impl Default for DbConfig {
    fn default() -> Self {
        DbConfig {
            trigger_cascade_limit: 64,
            commit_retries: 2,
            conflict_retries: 32,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            slow_query_threshold_ns: DEFAULT_SLOW_THRESHOLD_NS,
        }
    }
}

pub(crate) struct DbInner {
    pub schema: Schema,
    /// class → cluster heap (a cluster is a type extent, §2.5).
    pub clusters: HashMap<ClassId, u32>,
    /// cluster heap → class.
    pub class_of_cluster: HashMap<u32, ClassId>,
    pub catalog: CatalogState,
    /// (class, field) → index (covers the class's deep extent).
    pub indexes: HashMap<(ClassId, String), BTreeIndex>,
    /// Live trigger activations.
    pub activations: HashMap<u64, Activation>,
    /// Subject → activation ids.
    pub activations_by_oid: HashMap<Oid, Vec<u64>>,
    /// Fired-trigger events enqueued but not yet acknowledged by their
    /// action transactions (decoupled mode only; always empty inline).
    pub pending: HashMap<u64, PendingEvent>,
}

impl DbInner {
    /// Heaps making up the (deep or shallow) extent of `class`.
    pub fn extent_heaps(&self, class: ClassId, deep: bool) -> Vec<(ClassId, u32)> {
        let classes = if deep {
            self.schema.descendants(class)
        } else {
            vec![class]
        };
        classes
            .into_iter()
            .filter_map(|c| self.clusters.get(&c).map(|&h| (c, h)))
            .collect()
    }
}

/// Commit-time validation state for optimistic multi-writer concurrency
/// (DESIGN.md §13). Guarded by `Database::commit_gate`; every committing
/// writer holds the gate for the short validate→log→claim section only.
///
/// Stamps record "this thing last changed at epoch E". A committing
/// transaction conflicts when anything it read carries a stamp newer than
/// the epoch at which it observed it. Absent entries pass — which is why
/// pruning may only drop stamps no live (or future) transaction could
/// conflict on.
pub(crate) struct CommitTable {
    /// Highest epoch handed out. Epochs are claimed here (in WAL order)
    /// and published later, in order, through `Database::publish_epoch`.
    last_claimed: u64,
    /// Epoch of the last DDL (schema/cluster/index change). Every write
    /// transaction validates against it, so DDL conflicts all in-flight
    /// writers that began earlier.
    schema_stamp: u64,
    /// Object → epoch of its last committed write.
    write_stamps: HashMap<Oid, u64>,
    /// Heap → write stamps of the commits that inserted into / deleted
    /// from or updated it (phantom protection for extent scans). Commits
    /// whose ranged-write notes verified stamp key *ranges* instead of
    /// the whole heap, so disjoint-range scanners keep passing.
    heap_stamps: HashMap<u32, HeapStamp>,
    /// Activation id → epoch of the commit that consumed (killed) it.
    /// Prevents two committers from both deleting a once-only activation.
    killed_activations: HashMap<u64, u64>,
}

/// Soft cap on stamp-map size before a claim prunes entries no live or
/// future transaction could conflict on.
const STAMP_PRUNE_THRESHOLD: usize = 8192;

/// Cap on per-heap ranged stamps. Past it the heap collapses to one
/// whole-heap stamp at the newest epoch — strictly more conservative, so
/// always sound — keeping validation cost and memory bounded under a
/// storm of ranged writers.
const RANGED_STAMPS_PER_HEAP: usize = 32;

/// One commit's verified ranged write into a heap, as presented to the
/// validator: every object it wrote had (pre-state) each `ranges` field
/// inside its interval, and only the `assigned` fields changed.
#[derive(Debug, Clone)]
pub(crate) struct RangedWrite {
    /// Pre-state intervals proven for every written object.
    pub ranges: Vec<FieldRange>,
    /// Fields the commit actually changed on those objects (empty for
    /// pure deletes).
    pub assigned: Vec<String>,
}

/// A [`RangedWrite`] remembered in the commit table at its claim epoch.
struct RangedStamp {
    epoch: u64,
    ranges: Vec<FieldRange>,
    assigned: Vec<String>,
}

/// Per-heap phantom-protection stamps: one whole-heap epoch (writes that
/// proved nothing) plus a bounded list of ranged stamps.
#[derive(Default)]
struct HeapStamp {
    /// Epoch of the last unranged write (0 = none since the last prune).
    full: u64,
    /// Ranged writes newer than `full`.
    ranged: Vec<RangedStamp>,
}

/// The read/write footprint a committing transaction presents for
/// validation (see [`CommitTable`]). Epoch values are the publish epoch
/// observed when that item was *first* read.
pub(crate) struct WriteSummary<'a> {
    /// Publish epoch when the transaction began.
    pub begin_epoch: u64,
    /// Object → epoch at first read.
    pub read_set: &'a HashMap<Oid, u64>,
    /// Heap → scan entry at first extent scan (phantom protection;
    /// ranged entries carry the predicate-proven intervals).
    pub scan_set: &'a HashMap<u32, ScanEntry>,
    /// Objects this commit writes or deletes (logical anchor oids).
    pub write_oids: &'a [Oid],
    /// Activation ids this commit kills (once-only firings, deactivations).
    pub kills: &'a [u64],
    /// Heap → verified ranged writes (see
    /// `Transaction::verify_ranged_writes`). Heaps absent here stamp the
    /// whole heap, as before.
    pub heap_ranges: &'a HashMap<u32, Vec<RangedWrite>>,
}

/// An Ode database: "a collection of persistent objects" (§2) plus the
/// schema, clusters, indexes, and active triggers that govern them.
pub struct Database {
    pub(crate) store: Arc<dyn Store>,
    pub(crate) inner: RwLock<DbInner>,
    /// Commit gate: the short critical section in which a committing
    /// writer validates its read set, appends its WAL group, and claims
    /// the next epoch. Never held across fsync or page apply.
    pub(crate) commit_gate: Mutex<CommitTable>,
    /// Begin-epoch → count of live write transactions that began there.
    /// Bounds stamp-map pruning in [`CommitTable`].
    pub(crate) active_txns: Mutex<BTreeMap<u64, usize>>,
    /// Serializes epoch publication: committers wait here until every
    /// earlier-claimed epoch has published, so `commit_epoch` only ever
    /// moves through the claimed sequence in order.
    pub(crate) publish_lock: Mutex<()>,
    pub(crate) publish_cv: Condvar,
    /// Apply gate: snapshot readers hold the shared side for their whole
    /// lifetime; a committing writer (or DDL) takes the exclusive side only
    /// around the publish window (store commit + in-memory index update).
    /// Lock order is always `apply_gate` before `inner` — never the
    /// reverse — which rules out ABBA deadlock between the two.
    pub(crate) apply_gate: RwLock<()>,
    /// Bumped once per published commit/DDL; lets snapshot readers detect
    /// staleness ([`ReadTransaction::is_stale`]).
    pub(crate) commit_epoch: AtomicU64,
    pub(crate) callbacks: RwLock<HashMap<String, CallbackFn>>,
    pub(crate) next_activation_id: AtomicU64,
    /// Ids for durable pending-trigger events (decoupled firing).
    pub(crate) next_event_id: AtomicU64,
    /// When installed, commits enqueue fired-trigger events here instead of
    /// running actions inline (weak coupling moves off the commit path).
    pub(crate) firing_sink: RwLock<Option<FiringSink>>,
    /// When installed, notified with each published commit's write set
    /// (live subscriptions).
    pub(crate) commit_observer: RwLock<Option<CommitObserver>>,
    /// Scheduler status hook for `.triggers` (queue depth, dead letters…).
    pub(crate) sched_hook: RwLock<Option<SchedStatusFn>>,
    pub(crate) config: DbConfig,
    /// Engine-wide counters; every layer increments through relaxed atomics.
    pub(crate) tel: EngineTelemetry,
    /// Always-on flight recorder: the last N structured spans, ring-
    /// buffered in bounded memory, dumpable on panic or via `.trace`.
    pub(crate) flight: Arc<FlightRecorder>,
    /// Per-cluster / per-index read/write/scan counters, persisted into
    /// the catalog at checkpoint time.
    pub(crate) workstats: WorkloadStats,
    /// Statements slower than the configured threshold, with their plans
    /// and per-stage span timings.
    pub(crate) slowlog: SlowQueryLog,
    /// Optional span-event sink (tracing layer).
    pub(crate) trace: RwLock<Option<TraceSink>>,
    /// Accumulated per-query-shape profiles, keyed by `target | strategy`.
    pub(crate) profiles: RwLock<HashMap<String, ProfileBucket>>,
    pub(crate) next_txn_serial: AtomicU64,
    pub(crate) next_query_serial: AtomicU64,
}

impl Database {
    /// Open (creating if absent) a durable database in `dir`.
    pub fn open(dir: &Path) -> Result<Database> {
        let store = FileStore::open(dir)?;
        Self::from_store(Arc::new(store), DbConfig::default())
    }

    /// Open a durable database with custom configuration.
    pub fn open_with(
        dir: &Path,
        store_opts: ode_storage::filestore::FileStoreOptions,
        config: DbConfig,
    ) -> Result<Database> {
        let store = FileStore::open_with(dir, store_opts)?;
        Self::from_store(Arc::new(store), config)
    }

    /// A volatile in-memory database (tests, benchmarks, scratch work).
    pub fn in_memory() -> Database {
        Self::from_store(Arc::new(MemStore::new()), DbConfig::default())
            .expect("in-memory open cannot fail")
    }

    /// Build a database over any store implementation.
    pub fn from_store(store: Arc<dyn Store>, config: DbConfig) -> Result<Database> {
        let flight = Arc::new(FlightRecorder::with_capacity(config.flight_capacity));
        let workstats = WorkloadStats::new();
        // Recovery runs before any request exists, so its span belongs to
        // the background (zero) trace.
        let mut recovery_span = flight.span(SpanStage::Recovery, "catalog replay");
        if !store.has_heap(CATALOG_HEAP) {
            let id = store.create_heap()?;
            if id != CATALOG_HEAP {
                return Err(OdeError::Usage(format!(
                    "store is not fresh: first heap id {id} != {CATALOG_HEAP}"
                )));
            }
        }
        let mut inner = DbInner {
            schema: Schema::new(),
            clusters: HashMap::new(),
            class_of_cluster: HashMap::new(),
            catalog: CatalogState::default(),
            indexes: HashMap::new(),
            activations: HashMap::new(),
            activations_by_oid: HashMap::new(),
            pending: HashMap::new(),
        };

        // Replay the catalog in record-id order: classes are re-defined in
        // their original definition order, so base resolution always works.
        let mut records = Vec::new();
        store.scan(CATALOG_HEAP, &mut |rid, bytes| {
            records.push((rid, bytes.to_vec()));
            Ok(true)
        })?;
        let mut max_activation = 0u64;
        let mut max_event = 0u64;
        let mut index_decls = Vec::new();
        let mut replayed = 0usize;
        for (rid, bytes) in records {
            replayed += 1;
            match CatalogRecord::decode(&bytes)? {
                CatalogRecord::Class(class_bytes) => {
                    let builder = decode_class(&class_bytes)?;
                    let name = builder_name(&builder);
                    inner.schema.define(builder)?;
                    inner.catalog.class_rids.insert(name, rid);
                }
                CatalogRecord::Cluster { class_name, heap } => {
                    let class = inner.schema.id_of(&class_name)?;
                    inner.clusters.insert(class, heap);
                    inner.class_of_cluster.insert(heap, class);
                    inner.catalog.cluster_rids.insert(class_name, rid);
                }
                CatalogRecord::Index { class_name, field } => {
                    let class = inner.schema.id_of(&class_name)?;
                    index_decls.push((class, field.clone()));
                    inner.catalog.index_rids.insert((class_name, field), rid);
                }
                CatalogRecord::Activation {
                    id,
                    oid,
                    trigger,
                    args,
                } => {
                    max_activation = max_activation.max(id);
                    inner.activations.insert(
                        id,
                        Activation {
                            id,
                            oid,
                            trigger,
                            args,
                        },
                    );
                    inner.activations_by_oid.entry(oid).or_default().push(id);
                    inner.catalog.activation_rids.insert(id, rid);
                }
                CatalogRecord::Stats(rows) => {
                    for row in &rows {
                        workstats.absorb(row);
                    }
                    inner.catalog.stats_rid = Some(rid);
                }
                CatalogRecord::Pending(e) => {
                    max_event = max_event.max(e.id);
                    inner.catalog.pending_rids.insert(e.id, rid);
                    inner.pending.insert(e.id, e);
                }
            }
        }

        // Rebuild indexes by scanning extents.
        for (class, field) in index_decls {
            let ix = build_index(store.as_ref(), &inner, class, &field)?;
            inner.indexes.insert((class, field), ix);
        }
        recovery_span.set_detail(format!("{replayed} catalog records"));
        drop(recovery_span);

        Ok(Database {
            store,
            inner: RwLock::new(inner),
            commit_gate: Mutex::new(CommitTable {
                last_claimed: 0,
                schema_stamp: 0,
                write_stamps: HashMap::new(),
                heap_stamps: HashMap::new(),
                killed_activations: HashMap::new(),
            }),
            active_txns: Mutex::new(BTreeMap::new()),
            publish_lock: Mutex::new(()),
            publish_cv: Condvar::new(),
            apply_gate: RwLock::new(()),
            commit_epoch: AtomicU64::new(0),
            callbacks: RwLock::new(HashMap::new()),
            next_activation_id: AtomicU64::new(max_activation + 1),
            next_event_id: AtomicU64::new(max_event + 1),
            firing_sink: RwLock::new(None),
            commit_observer: RwLock::new(None),
            sched_hook: RwLock::new(None),
            slowlog: SlowQueryLog::with_threshold_ns(config.slow_query_threshold_ns),
            config,
            tel: EngineTelemetry::default(),
            flight,
            workstats,
            trace: RwLock::new(None),
            profiles: RwLock::new(HashMap::new()),
            next_txn_serial: AtomicU64::new(1),
            next_query_serial: AtomicU64::new(1),
        })
    }

    // ------------------------------------------------------------- DDL

    /// Define classes from O++-flavoured declaration source (see
    /// [`ode_model::ddl`]), in order. Returns the new class ids.
    ///
    /// ```text
    /// db.define_from_source(r#"
    ///     class person { string name; int income = 0; }
    ///     class student : public person { int stipend = 0; }
    /// "#)?;
    /// ```
    pub fn define_from_source(&self, src: &str) -> Result<Vec<ClassId>> {
        let builders = ode_model::parse_classes(src)?;
        let mut ids = Vec::with_capacity(builders.len());
        for b in builders {
            ids.push(self.define_class(b)?);
        }
        Ok(ids)
    }

    /// Define a class (auto-commits its catalog record).
    ///
    /// The static analyzer runs first (DESIGN.md §9): the definition is
    /// applied to a scratch copy of the schema and the schema-level
    /// passes (§5 constraint contradictions, §6 trigger cycles, type
    /// checks) must come back clean before anything touches the catalog.
    pub fn define_class(&self, builder: ClassBuilder) -> Result<ClassId> {
        {
            let start = std::time::Instant::now();
            let mut scratch = self.inner.read().schema.clone();
            // Definition errors (duplicate class, unknown base, bad
            // field refs) are reported by the real `define` below with
            // their original error type; only analyzer findings reject
            // here.
            let diags = match scratch.define(builder.clone()) {
                Ok(id) => ode_analyze::analyze_class(&scratch, id),
                Err(_) => Vec::new(),
            };
            let tel = &self.tel.analyze;
            tel.passes.inc();
            tel.latency.record_ns(start.elapsed().as_nanos() as u64);
            for d in &diags {
                match d.severity {
                    ode_analyze::Severity::Error => tel.errors.inc(),
                    ode_analyze::Severity::Warning => tel.warnings.inc(),
                }
            }
            if ode_analyze::has_errors(&diags) {
                return Err(OdeError::Analysis(diags));
            }
        }
        // DDL claims an epoch and stamps the schema (conflicting every
        // in-flight writer that began earlier), waits its publish turn,
        // and applies under the exclusive apply gate. The claimed epoch
        // is published even when the body fails — an unpublished epoch
        // would stall every later committer (DESIGN.md §13).
        let epoch = self.claim_schema_epoch();
        self.wait_turn(epoch);
        let _apply = self.apply_gate.write();
        let result = (|| {
            let mut inner = self.inner.write();
            let name = builder_name(&builder);
            let id = inner.schema.define(builder)?;
            let def = inner.schema.class(id)?;
            let bytes = encode_class(&inner.schema, def)?;
            let rec = CatalogRecord::Class(bytes).encode();
            let rid = self.store.reserve(CATALOG_HEAP, rec.len())?;
            self.store.commit(vec![StoreOp::Put {
                heap: CATALOG_HEAP,
                rid,
                data: rec,
            }])?;
            inner.catalog.class_rids.insert(name, rid);
            Ok(id)
        })();
        self.publish_epoch(epoch);
        result
    }

    /// Create the cluster (type extent) for `class_name` — the paper's
    /// `create` macro (§2.5). Idempotent: re-creating returns the existing
    /// cluster.
    pub fn create_cluster(&self, class_name: &str) -> Result<u32> {
        // Cheap pre-check keeps the idempotent re-create from claiming an
        // epoch (the body re-checks under the exclusive gate).
        {
            let inner = self.inner.read();
            let class = inner.schema.id_of(class_name)?;
            if let Some(&heap) = inner.clusters.get(&class) {
                return Ok(heap);
            }
        }
        let epoch = self.claim_schema_epoch();
        self.wait_turn(epoch);
        let _apply = self.apply_gate.write();
        let result = (|| {
            let mut inner = self.inner.write();
            let class = inner.schema.id_of(class_name)?;
            if let Some(&heap) = inner.clusters.get(&class) {
                return Ok(heap);
            }
            let heap = self.store.create_heap()?;
            let rec = CatalogRecord::Cluster {
                class_name: class_name.to_string(),
                heap,
            }
            .encode();
            let rid = self.store.reserve(CATALOG_HEAP, rec.len())?;
            self.store.commit(vec![StoreOp::Put {
                heap: CATALOG_HEAP,
                rid,
                data: rec,
            }])?;
            inner.clusters.insert(class, heap);
            inner.class_of_cluster.insert(heap, class);
            inner
                .catalog
                .cluster_rids
                .insert(class_name.to_string(), rid);
            Ok(heap)
        })();
        self.publish_epoch(epoch);
        result
    }

    /// Does `class_name` have a cluster?
    pub fn has_cluster(&self, class_name: &str) -> bool {
        let inner = self.inner.read();
        inner
            .schema
            .id_of(class_name)
            .map(|c| inner.clusters.contains_key(&c))
            .unwrap_or(false)
    }

    /// Destroy a cluster and every object in it. Activations on its objects
    /// are dropped. Objects elsewhere holding references to these objects
    /// are left with dangling refs (dereferencing reports "no such
    /// object"), exactly like `pdelete` of an individual object.
    pub fn destroy_cluster(&self, class_name: &str) -> Result<()> {
        let epoch = self.claim_schema_epoch();
        self.wait_turn(epoch);
        let _apply = self.apply_gate.write();
        let result = self.destroy_cluster_body(class_name);
        self.publish_epoch(epoch);
        result
    }

    fn destroy_cluster_body(&self, class_name: &str) -> Result<()> {
        let mut inner = self.inner.write();
        let class = inner.schema.id_of(class_name)?;
        let Some(&heap) = inner.clusters.get(&class) else {
            return Err(OdeError::NoSuchCluster(class_name.to_string()));
        };
        // Catalog updates: drop the cluster record and activation records
        // of subjects in this cluster.
        let mut ops = Vec::new();
        if let Some(rid) = inner.catalog.cluster_rids.remove(class_name) {
            ops.push(StoreOp::Delete {
                heap: CATALOG_HEAP,
                rid,
            });
        }
        let dead: Vec<u64> = inner
            .activations
            .values()
            .filter(|a| a.oid.cluster == heap)
            .map(|a| a.id)
            .collect();
        for id in &dead {
            if let Some(rid) = inner.catalog.activation_rids.remove(id) {
                ops.push(StoreOp::Delete {
                    heap: CATALOG_HEAP,
                    rid,
                });
            }
        }
        self.store.commit(ops)?;
        self.store.drop_heap(heap)?;
        for id in dead {
            if let Some(a) = inner.activations.remove(&id) {
                if let Some(v) = inner.activations_by_oid.get_mut(&a.oid) {
                    v.retain(|&x| x != id);
                }
            }
        }
        inner.clusters.remove(&class);
        inner.class_of_cluster.remove(&heap);
        // Rebuild any index whose deep extent included this cluster.
        let rebuild: Vec<(ClassId, String)> = inner
            .indexes
            .keys()
            .filter(|(c, _)| inner.schema.is_subclass(class, *c))
            .cloned()
            .collect();
        for key in rebuild {
            let ix = build_index(self.store.as_ref(), &inner, key.0, &key.1)?;
            inner.indexes.insert(key, ix);
        }
        Ok(())
    }

    /// Declare (and build) a secondary index on `class_name.field`,
    /// covering the class's deep extent.
    pub fn create_index(&self, class_name: &str, field: &str) -> Result<()> {
        // Pre-check outside the epoch claim: bad names fail cheaply and
        // idempotent re-creates return without claiming.
        {
            let inner = self.inner.read();
            let class = inner.schema.id_of(class_name)?;
            inner.schema.class(class)?.field_index(field)?;
            if inner.indexes.contains_key(&(class, field.to_string())) {
                return Ok(());
            }
        }
        let epoch = self.claim_schema_epoch();
        self.wait_turn(epoch);
        let _apply = self.apply_gate.write();
        let result = (|| {
            let mut inner = self.inner.write();
            let class = inner.schema.id_of(class_name)?;
            inner.schema.class(class)?.field_index(field)?;
            let key = (class, field.to_string());
            if inner.indexes.contains_key(&key) {
                return Ok(());
            }
            let rec = CatalogRecord::Index {
                class_name: class_name.to_string(),
                field: field.to_string(),
            }
            .encode();
            let rid = self.store.reserve(CATALOG_HEAP, rec.len())?;
            self.store.commit(vec![StoreOp::Put {
                heap: CATALOG_HEAP,
                rid,
                data: rec,
            }])?;
            inner
                .catalog
                .index_rids
                .insert((class_name.to_string(), field.to_string()), rid);
            let ix = build_index(self.store.as_ref(), &inner, class, field)?;
            inner.indexes.insert(key, ix);
            Ok(())
        })();
        self.publish_epoch(epoch);
        result
    }

    /// Register an O++ member function as a Rust closure. Methods are code:
    /// they are re-registered each open (only their *use sites* — constraint
    /// and trigger sources — persist).
    pub fn register_method(
        &self,
        class_name: &str,
        method: &str,
        f: impl Fn(&ObjState, &[Value]) -> ode_model::Result<Value> + Send + Sync + 'static,
    ) -> Result<()> {
        let mut inner = self.inner.write();
        let class = inner.schema.id_of(class_name)?;
        inner.schema.register_method(class, method, f);
        Ok(())
    }

    /// Register a host callback invocable from trigger actions.
    pub fn register_callback(
        &self,
        name: &str,
        f: impl Fn(&mut Transaction<'_>, Oid, &[Value]) -> Result<()> + Send + Sync + 'static,
    ) {
        self.callbacks.write().insert(name.to_string(), Arc::new(f));
    }

    // ----------------------------------------------------------- access

    /// Begin a (write) transaction. Any number run concurrently: each
    /// buffers its writes locally and validates its reads at commit time,
    /// aborting with [`OdeError::WriteConflict`] (transient — retry) when
    /// a concurrent commit overlapped them (DESIGN.md §13).
    pub fn begin(&self) -> Transaction<'_> {
        Transaction::new(self, 0)
    }

    /// Begin a snapshot read transaction. Read transactions never touch
    /// the writer gate: any number run concurrently with each other, and
    /// a writer blocks them only for the short window in which it
    /// publishes a commit. The snapshot is pinned for the reader's whole
    /// lifetime — no commit can land while it is open.
    ///
    /// Caveat: do not commit a write transaction (or run DDL) on a thread
    /// that still holds an open `ReadTransaction` — the publish window
    /// needs the apply gate exclusively and would self-deadlock.
    pub fn begin_read(&self) -> ReadTransaction<'_> {
        ReadTransaction::new(self)
    }

    /// Run `f` in a snapshot read transaction. (The reference is mutable
    /// only because the `forall` builder borrows its transaction mutably;
    /// nothing in a read transaction mutates the database.)
    pub fn read<R>(&self, f: impl FnOnce(&mut ReadTransaction<'_>) -> Result<R>) -> Result<R> {
        let mut rtx = self.begin_read();
        f(&mut rtx)
    }

    /// The current commit epoch: bumped once per published commit or DDL
    /// operation. [`ReadTransaction::is_stale`] compares against this.
    pub fn commit_epoch(&self) -> u64 {
        self.commit_epoch.load(Ordering::Acquire)
    }

    // -------------------------------------------- multi-writer commit

    /// Register a beginning write transaction and return its begin epoch.
    /// Holding the `active_txns` lock across the epoch load closes the
    /// race with stamp pruning: a pruner cannot compute its floor between
    /// our epoch capture and our registration.
    pub(crate) fn register_txn(&self) -> u64 {
        let mut g = self.active_txns.lock();
        let epoch = self.commit_epoch.load(Ordering::Acquire);
        *g.entry(epoch).or_insert(0) += 1;
        epoch
    }

    /// Deregister a write transaction (commit, abort, or drop).
    pub(crate) fn deregister_txn(&self, begin_epoch: u64) {
        let mut g = self.active_txns.lock();
        if let Some(n) = g.get_mut(&begin_epoch) {
            *n -= 1;
            if *n == 0 {
                g.remove(&begin_epoch);
            }
        }
    }

    /// The commit gate's critical section: validate `w` against the
    /// [`CommitTable`], append the batch to the WAL (no fsync — that is
    /// the cohort's shared phase 2), claim the next epoch, and stamp the
    /// write set. Returns the claimed epoch and the prepared ticket; on
    /// [`OdeError::WriteConflict`] or storage failure nothing was claimed
    /// or stamped, so the caller may rebuild and retry.
    pub(crate) fn claim_commit(
        &self,
        w: &WriteSummary<'_>,
        ops: Vec<StoreOp>,
    ) -> Result<(u64, CommitTicket)> {
        let wait_start = std::time::Instant::now();
        let mut table = self.commit_gate.lock();
        self.tel
            .txn
            .gate_wait
            .record_ns(wait_start.elapsed().as_nanos() as u64);

        let conflict = |what: String| {
            self.tel.txn.conflicts.inc();
            Err(OdeError::WriteConflict { what })
        };
        if table.schema_stamp > w.begin_epoch {
            return conflict("schema change".into());
        }
        for (oid, &observed) in w.read_set {
            if table.write_stamps.get(oid).is_some_and(|&s| s > observed) {
                return conflict(format!("object {oid}"));
            }
        }
        for (heap, entry) in w.scan_set {
            let Some(stamp) = table.heap_stamps.get(heap) else {
                continue;
            };
            if stamp.full > entry.epoch {
                self.bump_pressure();
                return conflict(format!("extent of cluster {heap}"));
            }
            match &entry.ranges {
                // An unranged (whole-extent) scan conflicts with any newer
                // write to the heap, ranged or not.
                None => {
                    if stamp.ranged.iter().any(|rs| rs.epoch > entry.epoch) {
                        self.bump_pressure();
                        return conflict(format!("extent of cluster {heap}"));
                    }
                }
                // A ranged scan may skip a newer ranged write if some field
                // is constrained on both sides to provably disjoint
                // intervals — and the writer did not assign that field (a
                // reassigned field's post-state escapes its pre-range).
                Some(ranges) => {
                    let mut narrowed = false;
                    for rs in &stamp.ranged {
                        if rs.epoch <= entry.epoch {
                            continue;
                        }
                        let invisible = ranges.iter().any(|fr| {
                            !rs.assigned.contains(&fr.field)
                                && rs
                                    .ranges
                                    .iter()
                                    .any(|wr| wr.field == fr.field && wr.range.disjoint(&fr.range))
                        });
                        if !invisible {
                            self.bump_pressure();
                            return conflict(format!("extent of cluster {heap}"));
                        }
                        narrowed = true;
                    }
                    if narrowed {
                        self.tel.txn.narrowed_validations.inc();
                    }
                }
            }
        }
        for id in w.kills {
            if table
                .killed_activations
                .get(id)
                .is_some_and(|&s| s > w.begin_epoch)
            {
                return conflict(format!("trigger activation {id}"));
            }
        }
        // Blind writes (not read first) validate against the begin epoch.
        for oid in w.write_oids {
            if !w.read_set.contains_key(oid)
                && table
                    .write_stamps
                    .get(oid)
                    .is_some_and(|&s| s > w.begin_epoch)
            {
                return conflict(format!("object {oid}"));
            }
        }

        // Append inside the gate so WAL order equals epoch order: crash
        // recovery then replays a consistent epoch-order prefix. Transient
        // append failures retry here (the WAL rolled its tail back);
        // nothing is claimed until the append lands.
        let max_retries = self.config.commit_retries;
        let mut attempt = 0;
        let mut ops = Some(ops);
        let ticket = loop {
            // Clone only while a retry remains; the last attempt moves.
            let batch = if attempt < max_retries {
                ops.as_ref().expect("ops kept while retries remain").clone()
            } else {
                ops.take().expect("ops moved only on the final attempt")
            };
            match self.store.commit_prepare(batch) {
                Ok(t) => break t,
                Err(e) if e.is_transient() && attempt < max_retries => {
                    attempt += 1;
                    self.tel.txn.commit_retries.inc();
                }
                Err(e) => return Err(e.into()),
            }
        };

        table.last_claimed += 1;
        let epoch = table.last_claimed;
        // A successful claim drains contention pressure (see
        // `bump_pressure`); both run under the commit gate.
        self.tel.txn.conflict_pressure.dec();
        for oid in w.write_oids {
            table.write_stamps.insert(*oid, epoch);
        }
        let mut ranged_stamped: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for op in &ticket.ops {
            let (heap, rid) = match op {
                StoreOp::Put { heap, rid, .. } | StoreOp::Delete { heap, rid } => (*heap, *rid),
            };
            table.write_stamps.insert(Oid { cluster: heap, rid }, epoch);
            let hs = table.heap_stamps.entry(heap).or_default();
            match w.heap_ranges.get(&heap) {
                // Every write this commit made to the heap fits inside the
                // verified ranges: stamp them individually so disjoint-key
                // readers can validate past this epoch. Once per heap.
                Some(writes) if !writes.is_empty() => {
                    if ranged_stamped.insert(heap) {
                        for rw in writes {
                            hs.ranged.push(RangedStamp {
                                epoch,
                                ranges: rw.ranges.clone(),
                                assigned: rw.assigned.clone(),
                            });
                        }
                        if hs.ranged.len() > RANGED_STAMPS_PER_HEAP {
                            // Collapse rather than grow without bound; the
                            // full stamp at this epoch subsumes every entry.
                            hs.full = epoch;
                            hs.ranged.clear();
                        }
                    }
                }
                // Unranged write: the full stamp at this (newest) epoch
                // subsumes every older ranged stamp.
                _ => {
                    hs.full = epoch;
                    hs.ranged.clear();
                }
            }
        }
        for id in w.kills {
            table.killed_activations.insert(*id, epoch);
        }
        if table.write_stamps.len() > STAMP_PRUNE_THRESHOLD {
            self.prune_stamps(&mut table);
        }
        Ok((epoch, ticket))
    }

    /// Raise the footprint-overlap pressure gauge. Called (under the
    /// commit gate) on each extent/scan validation failure — the
    /// conflicts that signal writers piling onto one heap. Successful
    /// claims decay it, and `transaction` stretches its retry backoff
    /// while it is high, so contention drains instead of thrashing.
    /// Capped so the extra backoff shift stays bounded.
    fn bump_pressure(&self) {
        let g = &self.tel.txn.conflict_pressure;
        if g.get() < 16 {
            g.inc();
        }
    }

    /// Drop stamps no live or future transaction could conflict on: a
    /// stamp at or below every active begin epoch *and* the current
    /// published epoch always validates as "pass", so absence is
    /// equivalent. (Future transactions begin at or above the published
    /// epoch, which is why it joins the floor.)
    fn prune_stamps(&self, table: &mut CommitTable) {
        let active = self.active_txns.lock();
        let floor = active
            .keys()
            .next()
            .copied()
            .unwrap_or(u64::MAX)
            .min(self.commit_epoch.load(Ordering::Acquire));
        drop(active);
        table.write_stamps.retain(|_, &mut s| s > floor);
        table.heap_stamps.retain(|_, hs| {
            hs.ranged.retain(|r| r.epoch > floor);
            hs.full > floor || !hs.ranged.is_empty()
        });
        table.killed_activations.retain(|_, &mut s| s > floor);
    }

    /// Claim an epoch for a DDL operation and stamp the schema: every
    /// write transaction that began earlier will conflict at validation
    /// and retry against the new catalog.
    pub(crate) fn claim_schema_epoch(&self) -> u64 {
        let mut table = self.commit_gate.lock();
        table.last_claimed += 1;
        table.schema_stamp = table.last_claimed;
        table.last_claimed
    }

    /// Block until every epoch before `epoch` has published. Claims are
    /// totally ordered, so exactly one thread waits for each value.
    pub(crate) fn wait_turn(&self, epoch: u64) {
        let mut g = self.publish_lock.lock();
        while self.commit_epoch.load(Ordering::Acquire) != epoch - 1 {
            self.publish_cv.wait(&mut g);
        }
    }

    /// Publish `epoch` and wake waiting committers. Every claimed epoch
    /// MUST eventually be published (even as a no-op after a failure), or
    /// the publish sequence stalls behind the gap.
    pub(crate) fn publish_epoch(&self, epoch: u64) {
        let _g = self.publish_lock.lock();
        self.commit_epoch.store(epoch, Ordering::Release);
        self.publish_cv.notify_all();
    }

    /// Run `f` in a transaction: commit on `Ok`, abort on `Err`. A commit
    /// that loses optimistic validation ([`OdeError::WriteConflict`]) is
    /// retried from scratch up to `DbConfig::conflict_retries` times with
    /// exponential backoff — `f` must therefore be safe to re-run (it sees
    /// a fresh transaction each attempt).
    pub fn transaction<R>(
        &self,
        mut f: impl FnMut(&mut Transaction<'_>) -> Result<R>,
    ) -> Result<R> {
        let mut attempt: u32 = 0;
        loop {
            let mut tx = self.begin();
            match f(&mut tx) {
                Ok(r) => match tx.commit() {
                    Ok(_) => return Ok(r),
                    Err(OdeError::WriteConflict { .. })
                        if (attempt as usize) < self.config.conflict_retries =>
                    {
                        attempt += 1;
                        self.tel.txn.commit_retries.inc();
                        // Exponential backoff, capped low: losers yield so
                        // a winner publishes, preventing validation
                        // livelock between extent-scanning writers. The
                        // conflict-pressure gauge adds up to two extra
                        // doublings when many writers are piling onto the
                        // same heaps (each scan conflict raises it, each
                        // successful claim drains it).
                        let pressure = (self.tel.txn.conflict_pressure.get() / 8).min(2) as u32;
                        let us = 50u64.saturating_mul(1 << (attempt + pressure).min(8));
                        std::thread::sleep(std::time::Duration::from_micros(us));
                    }
                    Err(e) => return Err(e),
                },
                Err(e) => {
                    tx.abort();
                    return Err(e);
                }
            }
        }
    }

    /// Names of all declared indexes, as `(class, field)` pairs.
    pub fn index_names(&self) -> Vec<(String, String)> {
        let inner = self.inner.read();
        let mut out: Vec<(String, String)> = inner
            .indexes
            .keys()
            .filter_map(|(class, field)| {
                inner
                    .schema
                    .class(*class)
                    .ok()
                    .map(|c| (c.name.clone(), field.clone()))
            })
            .collect();
        out.sort();
        out
    }

    /// Schema snapshot accessor (read-only closure to avoid guard leaks).
    pub fn with_schema<R>(&self, f: impl FnOnce(&Schema) -> R) -> R {
        f(&self.inner.read().schema)
    }

    /// Test-only: the heap ids backing `class_name`'s (deep or shallow)
    /// extent — the footprint soundness oracle maps observed scan-set
    /// entries back to the clusters the analyzer predicted.
    #[doc(hidden)]
    pub fn extent_heap_ids(&self, class_name: &str, deep: bool) -> Result<Vec<u32>> {
        let inner = self.inner.read();
        let class = inner.schema.id_of(class_name)?;
        Ok(inner
            .extent_heaps(class, deep)
            .iter()
            .map(|&(_, h)| h)
            .collect())
    }

    /// Number of objects in the (deep) extent of `class_name`.
    pub fn extent_size(&self, class_name: &str, deep: bool) -> Result<usize> {
        let inner = self.inner.read();
        let class = inner.schema.id_of(class_name)?;
        let mut n = 0usize;
        for (_, heap) in inner.extent_heaps(class, deep) {
            self.store.scan(heap, &mut |_, bytes| {
                if is_anchor(bytes) {
                    n += 1;
                }
                Ok(true)
            })?;
        }
        Ok(n)
    }

    /// Substrate counters (buffer pool, WAL, commits).
    pub fn store_stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Reset substrate counters.
    pub fn reset_store_stats(&self) {
        self.store.reset_stats()
    }

    // ------------------------------------------------------- telemetry

    /// Snapshot every engine and substrate counter. Snapshots are plain
    /// data: subtract two with [`TelemetrySnapshot::delta`] to measure a
    /// workload, or serialize with [`TelemetrySnapshot::to_json`].
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let s = self.store.stats();
        self.tel.snapshot(StorageSnapshot {
            pager_hits: s.pager.hits,
            pager_misses: s.pager.misses,
            pager_evictions: s.pager.evictions,
            pager_writebacks: s.pager.writebacks,
            record_reads: s.record_reads,
            record_writes: s.record_writes,
            wal_appends: s.wal_appends,
            wal_fsyncs: s.wal_fsyncs,
            wal_bytes: s.wal_bytes,
            commits: s.commits,
            replayed_groups: s.replayed_groups,
            faults_injected: s.faults_injected,
            checkpoint_failures: s.checkpoint_failures,
            commit_groups: s.commit_groups,
            commit_group_members: s.commit_group_members,
        })
    }

    /// Zero every engine and substrate counter and drop the accumulated
    /// per-query profiles (benches and the shell's `.stats reset` measure
    /// deltas between phases; long-lived servers reset periodically so
    /// telemetry does not grow without bound).
    pub fn reset_telemetry(&self) {
        self.tel.reset();
        self.store.reset_stats();
        self.profiles.write().clear();
    }

    /// Absorb one executed query pass into the per-shape profile buckets.
    pub(crate) fn record_query_pass(&self, pass: &QueryProfile) {
        let key = format!("{} | {}", pass.target, pass.strategy);
        let mut map = self.profiles.write();
        if let Some(bucket) = map.get_mut(&key) {
            bucket.passes += 1;
            bucket.profile.absorb(pass);
            return;
        }
        if map.len() >= MAX_PROFILE_BUCKETS {
            return; // at capacity: existing buckets keep accumulating
        }
        let mut bucket = ProfileBucket {
            passes: 1,
            ..ProfileBucket::default()
        };
        bucket.profile.absorb(pass);
        map.insert(key, bucket);
    }

    /// Accumulated per-query-shape profiles since open (or the last
    /// [`Database::reset_telemetry`]), sorted by shape key. Bounded at
    /// [`MAX_PROFILE_BUCKETS`] distinct shapes.
    pub fn query_profiles(&self) -> Vec<(String, ProfileBucket)> {
        let map = self.profiles.read();
        let mut out: Vec<(String, ProfileBucket)> =
            map.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Install (or with `None`, remove) a span-event sink. The sink is
    /// invoked synchronously from the engine thread on transaction, query,
    /// and trigger begin/end; it must be cheap and must not re-enter the
    /// database.
    pub fn set_trace_sink(&self, sink: Option<TraceSink>) {
        *self.trace.write() = sink;
    }

    /// Emit a span event if a sink is installed. `detail` is deferred so
    /// the common no-sink case allocates nothing.
    pub(crate) fn trace_event(
        &self,
        scope: TraceScope,
        phase: TracePhase,
        id: u64,
        detail: impl FnOnce() -> String,
    ) {
        let guard = self.trace.read();
        if let Some(sink) = guard.as_ref() {
            sink(&TraceEvent {
                scope,
                phase,
                id,
                detail: detail(),
            });
        }
    }

    // --------------------------------------------------- observability

    /// The always-on flight recorder: the last N spans of every request,
    /// in bounded memory. Inspect with [`FlightRecorder::for_trace`] /
    /// [`FlightRecorder::recent_traces`], or render with
    /// [`ode_obs::render_spans`].
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// The slow-query log (statements over the configured threshold).
    pub fn slow_log(&self) -> &SlowQueryLog {
        &self.slowlog
    }

    /// Accumulated per-cluster / per-index workload counters, sorted by
    /// key (`cluster:<class>` / `index:<class>.<field>`). Persisted into
    /// the catalog at every checkpoint, so they survive restarts.
    pub fn workload_stats(&self) -> Vec<WorkStatRow> {
        self.workstats.snapshot()
    }

    /// Record a write of `n` objects against a cluster's workload
    /// counters (commit pipeline).
    pub(crate) fn note_cluster_writes(&self, class_name: &str, n: u64) {
        if n > 0 {
            self.workstats
                .entry(&format!("cluster:{class_name}"))
                .writes
                .add(n);
        }
    }

    /// Drop cached pages (benchmarks: cold-cache runs).
    pub fn clear_cache(&self) -> Result<()> {
        Ok(self.store.clear_cache()?)
    }

    /// Flush everything and truncate the WAL. Also persists the workload
    /// statistics counters into the catalog so they survive restarts.
    ///
    /// Safe to call concurrently with committing writers: the single-writer
    /// era skipped the transaction gate here, and the multi-writer pipeline
    /// needs no gate either. The invariant that replaces it lives in the
    /// store — a checkpoint must never truncate WAL groups that are
    /// prepared (logged, possibly durable) but not yet applied to the
    /// pages, or a crash right after the truncate would lose them. The
    /// [`FileStore`] enforces this with a prepared-commit barrier
    /// (`pending_applies`): checkpoints wait until every claimed commit
    /// has applied, and opportunistic checkpoints skip while one is in
    /// flight (DESIGN.md §13; tested in
    /// `crates/storage/tests/group_commit.rs`).
    ///
    /// [`FileStore`]: ode_storage::FileStore
    pub fn checkpoint(&self) -> Result<()> {
        self.persist_workload_stats()?;
        Ok(self.store.checkpoint()?)
    }

    /// Write the accumulated workload counters into the catalog's single
    /// stats record (reserving its rid on first use, updating in place
    /// thereafter). A no-op when no counter has ever moved.
    fn persist_workload_stats(&self) -> Result<()> {
        let rows = self.workstats.snapshot();
        if rows.is_empty() {
            return Ok(());
        }
        // The apply-gate write lock alone excludes commit publish windows
        // and DDL, which is all this single-record store commit needs. No
        // epoch is claimed or bumped: epochs move only through the ordered
        // claim/publish sequence (DESIGN.md §13), and a snapshot reader
        // cannot observe this write mid-flight because it holds the apply
        // gate shared for its whole lifetime.
        let _apply = self.apply_gate.write();
        let mut inner = self.inner.write();
        let rec = CatalogRecord::Stats(rows).encode();
        let rid = match inner.catalog.stats_rid {
            Some(rid) => rid,
            None => self.store.reserve(CATALOG_HEAP, rec.len())?,
        };
        self.store.commit(vec![StoreOp::Put {
            heap: CATALOG_HEAP,
            rid,
            data: rec,
        }])?;
        inner.catalog.stats_rid = Some(rid);
        Ok(())
    }

    pub(crate) fn callback(&self, name: &str) -> Result<CallbackFn> {
        self.callbacks
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| OdeError::Trigger(format!("no callback registered as `{name}`")))
    }

    pub(crate) fn alloc_activation_id(&self) -> u64 {
        self.next_activation_id.fetch_add(1, Ordering::Relaxed)
    }

    // ------------------------------------------------- decoupled firing

    /// Install (or with `None`, remove) a fired-trigger event sink. While
    /// a sink is installed the database runs in *decoupled* firing mode:
    /// commits durably enqueue [`PendingEvent`]s (reported in
    /// [`crate::CommitInfo::enqueued`]) and hand them to the sink instead
    /// of running trigger actions inline, so commit latency no longer
    /// includes action time. Without a sink, firing is inline exactly as
    /// before.
    pub fn set_firing_sink(&self, sink: Option<FiringSink>) {
        *self.firing_sink.write() = sink;
    }

    /// Is a firing sink installed (decoupled mode)?
    pub fn firing_decoupled(&self) -> bool {
        self.firing_sink.read().is_some()
    }

    /// Install (or remove) the commit observer notified with each
    /// published write commit's write set (live subscriptions).
    pub fn set_commit_observer(&self, obs: Option<CommitObserver>) {
        *self.commit_observer.write() = obs;
    }

    /// Install (or remove) the scheduler status hook behind `.triggers`.
    pub fn set_sched_status_hook(&self, hook: Option<SchedStatusFn>) {
        *self.sched_hook.write() = hook;
    }

    /// Scheduler status rows, if a scheduler registered a hook.
    pub fn sched_status(&self) -> Option<Vec<(String, String)>> {
        self.sched_hook.read().as_ref().map(|f| f())
    }

    /// Fired-trigger events enqueued but not yet acknowledged, in event-id
    /// order. After a reopen this is the recovered backlog an attaching
    /// scheduler must drain.
    pub fn pending_events(&self) -> Vec<PendingEvent> {
        let inner = self.inner.read();
        let mut out: Vec<PendingEvent> = inner.pending.values().cloned().collect();
        out.sort_by_key(|e| e.id);
        out
    }

    /// Armed trigger activations, summarized as (trigger name, count),
    /// sorted by name — the `.triggers` inspection surface.
    pub fn activation_summary(&self) -> Vec<(String, usize)> {
        let inner = self.inner.read();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for a in inner.activations.values() {
            *counts.entry(a.trigger.as_str()).or_default() += 1;
        }
        let mut out: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort();
        out
    }

    /// Durably remove pending events without running them (dead-letter
    /// path: the scheduler gave up on the action). Deletes the per-event
    /// catalog records in one store batch under the apply gate alone, so
    /// it is safe from a scheduler worker even while write transactions
    /// run elsewhere (the scheduler owns each pending event exclusively).
    pub fn ack_pending(&self, ids: &[u64]) -> Result<()> {
        if ids.is_empty() {
            return Ok(());
        }
        let _apply = self.apply_gate.write();
        let mut inner = self.inner.write();
        let mut ops = Vec::new();
        for id in ids {
            if let Some(&rid) = inner.catalog.pending_rids.get(id) {
                ops.push(StoreOp::Delete {
                    heap: CATALOG_HEAP,
                    rid,
                });
            }
        }
        if ops.is_empty() {
            return Ok(());
        }
        self.store.commit(ops)?;
        for id in ids {
            inner.catalog.pending_rids.remove(id);
            inner.pending.remove(id);
        }
        Ok(())
    }

    /// Run one pending event's action in its own write transaction (the
    /// scheduler's dispatch entry). Acknowledges the event durably in the
    /// action's commit batch; returns the next-round events the action
    /// enqueued (cascade). A cascade past the configured limit is refused
    /// with a typed [`OdeError::TriggerCascade`] and the event is
    /// acknowledged so it cannot replay forever.
    pub fn dispatch_firing(&self, event: &PendingEvent) -> Result<Vec<PendingEvent>> {
        if event.depth as usize > self.config.trigger_cascade_limit {
            self.tel.triggers.action_failures.inc();
            self.tel.triggers.cascade_exhausted.inc();
            self.ack_pending(&[event.id])?;
            return Err(OdeError::TriggerCascade {
                limit: self.config.trigger_cascade_limit,
            });
        }
        crate::txn::run_one_event(self, event)
    }

    /// Live scheduler counters (queue depth, drain lag, dead letters).
    /// The attached scheduler increments these; snapshots flow out through
    /// [`Database::telemetry`] like every other counter group.
    pub fn sched_telemetry(&self) -> &ode_obs::SchedTelemetry {
        &self.tel.sched
    }

    pub(crate) fn alloc_event_id(&self) -> u64 {
        self.next_event_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Clone the installed firing sink, if any (commit path).
    pub(crate) fn firing_sink(&self) -> Option<FiringSink> {
        self.firing_sink.read().clone()
    }

    /// Notify the commit observer, if installed (commit path; called
    /// outside every engine lock).
    pub(crate) fn notify_commit(&self, note: &CommitNote) {
        let guard = self.commit_observer.read();
        if let Some(obs) = guard.as_ref() {
            obs(note);
        }
    }

    /// Is a commit observer installed? (Lets the commit path skip
    /// collecting the write list entirely in the common case.)
    pub(crate) fn has_commit_observer(&self) -> bool {
        self.commit_observer.read().is_some()
    }
}

fn builder_name(b: &ClassBuilder) -> String {
    // ClassBuilder keeps its name private to the model crate; recover it
    // through Debug-free cloning: define() needs the builder whole, so we
    // read the name before handing it over.
    b.name().to_string()
}

/// Scan the deep extent of `class` and build a fresh index on `field`.
fn build_index(
    store: &dyn Store,
    inner: &DbInner,
    class: ClassId,
    field: &str,
) -> Result<BTreeIndex> {
    let mut ix = BTreeIndex::new();
    for (member_class, heap) in inner.extent_heaps(class, true) {
        let def = inner.schema.class(member_class)?;
        let Ok(slot) = def.field_index(field) else {
            continue; // class lacks the field (possible for siblings)
        };
        let mut pairs = Vec::new();
        store.scan(heap, &mut |rid, bytes| {
            if is_anchor(bytes) {
                pairs.push((rid, bytes.to_vec()));
            }
            Ok(true)
        })?;
        for (rid, bytes) in pairs {
            let oid = Oid { cluster: heap, rid };
            let state = match decode_record(&bytes)? {
                ObjRecord::Plain(s) => s,
                ObjRecord::Anchor(table) => {
                    let vrid = table.current_rid()?;
                    match decode_record(&store.read(heap, vrid)?)? {
                        ObjRecord::VersionRec { state, .. } => state,
                        _ => {
                            return Err(OdeError::Version(format!(
                                "anchor {oid} points at a non-version record"
                            )))
                        }
                    }
                }
                ObjRecord::VersionRec { .. } => continue,
            };
            if let Some(v) = state.fields.get(slot) {
                if !v.is_null() {
                    ix.insert(v.clone(), oid);
                }
            }
        }
    }
    Ok(ix)
}
