//! Declarative iteration — the paper's `forall` construct (§3).
//!
//! ```text
//! for all x in cluster [suchthat (condition)] [by (expression)] statement
//! ```
//!
//! * Iterating a cluster visits its **hierarchy** by default (§3.1.1): the
//!   extent of `person` includes students and faculty, which is what makes
//!   the paper's `p is student` dispatch example meaningful. Use
//!   [`Forall::shallow`] for the exact-class extent only.
//! * [`Forall::suchthat`] takes the expression language; conjuncts over an
//!   indexed field are satisfied from the index (§3.1's "used to advantage
//!   in query optimization"), the rest are filtered.
//! * [`Forall::by`] orders by an expression, ascending or descending.
//! * [`Forall::fixpoint`] also visits objects **added during the
//!   iteration** (§3.2) — the least-fixpoint facility behind recursive
//!   queries like the parts explosion.
//! * Multiple loop variables (join queries, §3.1) via
//!   [`Transaction::forall_join`]: `forall e in employee, d in dept
//!   suchthat (e.deptno == d.dno)`.
//! * [`Transaction::iterate_set`] walks a set-valued field with the same
//!   add-during-iteration guarantee, for set-based fixpoints.
//!
//! The machinery is generic over [`ReadContext`]: queries run identically
//! inside a write [`Transaction`] (overlay included) and a snapshot
//! [`crate::read::ReadTransaction`] (committed state, shared access —
//! DESIGN.md §8). Mutating terminals ([`Forall::run`], fixpoints, join
//! bodies) exist only on the `Transaction` instantiation.

use std::collections::{HashMap, HashSet};
use std::ops::Bound;

use ode_model::eval::EvalCtx;
use ode_model::{extract_field_ranges, parse_expr, BinOp, ClassId, Expr, ObjState, Oid, Value};
use ode_obs::{PlanStrategy, QueryProfile, SpanStage, TracePhase, TraceScope};

use crate::database::DbInner;
use crate::error::{OdeError, Result};
use crate::read::{ReadContext, ReadTransaction};

/// A native predicate over object state (host-language filter).
pub type FilterFn<'t> = Box<dyn FnMut(&ObjState) -> bool + 't>;
use crate::txn::Transaction;

/// Sort direction for `by` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Asc,
    Desc,
}

/// A `forall` iteration under construction, generic over the transaction
/// kind it reads through (`C` = [`Transaction`] or
/// [`ReadTransaction`]).
pub struct Forall<'t, C> {
    tx: &'t mut C,
    class_name: String,
    deep: bool,
    suchthat: Option<Expr>,
    by: Option<(Expr, Dir)>,
    fixpoint: bool,
    /// Loop-variable name bound to the current object during predicate and
    /// key evaluation, enabling `p.age` / `p is student` forms (§3.1.1).
    var: Option<String>,
    /// Native predicate (Rust closure) applied after `suchthat` — the
    /// host-language escape hatch, also used by the interpreter-overhead
    /// ablation (figure A1).
    filter: Option<FilterFn<'t>>,
}

pub(crate) fn new_forall<'t, C: ReadContext>(
    tx: &'t mut C,
    class_name: &str,
) -> Result<Forall<'t, C>> {
    tx.db().tel.query.foralls.inc();
    // Validate the class name early for a good error.
    {
        let inner = tx.db().inner.read();
        inner.schema.id_of(class_name)?;
    }
    Ok(Forall {
        tx,
        class_name: class_name.to_string(),
        deep: true,
        suchthat: None,
        by: None,
        fixpoint: false,
        var: None,
        filter: None,
    })
}

pub(crate) fn new_forall_join<'t, C: ReadContext>(
    tx: &'t mut C,
    vars: &[(&str, &str)],
) -> Result<ForallJoin<'t, C>> {
    tx.db().tel.query.joins.inc();
    if vars.is_empty() {
        return Err(OdeError::Usage(
            "forall_join needs at least one variable".into(),
        ));
    }
    {
        let inner = tx.db().inner.read();
        for (_, class) in vars {
            inner.schema.id_of(class)?;
        }
    }
    Ok(ForallJoin {
        tx,
        vars: vars
            .iter()
            .map(|(v, c)| (v.to_string(), c.to_string()))
            .collect(),
        suchthat: None,
    })
}

impl<'db> Transaction<'db> {
    /// Start a `forall x in <cluster>` iteration (§3.1). The cluster need
    /// not exist yet (an empty iteration results), but the class must.
    pub fn forall<'t>(&'t mut self, class_name: &str) -> Result<Forall<'t, Transaction<'db>>> {
        self.ensure_live()?;
        new_forall(self, class_name)
    }

    /// Multi-variable iteration — the join form of §3.1:
    /// `forall e in employee, d in dept suchthat (...)`.
    pub fn forall_join<'t>(
        &'t mut self,
        vars: &[(&str, &str)],
    ) -> Result<ForallJoin<'t, Transaction<'db>>> {
        self.ensure_live()?;
        new_forall_join(self, vars)
    }

    /// Iterate a set-valued field with §3.2 semantics: elements inserted
    /// into the set *during* the iteration are visited too (set fixpoint).
    /// Returns the number of elements visited.
    pub fn iterate_set(
        &mut self,
        oid: Oid,
        field: &str,
        mut f: impl FnMut(&mut Transaction<'db>, &Value) -> Result<()>,
    ) -> Result<usize> {
        let slot = {
            let state = self.read(oid)?;
            let inner = self.db.inner.read();
            inner.schema.class(state.class)?.field_index(field)?
        };
        // The committed image cannot change under this transaction; load it
        // at most once. If the body writes the object, the write-set copy
        // is borrowed in place each step (no re-decode, no clone).
        let mut committed: Option<ObjState> = None;
        let mut i = 0usize;
        loop {
            if self.deleted.contains_key(&oid) {
                return Err(OdeError::NoSuchObject(format!(
                    "{oid} (deleted mid-iteration)"
                )));
            }
            let elem: Option<Value> = if let Some(obj) = self.writes.get(&oid) {
                obj.state.fields[slot].as_set()?.get(i).cloned()
            } else {
                if committed.is_none() {
                    committed = Some(self.read(oid)?);
                }
                committed.as_ref().expect("just loaded").fields[slot]
                    .as_set()?
                    .get(i)
                    .cloned()
            };
            let Some(elem) = elem else {
                return Ok(i);
            };
            i += 1;
            f(self, &elem)?;
        }
    }

    /// Stream the (deep or shallow) extent of a class as this transaction
    /// sees it: the committed extent with the write-set overlaid in place
    /// (overlay states are *borrowed*, never cloned), followed by objects
    /// created by this transaction, in creation order. Nothing is
    /// materialized — see [`ReadContext::for_each_extent`].
    ///
    /// Phantom-protection bookkeeping brackets the iteration: each heap's
    /// scan entry is recorded (epoch observed) *before* that heap streams,
    /// so a commit publishing mid-scan stamps a newer epoch and fails this
    /// transaction's validation. If the visitor stops early or errors, the
    /// recorded entries for every heap touched so far are widened to
    /// whole-heap (`note_scan_unbounded`): a partial iteration's outcome
    /// depends on enumeration order, not just the hinted key ranges, so a
    /// narrowed entry would be unsound (DESIGN.md §14).
    pub(crate) fn stream_extent(
        &self,
        class_name: &str,
        deep: bool,
        visit: &mut dyn FnMut(Oid, &ObjState) -> Result<bool>,
    ) -> Result<()> {
        let heaps = {
            let inner = self.db.inner.read();
            let class = inner.schema.id_of(class_name)?;
            inner.extent_heaps(class, deep)
        };
        let heap_ids = crate::read::dedup_heaps(&heaps);
        let mut noted: Vec<u32> = Vec::new();
        let outcome = (|| -> Result<bool> {
            for &heap in &heap_ids {
                // Phantom protection: validation compares this heap's last
                // write stamp against the epoch observed here, before any
                // of the heap's pages are read (DESIGN.md §13).
                self.note_extent_scan(heap);
                noted.push(heap);
                let complete =
                    crate::read::stream_committed_heap(self.db, heap, &mut |oid, state| {
                        if self.deleted.contains_key(&oid) {
                            return Ok(true);
                        }
                        match self.writes.get(&oid) {
                            // Overlay replaces the committed state in place.
                            Some(obj) => visit(oid, &obj.state),
                            None => visit(oid, state),
                        }
                    })?;
                if !complete {
                    return Ok(false);
                }
            }
            // Overlay tail: objects created by this transaction. Their
            // slots are reserved (invisible to committed scans) until
            // commit, so this is disjoint from the committed pass.
            let heap_set: HashSet<u32> = heap_ids.iter().copied().collect();
            for &oid in &self.write_order {
                if !heap_set.contains(&oid.cluster) {
                    continue;
                }
                if let Some(obj) = self.writes.get(&oid) {
                    if obj.new && !visit(oid, &obj.state)? {
                        return Ok(false);
                    }
                }
            }
            Ok(true)
        })();
        match outcome {
            Ok(true) => Ok(()),
            Ok(false) => {
                self.note_scan_unbounded(&noted);
                Ok(())
            }
            Err(e) => {
                self.note_scan_unbounded(&noted);
                Err(e)
            }
        }
    }
}

impl<'db> ReadTransaction<'db> {
    /// Start a read-only `forall x in <cluster>` iteration (§3.1) against
    /// this snapshot. All non-mutating terminals (`collect_oids`, `count`,
    /// aggregates, `collect_values`) are available; `run`/`fixpoint` need
    /// a write [`Transaction`].
    pub fn forall<'t>(&'t mut self, class_name: &str) -> Result<Forall<'t, ReadTransaction<'db>>> {
        new_forall(self, class_name)
    }

    /// Multi-variable read-only iteration (join form of §3.1).
    pub fn forall_join<'t>(
        &'t mut self,
        vars: &[(&str, &str)],
    ) -> Result<ForallJoin<'t, ReadTransaction<'db>>> {
        new_forall_join(self, vars)
    }
}

/// Try to answer an equality/range conjunct from an index. Returns the
/// indexed field plus matching oids (which still must pass the full
/// predicate), or `None` when no index applies.
fn index_candidates(
    inner: &DbInner,
    class: ClassId,
    expr: &Expr,
    var: Option<&str>,
) -> Option<(String, Vec<Oid>)> {
    // Split top-level conjunction.
    fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary(BinOp::And, l, r) = e {
            conjuncts(l, out);
            conjuncts(r, out);
        } else {
            out.push(e);
        }
    }
    // A field reference is either a bare identifier or `v.field` where `v`
    // is the bound loop variable.
    let as_field = |e: &Expr| -> Option<String> {
        match e {
            Expr::Ident(f) => Some(f.clone()),
            Expr::Path(base, f) => match (&**base, var) {
                (Expr::Ident(v), Some(bound)) if v == bound => Some(f.clone()),
                _ => None,
            },
            _ => None,
        }
    };
    let mut cs = Vec::new();
    conjuncts(expr, &mut cs);
    for c in cs {
        let Expr::Binary(op, l, r) = c else { continue };
        // Normalize to  field <op> literal.
        let (field, lit, op) = match (as_field(l), as_field(r), &**l, &**r) {
            (Some(f), _, _, Expr::Lit(v)) => (f, v, *op),
            (_, Some(f), Expr::Lit(v), _) => {
                let flipped = match *op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => other,
                };
                (f, v, flipped)
            }
            _ => continue,
        };
        let Some(ix) = inner.indexes.get(&(class, field.clone())) else {
            continue;
        };
        let oids = match op {
            BinOp::Eq => ix.lookup(lit),
            BinOp::Lt => ix.range(Bound::Unbounded, Bound::Excluded(lit)),
            BinOp::Le => ix.range(Bound::Unbounded, Bound::Included(lit)),
            BinOp::Gt => ix.range(Bound::Excluded(lit), Bound::Unbounded),
            BinOp::Ge => ix.range(Bound::Included(lit), Bound::Unbounded),
            _ => continue,
        };
        return Some((field, oids));
    }
    None
}

impl<'t, C: ReadContext> Forall<'t, C> {
    /// Restrict to the exact class (no derived-class members).
    pub fn shallow(mut self) -> Self {
        self.deep = false;
        self
    }

    /// Attach a `suchthat` predicate (expression-language source).
    pub fn suchthat(mut self, src: &str) -> Result<Self> {
        self.suchthat = Some(parse_expr(src)?);
        Ok(self)
    }

    /// Attach a pre-built predicate expression.
    pub fn suchthat_expr(mut self, e: Expr) -> Self {
        self.suchthat = Some(e);
        self
    }

    /// Order ascending by an expression (the `by` clause).
    pub fn by(mut self, src: &str) -> Result<Self> {
        self.by = Some((parse_expr(src)?, Dir::Asc));
        Ok(self)
    }

    /// Order descending by an expression.
    pub fn by_desc(mut self, src: &str) -> Result<Self> {
        self.by = Some((parse_expr(src)?, Dir::Desc));
        Ok(self)
    }

    /// Bind the loop variable's name: `forall p in person` makes `p`
    /// available in `suchthat`/`by` expressions as a reference to the
    /// current object, so `p is student` and `p.name` both work alongside
    /// bare field names.
    pub fn bind(mut self, var: &str) -> Self {
        self.var = Some(var.to_string());
        self
    }

    /// Filter with a native Rust closure over the object state (the host
    /// language escape hatch — O++ bodies are C++, after all). Applied in
    /// addition to any `suchthat` expression.
    pub fn filter(mut self, f: impl FnMut(&ObjState) -> bool + 't) -> Self {
        self.filter = Some(Box::new(f));
        self
    }

    /// Materialize the qualifying oids (after suchthat/by, before body).
    pub fn collect_oids(self) -> Result<Vec<Oid>> {
        self.collect_oids_profiled(&mut QueryProfile::default())
    }

    /// Like [`Forall::collect_oids`], additionally accumulating the query's
    /// execution profile (plan choice, objects scanned, predicate
    /// evaluations) into `prof` — the engine behind OQL's `explain`.
    pub fn collect_oids_profiled(self, prof: &mut QueryProfile) -> Result<Vec<Oid>> {
        let Forall {
            tx,
            class_name,
            deep,
            suchthat,
            by,
            fixpoint,
            var,
            mut filter,
        } = self;
        if fixpoint {
            return Err(OdeError::Usage(
                "collect_oids is a snapshot; fixpoint iteration needs run()".into(),
            ));
        }
        candidates(
            &*tx,
            &class_name,
            deep,
            &suchthat,
            &by,
            var.as_deref(),
            &mut filter,
            prof,
        )
    }

    /// Count qualifying objects.
    pub fn count(self) -> Result<usize> {
        Ok(self.collect_oids()?.len())
    }

    /// Sum an expression over the qualifying objects (ints stay ints; any
    /// float makes the sum a float). The §3.1.1 income example is
    /// `forall("person").sum("income()")`.
    pub fn sum(self, expr_src: &str) -> Result<Value> {
        let vals = self.collect_values(expr_src)?;
        let mut int_acc: i64 = 0;
        let mut float_acc: f64 = 0.0;
        let mut saw_float = false;
        for v in vals {
            match v {
                Value::Int(i) => {
                    int_acc = int_acc
                        .checked_add(i)
                        .ok_or_else(|| OdeError::Usage("sum overflowed i64".into()))?;
                }
                Value::Float(x) => {
                    saw_float = true;
                    float_acc += x;
                }
                Value::Null => {}
                other => {
                    return Err(OdeError::Usage(format!(
                        "sum over a non-numeric value: {other}"
                    )))
                }
            }
        }
        Ok(if saw_float {
            Value::Float(float_acc + int_acc as f64)
        } else {
            Value::Int(int_acc)
        })
    }

    /// Arithmetic mean of an expression over the qualifying objects
    /// (`None` for an empty result).
    pub fn avg(self, expr_src: &str) -> Result<Option<f64>> {
        let vals = self.collect_values(expr_src)?;
        let nums: Vec<f64> = vals
            .iter()
            .filter(|v| !v.is_null())
            .map(|v| v.as_float())
            .collect::<ode_model::Result<_>>()?;
        if nums.is_empty() {
            return Ok(None);
        }
        Ok(Some(nums.iter().sum::<f64>() / nums.len() as f64))
    }

    /// Minimum of an expression over the qualifying objects.
    pub fn min(self, expr_src: &str) -> Result<Option<Value>> {
        Ok(self
            .collect_values(expr_src)?
            .into_iter()
            .filter(|v| !v.is_null())
            .min())
    }

    /// Maximum of an expression over the qualifying objects.
    pub fn max(self, expr_src: &str) -> Result<Option<Value>> {
        Ok(self
            .collect_values(expr_src)?
            .into_iter()
            .filter(|v| !v.is_null())
            .max())
    }

    /// Evaluate an expression for every qualifying object and collect the
    /// results (a projection).
    pub fn collect_values(self, src: &str) -> Result<Vec<Value>> {
        let proj = parse_expr(src)?;
        let Forall {
            tx,
            class_name,
            deep,
            suchthat,
            by,
            var,
            mut filter,
            ..
        } = self;
        let tx = &*tx;
        let oids = candidates(
            tx,
            &class_name,
            deep,
            &suchthat,
            &by,
            var.as_deref(),
            &mut filter,
            &mut QueryProfile::default(),
        )?;
        let inner = tx.db().inner.read();
        let mut out = Vec::with_capacity(oids.len());
        for oid in oids {
            let state = tx.read_obj(oid)?;
            let mut env = HashMap::new();
            if let Some(v) = &var {
                env.insert(v.clone(), Value::Ref(oid));
            }
            let v = EvalCtx::new(&inner.schema)
                .with_this(&state)
                .with_vars(&env)
                .with_resolver(tx)
                .eval(&proj)?;
            out.push(v);
        }
        Ok(out)
    }
}

impl<'t, 'db> Forall<'t, Transaction<'db>> {
    /// Also visit objects added to the extent during the iteration (§3.2's
    /// fixpoint facility). Incompatible with `by` (ordering over a growing
    /// domain is not well-defined).
    pub fn fixpoint(mut self) -> Self {
        self.fixpoint = true;
        self
    }

    /// Run the loop body over every qualifying object. The body may update,
    /// delete, and create objects; with [`Forall::fixpoint`], objects it
    /// adds to the extent are visited too. Returns the number of objects
    /// visited.
    pub fn run(self, f: impl FnMut(&mut Transaction<'db>, Oid) -> Result<()>) -> Result<usize> {
        self.run_profiled(&mut QueryProfile::default(), f)
    }

    /// Like [`Forall::run`], additionally accumulating the execution
    /// profile into `prof`; fixpoint iterations record one round (and its
    /// newly visited count) per re-evaluation pass.
    pub fn run_profiled(
        self,
        prof: &mut QueryProfile,
        mut f: impl FnMut(&mut Transaction<'db>, Oid) -> Result<()>,
    ) -> Result<usize> {
        let Forall {
            tx,
            class_name,
            deep,
            suchthat,
            by,
            fixpoint,
            var,
            mut filter,
        } = self;
        if fixpoint && by.is_some() {
            return Err(OdeError::Usage(
                "fixpoint iteration cannot be ordered with by()".into(),
            ));
        }
        let mut visited: HashSet<Oid> = HashSet::new();
        let mut n = 0usize;
        loop {
            let batch: Vec<Oid> = candidates(
                &*tx,
                &class_name,
                deep,
                &suchthat,
                &by,
                var.as_deref(),
                &mut filter,
                prof,
            )?
            .into_iter()
            .filter(|oid| !visited.contains(oid))
            .collect();
            if fixpoint && !batch.is_empty() {
                prof.fixpoint_rounds += 1;
                prof.fixpoint_new_by_round.push(batch.len() as u64);
                tx.db.tel.query.fixpoint_rounds.inc();
                tx.db.tel.query.fixpoint_new_objects.add(batch.len() as u64);
            }
            if batch.is_empty() {
                return Ok(n);
            }
            for oid in batch {
                visited.insert(oid);
                // The body may have deleted this object in a previous step.
                if !tx.exists(oid) {
                    continue;
                }
                f(tx, oid)?;
                n += 1;
            }
            if !fixpoint {
                return Ok(n);
            }
        }
    }
}

/// Publish one pass's profile into the database's global query counters
/// and the accumulated per-shape profile buckets.
fn publish_pass(db: &crate::database::Database, pass: &QueryProfile) {
    let q = &db.tel.query;
    q.clusters_visited.add(pass.clusters_visited);
    q.objects_scanned.add(pass.objects_scanned);
    q.predicate_evals.add(pass.predicate_evals);
    q.index_probes.add(pass.index_probes);
    if pass.strategy == PlanStrategy::DeepExtentScan {
        q.deep_extent_scans.inc();
    }
    // Per-cluster / per-index workload counters (persisted at checkpoint).
    let ws = db.workstats.entry(&format!("cluster:{}", pass.target));
    ws.scans.inc();
    ws.reads.add(pass.objects_scanned);
    if let PlanStrategy::IndexProbe { field } = &pass.strategy {
        db.workstats
            .entry(&format!("index:{}.{}", pass.target, field))
            .reads
            .add(pass.index_probes.max(1));
    }
    db.record_query_pass(pass);
}

/// RAII bracket around a statement-scoped scan-range hint
/// ([`ReadContext::scan_hint`]): installs the hint if the predicate pinned
/// any ranges, and retires it on drop — which covers *every* exit path out
/// of an enumeration, including `?` returns from mid-stream predicate or
/// sort-key evaluation errors. Before this guard the set/clear pairing was
/// manual, and an error between the two leaked a stale hint that would
/// mislabel the next scan's entries with the previous predicate's ranges.
///
/// Dropping after a widen (`note_scan_unbounded`) is harmless: widening
/// already cleared the hint, and clearing twice is idempotent.
struct ScanHintGuard<'a, C: ReadContext> {
    tx: &'a C,
    armed: bool,
}

impl<'a, C: ReadContext> ScanHintGuard<'a, C> {
    fn install(tx: &'a C, ranges: Vec<ode_model::FieldRange>) -> Self {
        let armed = !ranges.is_empty();
        if armed {
            tx.scan_hint(ranges);
        }
        ScanHintGuard { tx, armed }
    }
}

impl<C: ReadContext> Drop for ScanHintGuard<'_, C> {
    fn drop(&mut self) {
        if self.armed {
            self.tx.scan_hint_clear();
        }
    }
}

/// Enumerate + filter + order the qualifying oids. One call is one *pass*:
/// its work is accumulated into `prof` and the global query counters, and
/// bracketed by a Query trace span. Generic over the transaction kind.
#[allow(clippy::too_many_arguments)]
fn candidates<C: ReadContext>(
    tx: &C,
    class_name: &str,
    deep: bool,
    suchthat: &Option<Expr>,
    by: &Option<(Expr, Dir)>,
    var: Option<&str>,
    filter: &mut Option<FilterFn<'_>>,
    prof: &mut QueryProfile,
) -> Result<Vec<Oid>> {
    let db = tx.db();
    let serial = db
        .next_query_serial
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    db.trace_event(TraceScope::Query, TracePhase::Begin, serial, || {
        class_name.to_string()
    });
    let mut span = db.flight.span(SpanStage::Execute, class_name);
    let mut pass = QueryProfile {
        target: class_name.to_string(),
        ..QueryProfile::default()
    };
    let inner = db.inner.read();
    let class = inner.schema.id_of(class_name)?;

    // Index plan: equality/range conjunct over an indexed field. Index
    // entries reflect *committed* data, so the transaction's own writes
    // are merged back in below.
    let indexed: Option<(String, Vec<Oid>)> = if deep {
        suchthat
            .as_ref()
            .and_then(|e| index_candidates(&inner, class, e, var))
    } else {
        None
    };
    drop(inner);

    // Key ranges the predicate provably pins, announced before
    // enumeration: a write transaction then records predicate-level scan
    // entries instead of whole-heap ones, making it eligible for narrowed
    // validation at commit (DESIGN.md §14). The guard retires the hint on
    // every exit path, including `?` early returns — a stale hint would
    // mislabel the next scan.
    let pred_ranges = suchthat
        .as_ref()
        .map(|p| extract_field_ranges(p, var))
        .unwrap_or_default();
    let _hint = ScanHintGuard::install(tx, pred_ranges);

    // Result accumulators — O(qualifying rows), never O(extent). With a
    // `by` clause the sort key is evaluated as each object streams past
    // and only (key, oid) is retained for the final sort.
    let mut plain: Vec<Oid> = Vec::new();
    let mut keyed: Vec<(Value, Oid)> = Vec::new();

    match indexed {
        Some((field, oids)) => {
            pass.strategy = PlanStrategy::IndexProbe { field };
            pass.index_probes += 1;
            let mut pairs = Vec::with_capacity(oids.len());
            for oid in oids {
                if tx.is_deleted(oid) {
                    continue;
                }
                // An in-transaction write may have changed the key: the
                // state read here is authoritative; the predicate is
                // re-checked below either way.
                if let Ok(state) = tx.read_obj(oid) {
                    pairs.push((oid, state));
                }
            }
            // Objects written in this txn are missing from the committed
            // index — fold in any written object of the right classes.
            let inner = db.inner.read();
            // The probe answered from the committed deep extent: record the
            // backing heaps so commit-time validation catches phantoms the
            // same as an extent scan would.
            let probe_heaps: Vec<u32> = inner
                .extent_heaps(class, true)
                .iter()
                .map(|&(_, h)| h)
                .collect();
            tx.note_scan(&probe_heaps);
            let scanned_heaps = probe_heaps;
            let seen: HashSet<Oid> = pairs.iter().map(|p| p.0).collect();
            tx.for_each_overlay(&mut |oid, state| {
                if seen.contains(&oid) || !inner.schema.is_subclass(state.class, class) {
                    return Ok(());
                }
                // The one place overlay states are cloned at all: the probe
                // result is O(selectivity), and only class-matching writes
                // join it. Extent scans borrow overlay states in place.
                db.tel.query.overlay_clones.inc();
                pairs.push((oid, state.clone()));
                Ok(())
            })?;
            pass.objects_scanned = pairs.len() as u64;
            let mut env: HashMap<String, Value> = HashMap::new();
            for (oid, state) in pairs {
                if !deep && state.class != class {
                    continue;
                }
                if let Some(pred) = suchthat {
                    if let Some(v) = var {
                        env.insert(v.to_string(), Value::Ref(oid));
                    }
                    pass.predicate_evals += 1;
                    let ok = EvalCtx::new(&inner.schema)
                        .with_this(&state)
                        .with_vars(&env)
                        .with_resolver(tx)
                        .eval_bool(pred)
                        .inspect_err(|_| {
                            // Short-circuit evaluation means the error
                            // itself can depend on rows outside the hinted
                            // ranges; which rows mattered is unknowable, so
                            // widen to whole heaps.
                            tx.scan_widen(&scanned_heaps);
                        })?;
                    if !ok {
                        continue;
                    }
                }
                if let Some(f) = filter.as_mut() {
                    if !f(&state) {
                        continue;
                    }
                }
                match by {
                    Some((key_expr, _)) => {
                        if let Some(v) = var {
                            env.insert(v.to_string(), Value::Ref(oid));
                        }
                        let k = EvalCtx::new(&inner.schema)
                            .with_this(&state)
                            .with_vars(&env)
                            .with_resolver(tx)
                            .eval(key_expr)
                            .inspect_err(|_| {
                                // A failed `by` key still aborts an
                                // enumeration whose result the transaction
                                // may already have acted on.
                                tx.scan_widen(&scanned_heaps);
                            })?;
                        keyed.push((k, oid));
                    }
                    None => plain.push(oid),
                }
            }
        }
        None => {
            pass.strategy = if deep {
                PlanStrategy::DeepExtentScan
            } else {
                PlanStrategy::ShallowExtentScan
            };
            pass.clusters_visited = {
                let inner = db.inner.read();
                inner.extent_heaps(class, deep).len() as u64
            };
            // Predicate, filter and sort key all run *inside* the stream:
            // each decoded state lives only for its visit, so N concurrent
            // scans hold N pages, not N extents. Eval errors propagate out
            // of the visitor and the streaming layer widens every heap
            // noted so far to a whole-heap scan entry (DESIGN.md §14) —
            // heaps not yet reached recorded no entry and promised
            // nothing.
            let inner = db.inner.read();
            let mut env: HashMap<String, Value> = HashMap::new();
            tx.for_each_extent(class_name, deep, &mut |oid, state| {
                pass.objects_scanned += 1;
                // Shallow iteration drops subclass members.
                if !deep && state.class != class {
                    return Ok(true);
                }
                if let Some(pred) = suchthat {
                    if let Some(v) = var {
                        env.insert(v.to_string(), Value::Ref(oid));
                    }
                    pass.predicate_evals += 1;
                    let ok = EvalCtx::new(&inner.schema)
                        .with_this(state)
                        .with_vars(&env)
                        .with_resolver(tx)
                        .eval_bool(pred)?;
                    if !ok {
                        return Ok(true);
                    }
                }
                if let Some(f) = filter.as_mut() {
                    if !f(state) {
                        return Ok(true);
                    }
                }
                match by {
                    Some((key_expr, _)) => {
                        if let Some(v) = var {
                            env.insert(v.to_string(), Value::Ref(oid));
                        }
                        let k = EvalCtx::new(&inner.schema)
                            .with_this(state)
                            .with_vars(&env)
                            .with_resolver(tx)
                            .eval(key_expr)?;
                        keyed.push((k, oid));
                    }
                    None => plain.push(oid),
                }
                Ok(true)
            })?;
        }
    }

    let result: Vec<Oid> = if let Some((_, dir)) = by {
        keyed.sort_by(|a, b| a.0.cmp(&b.0).then(a.1.cmp(&b.1)));
        if *dir == Dir::Desc {
            keyed.reverse();
        }
        keyed.into_iter().map(|(_, oid)| oid).collect()
    } else {
        plain
    };

    pass.rows = result.len() as u64;
    publish_pass(db, &pass);
    span.set_detail(format!("{} via {}", pass.target, pass.strategy));
    db.trace_event(TraceScope::Query, TracePhase::End, serial, || {
        format!("{} via {}", pass.target, pass.strategy)
    });
    prof.absorb(&pass);
    Ok(result)
}

/// A multi-variable `forall` (join query, §3.1), generic over the
/// transaction kind like [`Forall`].
pub struct ForallJoin<'t, C> {
    tx: &'t mut C,
    vars: Vec<(String, String)>,
    suchthat: Option<Expr>,
}

impl<C: ReadContext> ForallJoin<'_, C> {
    /// Attach the join predicate, e.g. `"e.deptno == d.dno"`. Loop
    /// variables appear as bare identifiers.
    pub fn suchthat(mut self, src: &str) -> Result<Self> {
        self.suchthat = Some(parse_expr(src)?);
        Ok(self)
    }

    /// Attach a pre-built predicate.
    pub fn suchthat_expr(mut self, e: Expr) -> Self {
        self.suchthat = Some(e);
        self
    }

    /// Materialize all qualifying bindings (tuples of oids, one per
    /// variable, in declaration order).
    pub fn collect(self) -> Result<Vec<Vec<Oid>>> {
        self.collect_profiled(&mut QueryProfile::default())
    }

    /// Like [`ForallJoin::collect`], additionally accumulating the join's
    /// execution profile into `prof`.
    pub fn collect_profiled(self, prof: &mut QueryProfile) -> Result<Vec<Vec<Oid>>> {
        collect_join(&*self.tx, &self.vars, &self.suchthat, prof)
    }
}

impl<'db> ForallJoin<'_, Transaction<'db>> {
    /// Run the body over every qualifying binding. The binding map gives
    /// each loop variable's object.
    pub fn run(
        self,
        mut f: impl FnMut(&mut Transaction<'db>, &HashMap<String, Oid>) -> Result<()>,
    ) -> Result<usize> {
        let ForallJoin { tx, vars, suchthat } = self;
        let rows = collect_join(&*tx, &vars, &suchthat, &mut QueryProfile::default())?;
        let names: Vec<String> = vars.into_iter().map(|(v, _)| v).collect();
        let mut n = 0usize;
        for row in rows {
            let map: HashMap<String, Oid> = names.iter().cloned().zip(row).collect();
            f(tx, &map)?;
            n += 1;
        }
        Ok(n)
    }
}

/// A per-variable index probe derived from the join predicate: for
/// variable `v` with conjunct `v.field == <expr over earlier vars>`, the
/// candidates at `v`'s depth come from the index on `(class(v), field)`
/// instead of the full extent. Over-approximation is fine — the leaf
/// re-evaluates the whole predicate — but candidates must never be
/// *missed*, so the transaction's own writes are merged back in.
struct ProbePlan {
    field: String,
    key_expr: Expr,
}

/// Find probe plans: one optional plan per variable (never the first —
/// its loop is the outer driver).
fn build_probe_plans(
    inner: &DbInner,
    vars: &[(String, String)],
    suchthat: &Option<Expr>,
) -> Result<Vec<Option<ProbePlan>>> {
    let mut plans: Vec<Option<ProbePlan>> = (0..vars.len()).map(|_| None).collect();
    let Some(pred) = suchthat else {
        return Ok(plans);
    };
    fn conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary(BinOp::And, l, r) = e {
            conjuncts(l, out);
            conjuncts(r, out);
        } else {
            out.push(e);
        }
    }
    let mut cs = Vec::new();
    conjuncts(pred, &mut cs);
    for d in 1..vars.len() {
        let (var, class_name) = &vars[d];
        let Ok(class) = inner.schema.id_of(class_name) else {
            continue;
        };
        let earlier: Vec<&str> = vars[..d].iter().map(|(v, _)| v.as_str()).collect();
        for c in &cs {
            let Expr::Binary(BinOp::Eq, l, r) = c else {
                continue;
            };
            // Normalize: one side is `var.field`, the other references only
            // earlier variables (or is constant).
            let candidates = [(&**l, &**r), (&**r, &**l)];
            for (lhs, rhs) in candidates {
                let Expr::Path(base, field) = lhs else {
                    continue;
                };
                let Expr::Ident(base_var) = &**base else {
                    continue;
                };
                if base_var != var {
                    continue;
                }
                let rhs_vars = rhs.free_idents();
                if !rhs_vars.iter().all(|v| earlier.contains(v)) {
                    continue;
                }
                if !inner.indexes.contains_key(&(class, field.clone())) {
                    continue;
                }
                plans[d] = Some(ProbePlan {
                    field: field.clone(),
                    key_expr: rhs.clone(),
                });
                break;
            }
            if plans[d].is_some() {
                break;
            }
        }
    }
    Ok(plans)
}

/// Nested-loop join over the variables' (deep) extents, with the predicate
/// evaluated under an environment binding each variable to its object.
/// Inner variables whose join key is indexed are *probed* (index lookup
/// per outer binding) rather than enumerated — §3.1's "query optimization"
/// applied to joins.
fn collect_join<C: ReadContext>(
    tx: &C,
    vars: &[(String, String)],
    suchthat: &Option<Expr>,
    prof: &mut QueryProfile,
) -> Result<Vec<Vec<Oid>>> {
    let db = tx.db();
    let serial = db
        .next_query_serial
        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let target = vars
        .iter()
        .map(|(_, c)| c.as_str())
        .collect::<Vec<_>>()
        .join(",");
    db.trace_event(TraceScope::Query, TracePhase::Begin, serial, || {
        target.clone()
    });
    let mut span = db.flight.span(SpanStage::Execute, target.as_str());
    let mut pass = QueryProfile {
        target: target.clone(),
        strategy: PlanStrategy::NestedLoopJoin,
        ..QueryProfile::default()
    };
    let inner = db.inner.read();
    let plans = build_probe_plans(&inner, vars, suchthat)?;
    drop(inner);

    // Enumerate extents only for non-probed variables — as *oid lists*
    // (the nested loop re-visits them once per outer binding, but decoded
    // states are never retained; the leaf re-reads through the resolver).
    // For probed variables, precompute the (small) overlay of
    // transaction-written objects whose class fits — committed index
    // entries cannot see those. Overlay states are borrowed during the
    // filter, never cloned.
    let mut extents: Vec<Vec<Oid>> = Vec::with_capacity(vars.len());
    let mut overlays: Vec<Vec<Oid>> = Vec::with_capacity(vars.len());
    {
        let inner = db.inner.read();
        for (d, (_, class_name)) in vars.iter().enumerate() {
            extents.push(Vec::new()); // probed: stays empty; else filled below
            if plans[d].is_some() {
                let class = inner.schema.id_of(class_name)?;
                let mut overlay: Vec<Oid> = Vec::new();
                tx.for_each_overlay(&mut |oid, state| {
                    if !tx.is_deleted(oid) && inner.schema.is_subclass(state.class, class) {
                        overlay.push(oid);
                    }
                    Ok(())
                })?;
                overlays.push(overlay);
            } else {
                overlays.push(Vec::new());
            }
        }
    }
    let mut enumerated_vars = 0u64;
    for (d, (_, class_name)) in vars.iter().enumerate() {
        if plans[d].is_none() {
            {
                let inner = db.inner.read();
                let class = inner.schema.id_of(class_name)?;
                pass.clusters_visited += inner.extent_heaps(class, true).len() as u64;
            }
            let mut oids = Vec::new();
            tx.for_each_extent(class_name, true, &mut |oid, _| {
                oids.push(oid);
                Ok(true)
            })?;
            extents[d] = oids;
            enumerated_vars += 1;
        }
    }

    let inner = db.inner.read();
    let mut out = Vec::new();
    let mut binding: Vec<Oid> = Vec::with_capacity(vars.len());
    let mut env: HashMap<String, Value> = HashMap::new();
    #[allow(clippy::too_many_arguments)]
    fn rec<C: ReadContext>(
        tx: &C,
        inner: &DbInner,
        vars: &[(String, String)],
        extents: &[Vec<Oid>],
        overlays: &[Vec<Oid>],
        plans: &[Option<ProbePlan>],
        suchthat: &Option<Expr>,
        depth: usize,
        binding: &mut Vec<Oid>,
        env: &mut HashMap<String, Value>,
        out: &mut Vec<Vec<Oid>>,
        pass: &mut QueryProfile,
    ) -> Result<()> {
        let schema = &inner.schema;
        if depth == vars.len() {
            if let Some(pred) = suchthat {
                pass.predicate_evals += 1;
                let ctx = EvalCtx::new(schema).with_vars(env).with_resolver(tx);
                if !ctx.eval_bool(pred)? {
                    return Ok(());
                }
            }
            out.push(binding.clone());
            return Ok(());
        }
        // Candidate oids at this depth: probe or enumerate.
        let oids: Vec<Oid> = match &plans[depth] {
            Some(plan) => {
                let class = schema.id_of(&vars[depth].1)?;
                let key = EvalCtx::new(schema)
                    .with_vars(env)
                    .with_resolver(tx)
                    .eval(&plan.key_expr)?;
                if key.is_null() {
                    // Null keys are not indexed; fall back to streaming
                    // this variable's extent for this outer binding.
                    let mut oids = Vec::new();
                    tx.for_each_extent(&vars[depth].1, true, &mut |oid, _| {
                        oids.push(oid);
                        Ok(true)
                    })?;
                    oids
                } else {
                    let ix = inner
                        .indexes
                        .get(&(class, plan.field.clone()))
                        .expect("probe plan implies index");
                    pass.index_probes += 1;
                    let mut oids = ix.lookup(&key);
                    oids.retain(|oid| !tx.is_deleted(*oid) && !tx.overlay_contains(*oid));
                    // Transaction-written objects re-checked by the leaf.
                    oids.extend_from_slice(&overlays[depth]);
                    oids
                }
            }
            None => extents[depth].clone(),
        };
        pass.objects_scanned += oids.len() as u64;
        for oid in oids {
            binding.push(oid);
            env.insert(vars[depth].0.clone(), Value::Ref(oid));
            rec(
                tx,
                inner,
                vars,
                extents,
                overlays,
                plans,
                suchthat,
                depth + 1,
                binding,
                env,
                out,
                pass,
            )?;
            env.remove(&vars[depth].0);
            binding.pop();
        }
        Ok(())
    }
    rec(
        tx,
        &inner,
        vars,
        &extents,
        &overlays,
        &plans,
        suchthat,
        0,
        &mut binding,
        &mut env,
        &mut out,
        &mut pass,
    )?;
    drop(inner);

    pass.rows = out.len() as u64;
    let q = &db.tel.query;
    q.clusters_visited.add(pass.clusters_visited);
    q.objects_scanned.add(pass.objects_scanned);
    q.predicate_evals.add(pass.predicate_evals);
    q.index_probes.add(pass.index_probes);
    q.deep_extent_scans.add(enumerated_vars);
    for (_, class_name) in vars {
        let ws = db.workstats.entry(&format!("cluster:{class_name}"));
        ws.scans.inc();
    }
    db.record_query_pass(&pass);
    span.set_detail(format!("{target} via {}", pass.strategy));
    db.trace_event(TraceScope::Query, TracePhase::End, serial, || {
        format!("{target} via {}", pass.strategy)
    });
    prof.absorb(&pass);
    Ok(out)
}
