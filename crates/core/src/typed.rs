//! Typed Rust facade over the dynamic object model.
//!
//! O++ programs manipulate persistent objects with the host language's own
//! types; the Rust analogue is a struct implementing [`OdeInstance`], which
//! maps between the struct and the engine's field/value representation.
//! [`Persistent<T>`] is a typed wrapper around an [`Oid`] — the moral
//! equivalent of the paper's `persistent stockitem *` pointer type.
//!
//! ```no_run
//! use ode_core::prelude::*;
//! use ode_core::typed::OdeInstance;
//!
//! struct StockItem {
//!     name: String,
//!     quantity: i64,
//! }
//!
//! impl OdeInstance for StockItem {
//!     fn class_name() -> &'static str {
//!         "stockitem"
//!     }
//!     fn to_fields(&self) -> Vec<(&'static str, Value)> {
//!         vec![
//!             ("name", Value::from(self.name.as_str())),
//!             ("quantity", Value::Int(self.quantity)),
//!         ]
//!     }
//!     fn from_fields(get: &dyn Fn(&str) -> Option<Value>) -> ode_core::Result<Self> {
//!         Ok(StockItem {
//!             name: get("name").and_then(|v| v.as_str().ok().map(String::from)).unwrap_or_default(),
//!             quantity: get("quantity").and_then(|v| v.as_int().ok()).unwrap_or(0),
//!         })
//!     }
//! }
//! ```

use std::marker::PhantomData;

use ode_model::{Oid, Value};

use crate::error::Result;
use crate::txn::Transaction;

/// A Rust type mirroring an Ode class.
pub trait OdeInstance: Sized {
    /// The Ode class this type maps to.
    fn class_name() -> &'static str;

    /// Project the struct into `(field, value)` pairs (used by `pnew` and
    /// store-back).
    fn to_fields(&self) -> Vec<(&'static str, Value)>;

    /// Rebuild the struct from field values. `get` returns `None` for
    /// unknown field names.
    fn from_fields(get: &dyn Fn(&str) -> Option<Value>) -> Result<Self>;
}

/// A typed persistent pointer — `persistent T*` in the paper's notation.
pub struct Persistent<T: OdeInstance> {
    /// The underlying object identity.
    pub oid: Oid,
    _marker: PhantomData<fn() -> T>,
}

impl<T: OdeInstance> Clone for Persistent<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T: OdeInstance> Copy for Persistent<T> {}

impl<T: OdeInstance> std::fmt::Debug for Persistent<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Persistent<{}>({})", T::class_name(), self.oid)
    }
}

impl<T: OdeInstance> PartialEq for Persistent<T> {
    fn eq(&self, other: &Self) -> bool {
        self.oid == other.oid
    }
}

impl<T: OdeInstance> Eq for Persistent<T> {}

impl<T: OdeInstance> Persistent<T> {
    /// Wrap a raw oid (checked on first access).
    pub fn from_oid(oid: Oid) -> Persistent<T> {
        Persistent {
            oid,
            _marker: PhantomData,
        }
    }
}

impl<'db> Transaction<'db> {
    /// Typed `pnew`: persist a Rust value as a new object of its class.
    pub fn pnew_typed<T: OdeInstance>(&mut self, value: &T) -> Result<Persistent<T>> {
        let fields = value.to_fields();
        let inits: Vec<(&str, Value)> = fields.iter().map(|(n, v)| (*n, v.clone())).collect();
        let oid = self.pnew(T::class_name(), &inits)?;
        Ok(Persistent::from_oid(oid))
    }

    /// Typed read: materialize the object as its Rust type.
    pub fn fetch<T: OdeInstance>(&self, p: Persistent<T>) -> Result<T> {
        let state = self.read(p.oid)?;
        let inner = self.db.inner.read();
        let def = inner.schema.class(state.class)?;
        let get = |name: &str| -> Option<Value> {
            def.field_index(name).ok().map(|i| state.fields[i].clone())
        };
        T::from_fields(&get)
    }

    /// Typed write-back: overwrite the object's fields from the Rust value.
    pub fn store_typed<T: OdeInstance>(&mut self, p: Persistent<T>, value: &T) -> Result<()> {
        let fields = value.to_fields();
        self.update(p.oid, |w| {
            for (name, v) in fields {
                w.set(name, v)?;
            }
            Ok(())
        })
    }
}
