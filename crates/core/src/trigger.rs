//! Trigger machinery (§6 of the paper).
//!
//! A **declaration** (on a class, see `ode-model`) becomes active only when
//! an application *activates* it on a particular object with concrete
//! arguments — the paper's `trigger-id = object->T(args)`. Activations are
//! persistent (they live in the catalog) and are indexed by subject object.
//!
//! Firing semantics, faithfully to §6:
//!
//! * conditions are (conceptually) evaluated **at the end of each
//!   transaction** — the engine evaluates them for every activation whose
//!   subject was written by the committing transaction, which is
//!   observationally equivalent because conditions only read the subject,
//! * each firing spawns an **independent transaction** running the trigger
//!   action after the triggering transaction commits ("weak coupling",
//!   HiPAC) — if the triggering transaction aborts, nothing fires,
//! * **once-only** triggers (the default) deactivate upon firing and must
//!   be re-activated explicitly; **perpetual** triggers re-arm,
//! * action transactions can fire further triggers; the engine bounds the
//!   cascade depth (the paper leaves it unbounded, which does not survive
//!   contact with a perpetual trigger whose action re-satisfies its own
//!   condition).

use ode_model::{ClassId, Oid, TriggerDecl, Value};

/// Handle returned by trigger activation; used for explicit deactivation
/// (`trigger-id` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TriggerId(pub u64);

impl std::fmt::Display for TriggerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trigger#{}", self.0)
    }
}

/// A live activation: one (object, trigger, args) binding.
#[derive(Debug, Clone)]
pub struct Activation {
    /// Unique id.
    pub id: u64,
    /// Subject object.
    pub oid: Oid,
    /// Trigger name on the subject's class.
    pub trigger: String,
    /// Arguments bound to the declaration's parameters.
    pub args: Vec<Value>,
}

/// A firing scheduled by a committed transaction: everything needed to run
/// the action independently.
#[derive(Debug, Clone)]
pub struct Firing {
    /// The activation that fired.
    pub activation: Activation,
    /// Snapshot of the declaration (actions + params) at firing time.
    pub decl: TriggerDecl,
}

/// One fired trigger, as reported in [`crate::CommitInfo`].
#[derive(Debug, Clone)]
pub struct FiredTrigger {
    /// Activation id.
    pub id: TriggerId,
    /// Subject object.
    pub oid: Oid,
    /// Trigger name.
    pub trigger: String,
}

/// A trigger action that failed. Weak coupling means the triggering
/// transaction has already committed; failures are reported, not propagated
/// as rollbacks.
#[derive(Debug)]
pub struct TriggerFailure {
    /// Activation id whose action failed.
    pub id: TriggerId,
    /// Subject object.
    pub oid: Oid,
    /// The error.
    pub error: crate::error::OdeError,
}

/// A fired-trigger event handed to a decoupled scheduler instead of being
/// run inline. Durable: the committing transaction writes the full pending
/// set into the catalog in the *same* store batch that (for once-only
/// triggers) deletes the activation, so a crash between commit and drain
/// neither loses nor double-arms the firing. The event carries everything
/// needed to run the action after reopen — the activation record may no
/// longer exist.
#[derive(Debug, Clone, PartialEq)]
pub struct PendingEvent {
    /// Event id, unique database-wide (distinct from the activation id).
    pub id: u64,
    /// Activation that fired.
    pub activation: u64,
    /// Subject object.
    pub oid: Oid,
    /// Trigger name (resolved on the subject's class at dispatch).
    pub trigger: String,
    /// Arguments bound to the declaration's parameters.
    pub args: Vec<Value>,
    /// Cascade depth the action transaction runs at (triggering depth + 1).
    pub depth: u64,
}

/// What a committed transaction wrote, delivered to an installed commit
/// observer (live subscriptions). Deletes are not reported: a subscription
/// predicate cannot match an object that no longer exists.
#[derive(Debug, Clone)]
pub struct CommitNote {
    /// Commit epoch the writes were published at.
    pub epoch: u64,
    /// Objects created or modified, with their dynamic classes.
    pub writes: Vec<(Oid, ClassId)>,
}

/// Summary returned by [`crate::Transaction::commit`].
#[derive(Debug, Default)]
pub struct CommitInfo {
    /// Triggers fired by this transaction and its cascade, in firing order.
    pub fired: Vec<FiredTrigger>,
    /// Action transactions that failed (weak coupling: reported only).
    pub failures: Vec<TriggerFailure>,
    /// Firings handed to the decoupled scheduler instead of run inline
    /// (empty unless a firing sink is installed). Their actions run
    /// asynchronously, after this commit returns.
    pub enqueued: Vec<FiredTrigger>,
}

impl CommitInfo {
    /// Did anything fire?
    pub fn any_fired(&self) -> bool {
        !self.fired.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_id_display() {
        assert_eq!(TriggerId(7).to_string(), "trigger#7");
    }

    #[test]
    fn commit_info_default_is_quiet() {
        let info = CommitInfo::default();
        assert!(!info.any_fired());
        assert!(info.failures.is_empty());
    }
}
