//! Secondary indexes.
//!
//! §3.1 notes that `suchthat`/`by` clauses "can be used to advantage in
//! query optimization"; this module is that advantage. An index is declared
//! on `(class, field)` and covers the class's **deep extent** (the class
//! and every class derived from it, mirroring cluster-hierarchy iteration).
//! The forall planner uses an index when the `suchthat` predicate contains
//! an equality or range conjunct on the indexed field (figure F2 measures
//! the crossover against a full scan).
//!
//! Index *declarations* persist in the catalog; the entries themselves are
//! rebuilt by a scan at open time, which keeps commit batches small and
//! recovery trivial (an acceptable trade documented in DESIGN.md).

use std::collections::{BTreeMap, HashSet};
use std::ops::Bound;

use ode_model::{Oid, Value};

/// An in-memory B-tree index over one field.
#[derive(Debug, Default)]
pub struct BTreeIndex {
    map: BTreeMap<Value, Vec<Oid>>,
    len: usize,
}

impl BTreeIndex {
    /// Empty index.
    pub fn new() -> BTreeIndex {
        BTreeIndex::default()
    }

    /// Add an entry.
    pub fn insert(&mut self, key: Value, oid: Oid) {
        let bucket = self.map.entry(key).or_default();
        if !bucket.contains(&oid) {
            bucket.push(oid);
            self.len += 1;
        }
    }

    /// Remove an entry (no-op when absent).
    pub fn remove(&mut self, key: &Value, oid: Oid) {
        if let Some(bucket) = self.map.get_mut(key) {
            if let Some(i) = bucket.iter().position(|&o| o == oid) {
                bucket.remove(i);
                self.len -= 1;
                if bucket.is_empty() {
                    self.map.remove(key);
                }
            }
        }
    }

    /// Entries under exactly `key`.
    pub fn lookup(&self, key: &Value) -> Vec<Oid> {
        self.map.get(key).cloned().unwrap_or_default()
    }

    /// Entries in a range, in key order.
    pub fn range(&self, lo: Bound<&Value>, hi: Bound<&Value>) -> Vec<Oid> {
        let mut out = Vec::new();
        for (_, bucket) in self.map.range::<Value, _>((lo, hi)) {
            out.extend_from_slice(bucket);
        }
        out
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the index empty?
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Remove every entry for the given oids (used when objects change
    /// values: callers remove old keys precisely; this is the slow fallback
    /// for bulk deletion).
    pub fn purge(&mut self, oids: &HashSet<Oid>) {
        // Track removals bucket-by-bucket instead of recounting the whole
        // map afterwards (that full walk made purge O(index size) even for
        // a single-oid purge).
        let mut removed = 0usize;
        self.map.retain(|_, bucket| {
            let before = bucket.len();
            bucket.retain(|o| !oids.contains(o));
            removed += before - bucket.len();
            !bucket.is_empty()
        });
        self.len -= removed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::RecordId;

    fn oid(n: u32) -> Oid {
        Oid {
            cluster: 1,
            rid: RecordId { page: n, slot: 0 },
        }
    }

    #[test]
    fn insert_lookup_remove() {
        let mut ix = BTreeIndex::new();
        ix.insert(Value::Str("att".into()), oid(1));
        ix.insert(Value::Str("att".into()), oid(2));
        ix.insert(Value::Str("ibm".into()), oid(3));
        assert_eq!(ix.len(), 3);
        assert_eq!(ix.lookup(&Value::Str("att".into())), vec![oid(1), oid(2)]);
        ix.remove(&Value::Str("att".into()), oid(1));
        assert_eq!(ix.lookup(&Value::Str("att".into())), vec![oid(2)]);
        assert_eq!(ix.lookup(&Value::Str("ghost".into())), Vec::<Oid>::new());
    }

    #[test]
    fn duplicate_insert_is_idempotent() {
        let mut ix = BTreeIndex::new();
        ix.insert(Value::Int(1), oid(1));
        ix.insert(Value::Int(1), oid(1));
        assert_eq!(ix.len(), 1);
    }

    #[test]
    fn range_queries() {
        let mut ix = BTreeIndex::new();
        for i in 0..10 {
            ix.insert(Value::Int(i), oid(i as u32));
        }
        let got = ix.range(
            Bound::Included(&Value::Int(3)),
            Bound::Excluded(&Value::Int(6)),
        );
        assert_eq!(got, vec![oid(3), oid(4), oid(5)]);
        let got = ix.range(Bound::Unbounded, Bound::Included(&Value::Int(1)));
        assert_eq!(got, vec![oid(0), oid(1)]);
    }

    #[test]
    fn purge_bulk() {
        let mut ix = BTreeIndex::new();
        for i in 0..6 {
            ix.insert(Value::Int(i % 2), oid(i as u32));
        }
        let victims: HashSet<Oid> = [oid(0), oid(2), oid(4)].into_iter().collect();
        ix.purge(&victims);
        assert_eq!(ix.len(), 3);
        assert!(ix.lookup(&Value::Int(0)).is_empty());
        assert_eq!(ix.lookup(&Value::Int(1)), vec![oid(1), oid(3), oid(5)]);
    }
}
