//! Snapshot read transactions — the concurrent read path (DESIGN.md §8).
//!
//! A [`ReadTransaction`] gives a consistent, read-only view of the
//! database without entering the writer gate: any number of read
//! transactions run concurrently with each other *and* with the
//! read/compute phase of a writer. Only a committing writer's short
//! publish window (and DDL) excludes readers, which is what makes the
//! view a snapshot: no commit can become visible while a read
//! transaction is live, so every read observes the same committed state.
//!
//! The paper's model (§1) makes "any O++ program that interacts with the
//! database" one transaction; it says nothing about concurrency control
//! between such programs. We split them by intent: programs that only
//! query take this shared path, programs that mutate serialize behind
//! [`Database::begin`]'s gate.
//!
//! [`ReadContext`] is the abstraction the query layer ([`crate::query`])
//! executes against: both [`Transaction`] (write-set overlay included)
//! and [`ReadTransaction`] (committed state only) implement it, so
//! `forall`/join/aggregate machinery is written once.
//!
//! **Caveat:** do not commit a write transaction, run DDL, or call
//! [`Database::backup`]-style maintenance on a thread that still holds an
//! open `ReadTransaction` — the publish window waits for all readers to
//! drain, so that thread would wait on itself.

use std::collections::HashSet;

use ode_model::{ClassId, ModelError, ObjState, Oid, Resolver, Value, VersionNo, VersionRef};
use ode_obs::{SpanGuard, SpanStage, TracePhase, TraceScope};

use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::object::{decode_record, is_anchor, ObjRecord, NO_PARENT};
use crate::txn::Transaction;

/// The read surface the query layer needs from a transaction-like view.
///
/// Implemented by [`Transaction`] (reads see the private write-set
/// overlaid on committed state) and [`ReadTransaction`] (committed state
/// only; the overlay methods are trivially empty). `Resolver` is a
/// supertrait so predicate evaluation can dereference object references
/// through the same view.
pub trait ReadContext: Resolver + Sized {
    /// The database this view reads.
    fn db(&self) -> &Database;

    /// Was the object deleted by this transaction? (Never, for snapshots.)
    fn is_deleted(&self, oid: Oid) -> bool;

    /// Read an object's current state through this view.
    fn read_obj(&self, oid: Oid) -> Result<ObjState>;

    /// Visit the write-set overlay: objects created or loaded-for-write by
    /// this transaction, with their in-transaction states borrowed in
    /// place (no clones — the visitor copies only what it keeps). Empty
    /// for snapshots. Visit order is unspecified.
    fn for_each_overlay(&self, visit: &mut dyn FnMut(Oid, &ObjState) -> Result<()>) -> Result<()>;

    /// Is the object in this transaction's write-set?
    fn overlay_contains(&self, oid: Oid) -> bool;

    /// Stream the (deep or shallow) extent of a class as seen by this
    /// view: committed members plus, for write transactions, the overlay.
    ///
    /// The extent is *never* materialized: records are decoded one store
    /// page at a time and handed to `visit` as they stream past, so N
    /// concurrent scans cost O(N pages) resident memory, not N decoded
    /// copies of the extent. Each member is visited exactly once — the
    /// write-set overlay replaces committed states in place and
    /// new-in-transaction objects are appended after the committed pass.
    /// Returning `Ok(false)` from `visit` stops the stream early (not an
    /// error); for write transactions an early stop or a visitor error
    /// widens every heap touched so far to a whole-heap scan entry, since
    /// which rows mattered is then unknowable (DESIGN.md §14).
    fn for_each_extent(
        &self,
        class_name: &str,
        deep: bool,
        visit: &mut dyn FnMut(Oid, &ObjState) -> Result<bool>,
    ) -> Result<()>;

    /// Record that a predicate was evaluated over the whole extent held in
    /// `heaps` (phantom protection for write transactions, DESIGN.md §13).
    /// Index probes call this too: the probe's answer depends on the same
    /// committed extent the index summarizes. No-op for snapshots.
    fn note_scan(&self, _heaps: &[u32]) {}

    /// Announce the key ranges the upcoming scan's predicate pins, so a
    /// write transaction can record predicate-level scan entries instead
    /// of whole-heap ones (narrowed validation, DESIGN.md §14). No-op for
    /// snapshots.
    fn scan_hint(&self, _ranges: Vec<ode_model::FieldRange>) {}

    /// Retire the hint installed by [`ReadContext::scan_hint`]. Must run
    /// once the enumeration is over — a stale hint would mislabel the
    /// next scan. No-op for snapshots.
    fn scan_hint_clear(&self) {}

    /// The scan over `heaps` depended on more than its recorded ranges
    /// (a predicate evaluation errored part-way, so which rows mattered
    /// is unknowable): widen to whole-heap entries. No-op for snapshots.
    fn scan_widen(&self, _heaps: &[u32]) {}
}

impl ReadContext for Transaction<'_> {
    fn db(&self) -> &Database {
        self.db
    }

    fn is_deleted(&self, oid: Oid) -> bool {
        self.deleted.contains_key(&oid)
    }

    fn read_obj(&self, oid: Oid) -> Result<ObjState> {
        self.read(oid)
    }

    fn for_each_overlay(&self, visit: &mut dyn FnMut(Oid, &ObjState) -> Result<()>) -> Result<()> {
        for (&oid, obj) in &self.writes {
            visit(oid, &obj.state)?;
        }
        Ok(())
    }

    fn overlay_contains(&self, oid: Oid) -> bool {
        self.writes.contains_key(&oid)
    }

    fn for_each_extent(
        &self,
        class_name: &str,
        deep: bool,
        visit: &mut dyn FnMut(Oid, &ObjState) -> Result<bool>,
    ) -> Result<()> {
        self.stream_extent(class_name, deep, visit)
    }

    fn note_scan(&self, heaps: &[u32]) {
        for &heap in heaps {
            self.note_extent_scan(heap);
        }
    }

    fn scan_hint(&self, ranges: Vec<ode_model::FieldRange>) {
        self.set_scan_ranges(ranges);
    }

    fn scan_hint_clear(&self) {
        self.clear_scan_ranges();
    }

    fn scan_widen(&self, heaps: &[u32]) {
        self.note_scan_unbounded(heaps);
    }
}

/// A snapshot read transaction. Obtain with [`Database::begin_read`];
/// finished by dropping (there is nothing to commit or abort).
///
/// Holds the apply gate shared for its lifetime: readers never block each
/// other, and no writer can *publish* a commit (or run DDL) until every
/// open read transaction drops — which is exactly what guarantees the
/// snapshot is never torn. The epoch captured at begin ([`epoch`]) names
/// the committed state this snapshot sees.
///
/// [`epoch`]: ReadTransaction::epoch
pub struct ReadTransaction<'db> {
    pub(crate) db: &'db Database,
    /// Shared hold on the publish gate; lock order is `apply_gate` before
    /// `inner`, and this guard is taken before any `inner` access.
    _apply: parking_lot::RwLockReadGuard<'db, ()>,
    epoch: u64,
    serial: u64,
    /// Flight-recorder span covering the snapshot's lifetime.
    _flight_span: SpanGuard,
}

impl<'db> ReadTransaction<'db> {
    pub(crate) fn new(db: &'db Database) -> ReadTransaction<'db> {
        let serial = db
            .next_txn_serial
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let apply = db.apply_gate.read();
        db.tel.txn.read_txns.inc();
        let epoch = db.commit_epoch();
        let flight_span = db
            .flight
            .span(SpanStage::Txn, format!("read txn#{serial} epoch={epoch}"));
        db.trace_event(TraceScope::Transaction, TracePhase::Begin, serial, || {
            format!("begin read epoch={epoch}")
        });
        ReadTransaction {
            db,
            _apply: apply,
            epoch,
            serial,
            _flight_span: flight_span,
        }
    }

    /// The commit epoch this snapshot reads at: the number of
    /// commits/DDL statements published before it began. Two snapshots
    /// with the same epoch see identical committed state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Has the database committed past this snapshot's epoch? While the
    /// snapshot is live this is always false — the gate excludes
    /// publishes — so it doubles as a torn-commit assertion in tests.
    pub fn is_stale(&self) -> bool {
        self.db.commit_epoch() != self.epoch
    }

    /// Load the committed image of an object (current version for
    /// versioned objects).
    fn load_committed(&self, oid: Oid) -> Result<ObjState> {
        let bytes = self
            .db
            .store
            .read(oid.cluster, oid.rid)
            .map_err(|_| OdeError::NoSuchObject(oid.to_string()))?;
        match decode_record(&bytes)? {
            ObjRecord::Plain(state) => Ok(state),
            ObjRecord::Anchor(table) => {
                self.db.tel.versions.generic_derefs.inc();
                let vrid = table.current_rid()?;
                match decode_record(&self.db.store.read(oid.cluster, vrid)?)? {
                    ObjRecord::VersionRec { state, .. } => Ok(state),
                    _ => Err(OdeError::Version(format!(
                        "anchor {oid} points at a non-version record"
                    ))),
                }
            }
            ObjRecord::VersionRec { .. } => Err(OdeError::NoSuchObject(format!(
                "{oid} is a version record, not an object"
            ))),
        }
    }

    /// Does the object exist in this snapshot?
    pub fn exists(&self, oid: Oid) -> bool {
        self.load_committed(oid).is_ok()
    }

    /// Read an object's committed current state — dereferencing a
    /// *generic* reference (§4).
    pub fn read(&self, oid: Oid) -> Result<ObjState> {
        self.load_committed(oid)
    }

    /// Read one field.
    pub fn get(&self, oid: Oid, field: &str) -> Result<Value> {
        let state = self.read(oid)?;
        let inner = self.db.inner.read();
        let def = inner.schema.class(state.class)?;
        let i = def.field_index(field)?;
        Ok(state.fields[i].clone())
    }

    /// The object's dynamic (most-derived) class.
    pub fn class_of(&self, oid: Oid) -> Result<ClassId> {
        Ok(self.read(oid)?.class)
    }

    /// The paper's `is` test (§3.1.1): is the object an instance of (a
    /// subclass of) `class_name`?
    pub fn instance_of(&self, oid: Oid, class_name: &str) -> Result<bool> {
        let class = self.read(oid)?.class;
        let inner = self.db.inner.read();
        let target = inner.schema.id_of(class_name)?;
        Ok(inner.schema.is_subclass(class, target))
    }

    /// Call a registered method on the object.
    pub fn call(&self, oid: Oid, method: &str, args: &[Value]) -> Result<Value> {
        let state = self.read(oid)?;
        let inner = self.db.inner.read();
        let m = inner.schema.lookup_method(state.class, method)?;
        Ok(m(&state, args)?)
    }

    /// Dereference a *specific* reference: one pinned version (§4).
    pub fn read_version(&self, vref: VersionRef) -> Result<ObjState> {
        self.db.tel.versions.specific_derefs.inc();
        let oid = vref.oid;
        let bytes = self
            .db
            .store
            .read(oid.cluster, oid.rid)
            .map_err(|_| OdeError::NoSuchObject(oid.to_string()))?;
        match decode_record(&bytes)? {
            ObjRecord::Plain(state) => {
                if vref.version == 0 {
                    Ok(state)
                } else {
                    Err(OdeError::Version(format!(
                        "object {oid} has no version {}",
                        vref.version
                    )))
                }
            }
            ObjRecord::Anchor(table) => {
                let Some(entry) = table.entry(vref.version) else {
                    return Err(OdeError::Version(format!(
                        "object {oid} has no version {}",
                        vref.version
                    )));
                };
                match decode_record(&self.db.store.read(oid.cluster, entry.rid)?)? {
                    ObjRecord::VersionRec { no, state } if no == vref.version => Ok(state),
                    _ => Err(OdeError::Version(format!(
                        "version table of {oid} is inconsistent at version {}",
                        vref.version
                    ))),
                }
            }
            ObjRecord::VersionRec { .. } => Err(OdeError::NoSuchObject(format!(
                "{oid} is a version record, not an object"
            ))),
        }
    }

    /// The current version number (0 for never-versioned objects).
    pub fn current_version(&self, oid: Oid) -> Result<VersionNo> {
        let bytes = self
            .db
            .store
            .read(oid.cluster, oid.rid)
            .map_err(|_| OdeError::NoSuchObject(oid.to_string()))?;
        match decode_record(&bytes)? {
            ObjRecord::Plain(_) => Ok(0),
            ObjRecord::Anchor(table) => Ok(table.current),
            ObjRecord::VersionRec { .. } => Err(OdeError::NoSuchObject(format!(
                "{oid} is a version record, not an object"
            ))),
        }
    }

    /// A *specific* reference to the object's current version.
    pub fn vref(&self, oid: Oid) -> Result<VersionRef> {
        Ok(VersionRef {
            oid,
            version: self.current_version(oid)?,
        })
    }

    /// All live version numbers, in creation order.
    pub fn versions(&self, oid: Oid) -> Result<Vec<VersionNo>> {
        let bytes = self
            .db
            .store
            .read(oid.cluster, oid.rid)
            .map_err(|_| OdeError::NoSuchObject(oid.to_string()))?;
        match decode_record(&bytes)? {
            ObjRecord::Plain(_) => Ok(vec![0]),
            ObjRecord::Anchor(table) => Ok(table.versions()),
            ObjRecord::VersionRec { .. } => Err(OdeError::NoSuchObject(format!(
                "{oid} is a version record, not an object"
            ))),
        }
    }

    /// The version this one was derived from (`None` for a root).
    pub fn parent_version(&self, vref: VersionRef) -> Result<Option<VersionNo>> {
        let oid = vref.oid;
        let bytes = self
            .db
            .store
            .read(oid.cluster, oid.rid)
            .map_err(|_| OdeError::NoSuchObject(oid.to_string()))?;
        let missing = || OdeError::Version(format!("object {oid} has no version {}", vref.version));
        match decode_record(&bytes)? {
            ObjRecord::Plain(_) => {
                if vref.version == 0 {
                    Ok(None)
                } else {
                    Err(missing())
                }
            }
            ObjRecord::Anchor(table) => {
                let entry = table.entry(vref.version).ok_or_else(missing)?;
                Ok((entry.parent != NO_PARENT).then_some(entry.parent))
            }
            ObjRecord::VersionRec { .. } => Err(OdeError::NoSuchObject(format!(
                "{oid} is a version record, not an object"
            ))),
        }
    }

    /// The database this snapshot reads.
    pub fn database(&self) -> &'db Database {
        self.db
    }
}

impl Drop for ReadTransaction<'_> {
    fn drop(&mut self) {
        let serial = self.serial;
        self.db
            .trace_event(TraceScope::Transaction, TracePhase::End, serial, || {
                "end read".to_string()
            });
    }
}

impl Resolver for ReadTransaction<'_> {
    fn deref_obj(&self, oid: Oid) -> ode_model::Result<ObjState> {
        self.read(oid).map_err(|e| ModelError::Eval(e.to_string()))
    }

    fn deref_version(&self, vref: VersionRef) -> ode_model::Result<ObjState> {
        self.read_version(vref)
            .map_err(|e| ModelError::Eval(e.to_string()))
    }
}

impl ReadContext for ReadTransaction<'_> {
    fn db(&self) -> &Database {
        self.db
    }

    fn is_deleted(&self, _oid: Oid) -> bool {
        false
    }

    fn read_obj(&self, oid: Oid) -> Result<ObjState> {
        self.read(oid)
    }

    fn for_each_overlay(&self, _visit: &mut dyn FnMut(Oid, &ObjState) -> Result<()>) -> Result<()> {
        Ok(())
    }

    fn overlay_contains(&self, _oid: Oid) -> bool {
        false
    }

    fn for_each_extent(
        &self,
        class_name: &str,
        deep: bool,
        visit: &mut dyn FnMut(Oid, &ObjState) -> Result<bool>,
    ) -> Result<()> {
        let inner = self.db.inner.read();
        let class = inner.schema.id_of(class_name)?;
        let heaps = inner.extent_heaps(class, deep);
        drop(inner);
        for heap in dedup_heaps(&heaps) {
            if !stream_committed_heap(self.db, heap, &mut |oid, state| visit(oid, state))? {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Heap ids to scan for an extent, first-occurrence order, each once.
/// A heap shared between two classes in the hierarchy (possible with
/// explicit cluster reuse) must not contribute its members twice — this
/// replaces the per-oid `seen` set the old materializing path kept:
/// within one heap every object surfaces exactly once (one anchor record
/// per object, reserved slots invisible to scans), so deduplicating the
/// heap list deduplicates the extent.
pub(crate) fn dedup_heaps(heaps: &[(ClassId, u32)]) -> Vec<u32> {
    let mut seen = HashSet::new();
    heaps
        .iter()
        .map(|&(_, h)| h)
        .filter(|h| seen.insert(*h))
        .collect()
}

/// Stream one heap's committed objects in decoded form, page-at-a-time.
///
/// This is the shared engine under both [`ReadContext::for_each_extent`]
/// impls: the store's scan surfaces one page's records at a time (the
/// page-residency bound), version-record bodies are skipped, and anchor
/// records of versioned objects chase their current version via a store
/// read *from inside the scan callback* — safe on every store since the
/// buffer-pool split (PR 3): `FileStore` visits with no locks held,
/// `MemStore` copies out bounded chunks first, `FailpointStore` delegates.
///
/// Returns `Ok(false)` iff `visit` stopped the stream early. A `visit`
/// error aborts the scan and is returned verbatim (it is stashed across
/// the storage-error boundary, not wrapped).
pub(crate) fn stream_committed_heap(
    db: &Database,
    heap: u32,
    visit: &mut dyn FnMut(Oid, &ObjState) -> Result<bool>,
) -> Result<bool> {
    let mut stashed: Option<OdeError> = None;
    let mut stopped = false;
    db.store.scan(heap, &mut |rid, bytes| {
        if !is_anchor(bytes) {
            return Ok(true); // version record body — not an extent member
        }
        let oid = Oid { cluster: heap, rid };
        let decoded = (|| -> Result<Option<ObjState>> {
            match decode_record(bytes)? {
                ObjRecord::Plain(s) => Ok(Some(s)),
                ObjRecord::Anchor(table) => {
                    let vrid = table.current_rid()?;
                    match decode_record(&db.store.read(heap, vrid)?)? {
                        ObjRecord::VersionRec { state, .. } => Ok(Some(state)),
                        _ => Err(OdeError::Version(format!(
                            "anchor {oid} points at a non-version record"
                        ))),
                    }
                }
                ObjRecord::VersionRec { .. } => Ok(None),
            }
        })();
        match decoded {
            Ok(Some(state)) => match visit(oid, &state) {
                Ok(true) => Ok(true),
                Ok(false) => {
                    stopped = true;
                    Ok(false)
                }
                Err(e) => {
                    stashed = Some(e);
                    Ok(false)
                }
            },
            Ok(None) => Ok(true),
            Err(e) => {
                stashed = Some(e);
                Ok(false)
            }
        }
    })?;
    if let Some(e) = stashed {
        return Err(e);
    }
    Ok(!stopped)
}
