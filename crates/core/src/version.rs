//! Object versioning (§4 of the paper).
//!
//! * `newversion` is **explicit**: "Updating a persistent object does not
//!   automatically create a new version" — plain updates rewrite the
//!   current version in place.
//! * A **generic reference** (a plain [`Oid`]) always denotes the current
//!   version; a **specific reference** ([`VersionRef`]) pins one version.
//! * The paper describes linear version chains and defers version *trees*
//!   to the Ode versioning paper (footnote 15); both are implemented:
//!   [`Transaction::newversion`] extends the chain from the current
//!   version, [`Transaction::newversion_from`] branches from any version.
//! * Old versions are read-only (an implementation choice the paper
//!   explicitly permits); there is no API to mutate a non-current version.
//! * `pdelete` of a version (footnote 16): any non-current version can be
//!   deleted; its children are re-parented to its parent so history stays
//!   connected.

use ode_model::{ObjState, Oid, VersionNo, VersionRef};

use crate::error::{OdeError, Result};
use crate::object::{decode_record, ObjRecord, NO_PARENT};
use crate::txn::{Transaction, TxnVEntry, TxnVersionTable};

impl Transaction<'_> {
    /// Create a new version of the object and make it current (the paper's
    /// `newversion` macro). The previous current version is frozen with the
    /// object's state *as of this call* (including this transaction's
    /// earlier updates). Returns the new version number.
    pub fn newversion(&mut self, oid: Oid) -> Result<VersionNo> {
        self.database().tel.versions.newversions.inc();
        self.load_for_write(oid)?;
        let obj = self.writes.get_mut(&oid).expect("just loaded");
        if obj.vt.is_none() {
            // First versioning of this object: the existing state becomes
            // version 0.
            obj.vt = Some(TxnVersionTable {
                current: 0,
                entries: vec![TxnVEntry {
                    no: 0,
                    parent: NO_PARENT,
                    rid: None,
                    frozen: None,
                    deleted: false,
                }],
            });
        }
        let state_snapshot = obj.state.clone();
        let dirty = obj.dirty;
        let vt = obj.vt.as_mut().expect("ensured above");
        let cur = vt.current;
        let new_no = vt.next_no();
        if let Some(entry) = vt.entries.iter_mut().find(|e| e.no == cur && !e.deleted) {
            // Freeze the outgoing current version. If its record is already
            // on disk and unchanged this transaction, the disk bytes are
            // already right.
            if entry.rid.is_none() || dirty {
                entry.frozen = Some(state_snapshot);
            }
        }
        vt.entries.push(TxnVEntry {
            no: new_no,
            parent: cur,
            rid: None,
            frozen: None,
            deleted: false,
        });
        vt.current = new_no;
        obj.vt_dirty = true;
        // The new current version's record must be written even if no
        // further updates happen (its rid is None → materialized from the
        // working state at commit).
        Ok(new_no)
    }

    /// Branch a new version from an arbitrary existing version (version
    /// *trees*, the extension the paper defers to its reference \[4\]). The new
    /// version becomes current and its state starts as a copy of the
    /// branched-from version.
    pub fn newversion_from(&mut self, vref: VersionRef) -> Result<VersionNo> {
        self.database().tel.versions.newversions.inc();
        let base_state = self.read_version(vref)?;
        self.load_for_write(vref.oid)?;
        let obj = self.writes.get_mut(&vref.oid).expect("just loaded");
        if obj.vt.is_none() {
            if vref.version != 0 {
                return Err(OdeError::Version(format!(
                    "object {} has no version {}",
                    vref.oid, vref.version
                )));
            }
            obj.vt = Some(TxnVersionTable {
                current: 0,
                entries: vec![TxnVEntry {
                    no: 0,
                    parent: NO_PARENT,
                    rid: None,
                    frozen: None,
                    deleted: false,
                }],
            });
        }
        let outgoing = obj.state.clone();
        let dirty = obj.dirty;
        let vt = obj.vt.as_mut().expect("ensured above");
        if !vt
            .entries
            .iter()
            .any(|e| e.no == vref.version && !e.deleted)
        {
            return Err(OdeError::Version(format!(
                "object {} has no version {}",
                vref.oid, vref.version
            )));
        }
        let cur = vt.current;
        let new_no = vt.next_no();
        if let Some(entry) = vt.entries.iter_mut().find(|e| e.no == cur && !e.deleted) {
            if entry.rid.is_none() || dirty {
                entry.frozen = Some(outgoing);
            }
        }
        vt.entries.push(TxnVEntry {
            no: new_no,
            parent: vref.version,
            rid: None,
            frozen: None,
            deleted: false,
        });
        vt.current = new_no;
        obj.vt_dirty = true;
        obj.state = base_state;
        obj.dirty = true;
        Ok(new_no)
    }

    /// Dereference a *specific* reference: the state of one pinned version.
    pub fn read_version(&self, vref: VersionRef) -> Result<ObjState> {
        self.ensure_live()?;
        self.database().tel.versions.specific_derefs.inc();
        let oid = vref.oid;
        if self.deleted.contains_key(&oid) {
            return Err(OdeError::NoSuchObject(format!("{oid} (deleted)")));
        }
        if let Some(obj) = self.writes.get(&oid) {
            match &obj.vt {
                None => {
                    // Unversioned objects have exactly one implicit version 0.
                    if vref.version == 0 {
                        return Ok(obj.state.clone());
                    }
                    return Err(OdeError::Version(format!(
                        "object {oid} has no version {}",
                        vref.version
                    )));
                }
                Some(vt) => {
                    let Some(entry) = vt
                        .entries
                        .iter()
                        .find(|e| e.no == vref.version && !e.deleted)
                    else {
                        return Err(OdeError::Version(format!(
                            "object {oid} has no version {}",
                            vref.version
                        )));
                    };
                    if entry.no == vt.current {
                        return Ok(obj.state.clone());
                    }
                    if let Some(s) = &entry.frozen {
                        return Ok(s.clone());
                    }
                    let rid = entry.rid.expect("committed entry has a rid");
                    return self.read_version_record(oid, rid, vref.version);
                }
            }
        }
        // Committed view.
        let bytes = self
            .db
            .store
            .read(oid.cluster, oid.rid)
            .map_err(|_| OdeError::NoSuchObject(oid.to_string()))?;
        match decode_record(&bytes)? {
            ObjRecord::Plain(state) => {
                if vref.version == 0 {
                    Ok(state)
                } else {
                    Err(OdeError::Version(format!(
                        "object {oid} has no version {}",
                        vref.version
                    )))
                }
            }
            ObjRecord::Anchor(table) => {
                let Some(entry) = table.entry(vref.version) else {
                    return Err(OdeError::Version(format!(
                        "object {oid} has no version {}",
                        vref.version
                    )));
                };
                self.read_version_record(oid, entry.rid, vref.version)
            }
            ObjRecord::VersionRec { .. } => Err(OdeError::NoSuchObject(format!(
                "{oid} is a version record, not an object"
            ))),
        }
    }

    fn read_version_record(
        &self,
        oid: Oid,
        rid: ode_storage::RecordId,
        expect_no: VersionNo,
    ) -> Result<ObjState> {
        match decode_record(&self.db.store.read(oid.cluster, rid)?)? {
            ObjRecord::VersionRec { no, state } if no == expect_no => Ok(state),
            _ => Err(OdeError::Version(format!(
                "version table of {oid} is inconsistent at version {expect_no}"
            ))),
        }
    }

    /// The current version number (0 for never-versioned objects).
    pub fn current_version(&self, oid: Oid) -> Result<VersionNo> {
        if let Some(obj) = self.writes.get(&oid) {
            if self.deleted.contains_key(&oid) {
                return Err(OdeError::NoSuchObject(format!("{oid} (deleted)")));
            }
            return Ok(obj.vt.as_ref().map(|t| t.current).unwrap_or(0));
        }
        let (_, vt) = self.load_committed(oid)?;
        Ok(vt.map(|t| t.current).unwrap_or(0))
    }

    /// A *specific* reference to the object's current version.
    pub fn vref(&self, oid: Oid) -> Result<VersionRef> {
        Ok(VersionRef {
            oid,
            version: self.current_version(oid)?,
        })
    }

    /// All live version numbers, in creation order.
    pub fn versions(&self, oid: Oid) -> Result<Vec<VersionNo>> {
        if let Some(obj) = self.writes.get(&oid) {
            return Ok(match &obj.vt {
                None => vec![0],
                Some(vt) => vt
                    .entries
                    .iter()
                    .filter(|e| !e.deleted)
                    .map(|e| e.no)
                    .collect(),
            });
        }
        let (_, vt) = self.load_committed(oid)?;
        Ok(match vt {
            None => vec![0],
            Some(t) => t.versions(),
        })
    }

    /// The version this one was derived from (`None` for a root).
    pub fn parent_version(&self, vref: VersionRef) -> Result<Option<VersionNo>> {
        let parent = self.with_table(vref.oid, |vt| {
            vt.entries
                .iter()
                .find(|e| e.no == vref.version && !e.deleted)
                .map(|e| e.parent)
                .ok_or_else(|| {
                    OdeError::Version(format!(
                        "object {} has no version {}",
                        vref.oid, vref.version
                    ))
                })
        })??;
        Ok((parent != NO_PARENT).then_some(parent))
    }

    /// Versions derived from this one.
    pub fn child_versions(&self, vref: VersionRef) -> Result<Vec<VersionNo>> {
        self.with_table(vref.oid, |vt| {
            vt.entries
                .iter()
                .filter(|e| !e.deleted && e.parent == vref.version)
                .map(|e| e.no)
                .collect()
        })
    }

    fn with_table<R>(&self, oid: Oid, f: impl FnOnce(&TxnVersionTable) -> R) -> Result<R> {
        if let Some(obj) = self.writes.get(&oid) {
            let vt = match &obj.vt {
                Some(vt) => vt.clone(),
                None => TxnVersionTable {
                    current: 0,
                    entries: vec![TxnVEntry {
                        no: 0,
                        parent: NO_PARENT,
                        rid: None,
                        frozen: None,
                        deleted: false,
                    }],
                },
            };
            return Ok(f(&vt));
        }
        let (_, vt) = self.load_committed(oid)?;
        let vt = match vt {
            Some(t) => TxnVersionTable::from_committed(&t),
            None => TxnVersionTable {
                current: 0,
                entries: vec![TxnVEntry {
                    no: 0,
                    parent: NO_PARENT,
                    rid: None,
                    frozen: None,
                    deleted: false,
                }],
            },
        };
        Ok(f(&vt))
    }

    /// Delete one version (the paper's `pdelete` on a version pointer,
    /// footnote 16). The current version cannot be deleted; children of the
    /// deleted version are re-parented to its parent.
    pub fn delete_version(&mut self, vref: VersionRef) -> Result<()> {
        self.load_for_write(vref.oid)?;
        let obj = self.writes.get_mut(&vref.oid).expect("just loaded");
        let Some(vt) = obj.vt.as_mut() else {
            return Err(OdeError::Version(format!(
                "object {} is not versioned",
                vref.oid
            )));
        };
        if vt.current == vref.version {
            return Err(OdeError::Version(
                "cannot delete the current version".into(),
            ));
        }
        let Some(pos) = vt
            .entries
            .iter()
            .position(|e| e.no == vref.version && !e.deleted)
        else {
            return Err(OdeError::Version(format!(
                "object {} has no version {}",
                vref.oid, vref.version
            )));
        };
        let parent = vt.entries[pos].parent;
        // Re-parent children so the history graph stays connected.
        for e in vt.entries.iter_mut() {
            if !e.deleted && e.parent == vref.version {
                e.parent = parent;
            }
        }
        let entry = &mut vt.entries[pos];
        if entry.rid.is_none() {
            // Created this transaction: simply drop it.
            vt.entries.remove(pos);
        } else {
            entry.deleted = true;
        }
        obj.vt_dirty = true;
        Ok(())
    }

    /// Is the object versioned (has `newversion` ever been applied)?
    pub fn is_versioned(&self, oid: Oid) -> Result<bool> {
        if let Some(obj) = self.writes.get(&oid) {
            return Ok(obj.vt.is_some());
        }
        Ok(self.load_committed(oid)?.1.is_some())
    }
}
