//! On-disk object layout: anchor records and version records.
//!
//! Every persistent object owns one **anchor record** in its cluster's
//! heap; the anchor's record id *is* the object's identity (its oid never
//! changes). Unversioned objects — the common case — store their state
//! inline in the anchor. The first `newversion` (§4) migrates the object to
//! the indirect layout: the anchor holds a **version table** (version
//! number → record id + parent version), and each version's state lives in
//! its own version record in the same heap.
//!
//! This split keeps generic-reference dereference O(1) (anchor → current
//! version record) while specific references (pinned versions) are a table
//! lookup — figure F5 measures exactly this.
//!
//! Record tags (first payload byte) let cluster scans distinguish object
//! anchors from version records, which must not be enumerated as objects.

use ode_model::encode::{decode_object, encode_object};
use ode_model::{ModelError, ObjState, VersionNo};
use ode_storage::RecordId;

use crate::error::{OdeError, Result};

/// Tag: anchor of an unversioned object (state inline).
pub const TAG_PLAIN: u8 = 0x01;
/// Tag: anchor of a versioned object (version table inline).
pub const TAG_VERSIONED: u8 = 0x02;
/// Tag: a version record (state of one version).
pub const TAG_VREC: u8 = 0x03;

/// Parent marker for a root version.
pub const NO_PARENT: VersionNo = VersionNo::MAX;

/// One row of an anchor's version table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VersionEntry {
    /// Version number (dense, assigned in creation order).
    pub no: VersionNo,
    /// Record id of the version record holding this version's state.
    pub rid: RecordId,
    /// Version this one was derived from ([`NO_PARENT`] for the root).
    /// Linear histories have `parent == no - 1`; trees branch (§4 footnote
    /// 15 / the Ode versioning paper).
    pub parent: VersionNo,
}

/// A versioned object's table, stored in its anchor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VersionTable {
    /// The current (updatable, default-dereferenced) version.
    pub current: VersionNo,
    /// All live versions, in creation order.
    pub entries: Vec<VersionEntry>,
}

impl VersionTable {
    /// Look up a version's table row.
    pub fn entry(&self, no: VersionNo) -> Option<&VersionEntry> {
        self.entries.iter().find(|e| e.no == no)
    }

    /// Record id of the current version's record.
    pub fn current_rid(&self) -> Result<RecordId> {
        self.entry(self.current)
            .map(|e| e.rid)
            .ok_or_else(|| OdeError::Version("anchor table missing its current version".into()))
    }

    /// Next unused version number.
    pub fn next_no(&self) -> VersionNo {
        self.entries.iter().map(|e| e.no + 1).max().unwrap_or(0)
    }

    /// Version numbers in creation order.
    pub fn versions(&self) -> Vec<VersionNo> {
        self.entries.iter().map(|e| e.no).collect()
    }

    /// Children of `no` (versions derived from it).
    pub fn children(&self, no: VersionNo) -> Vec<VersionNo> {
        self.entries
            .iter()
            .filter(|e| e.parent == no)
            .map(|e| e.no)
            .collect()
    }
}

/// Decoded payload of a cluster-heap record.
#[derive(Debug, Clone)]
pub enum ObjRecord {
    /// Unversioned anchor: the state is right here.
    Plain(ObjState),
    /// Versioned anchor: state lives in version records.
    Anchor(VersionTable),
    /// One version's state.
    VersionRec {
        /// Which version this record holds.
        no: VersionNo,
        /// The state.
        state: ObjState,
    },
}

/// Encode an unversioned anchor.
pub fn encode_plain(state: &ObjState) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(TAG_PLAIN);
    out.extend_from_slice(&encode_object(state));
    out
}

/// Encode a versioned anchor.
pub fn encode_anchor(table: &VersionTable) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + 14 * table.entries.len());
    out.push(TAG_VERSIONED);
    out.extend_from_slice(&table.current.to_le_bytes());
    out.extend_from_slice(&(table.entries.len() as u32).to_le_bytes());
    for e in &table.entries {
        out.extend_from_slice(&e.no.to_le_bytes());
        out.extend_from_slice(&e.rid.to_bytes());
        out.extend_from_slice(&e.parent.to_le_bytes());
    }
    out
}

/// Encode a version record.
pub fn encode_vrec(no: VersionNo, state: &ObjState) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(TAG_VREC);
    out.extend_from_slice(&no.to_le_bytes());
    out.extend_from_slice(&encode_object(state));
    out
}

/// Decode any cluster-heap record.
pub fn decode_record(bytes: &[u8]) -> Result<ObjRecord> {
    let Some((&tag, rest)) = bytes.split_first() else {
        return Err(ModelError::Decode("empty object record".into()).into());
    };
    match tag {
        TAG_PLAIN => Ok(ObjRecord::Plain(decode_object(rest)?)),
        TAG_VERSIONED => {
            let u32_at = |i: usize| -> Result<u32> {
                rest.get(i..i + 4)
                    .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
                    .ok_or_else(|| ModelError::Decode("truncated anchor table".into()).into())
            };
            let current = u32_at(0)?;
            let count = u32_at(4)? as usize;
            let mut entries = Vec::with_capacity(count.min(1 << 16));
            let mut at = 8;
            for _ in 0..count {
                let no = u32_at(at)?;
                let rid = rest
                    .get(at + 4..at + 10)
                    .and_then(RecordId::from_bytes)
                    .ok_or_else(|| {
                        OdeError::from(ModelError::Decode("truncated anchor rid".into()))
                    })?;
                let parent = u32_at(at + 10)?;
                entries.push(VersionEntry { no, rid, parent });
                at += 14;
            }
            if at != rest.len() {
                return Err(ModelError::Decode("trailing bytes after anchor".into()).into());
            }
            Ok(ObjRecord::Anchor(VersionTable { current, entries }))
        }
        TAG_VREC => {
            if rest.len() < 4 {
                return Err(ModelError::Decode("truncated version record".into()).into());
            }
            let no = u32::from_le_bytes(rest[..4].try_into().unwrap());
            Ok(ObjRecord::VersionRec {
                no,
                state: decode_object(&rest[4..])?,
            })
        }
        other => Err(ModelError::Decode(format!("unknown object tag {other}")).into()),
    }
}

/// Is this record an object anchor (vs. a version record)? Used by cluster
/// scans to skip version records without fully decoding them.
pub fn is_anchor(bytes: &[u8]) -> bool {
    matches!(bytes.first(), Some(&TAG_PLAIN) | Some(&TAG_VERSIONED))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_model::{ClassId, Value};

    fn state() -> ObjState {
        ObjState {
            class: ClassId(3),
            fields: vec![Value::Int(5), Value::Str("x".into())],
        }
    }

    #[test]
    fn plain_roundtrip() {
        let bytes = encode_plain(&state());
        assert!(is_anchor(&bytes));
        match decode_record(&bytes).unwrap() {
            ObjRecord::Plain(s) => assert_eq!(s, state()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn anchor_roundtrip() {
        let table = VersionTable {
            current: 2,
            entries: vec![
                VersionEntry {
                    no: 0,
                    rid: RecordId { page: 1, slot: 1 },
                    parent: NO_PARENT,
                },
                VersionEntry {
                    no: 1,
                    rid: RecordId { page: 1, slot: 2 },
                    parent: 0,
                },
                VersionEntry {
                    no: 2,
                    rid: RecordId { page: 2, slot: 0 },
                    parent: 1,
                },
            ],
        };
        let bytes = encode_anchor(&table);
        assert!(is_anchor(&bytes));
        match decode_record(&bytes).unwrap() {
            ObjRecord::Anchor(t) => assert_eq!(t, table),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn vrec_roundtrip_and_not_anchor() {
        let bytes = encode_vrec(7, &state());
        assert!(!is_anchor(&bytes));
        match decode_record(&bytes).unwrap() {
            ObjRecord::VersionRec { no, state: s } => {
                assert_eq!(no, 7);
                assert_eq!(s, state());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn table_queries() {
        let table = VersionTable {
            current: 1,
            entries: vec![
                VersionEntry {
                    no: 0,
                    rid: RecordId { page: 1, slot: 1 },
                    parent: NO_PARENT,
                },
                VersionEntry {
                    no: 1,
                    rid: RecordId { page: 1, slot: 2 },
                    parent: 0,
                },
                VersionEntry {
                    no: 2,
                    rid: RecordId { page: 1, slot: 3 },
                    parent: 0,
                },
            ],
        };
        assert_eq!(table.next_no(), 3);
        assert_eq!(table.versions(), vec![0, 1, 2]);
        assert_eq!(table.children(0), vec![1, 2]);
        assert_eq!(table.current_rid().unwrap(), RecordId { page: 1, slot: 2 });
        assert!(table.entry(9).is_none());
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(decode_record(&[]).is_err());
        assert!(decode_record(&[0x99, 1, 2]).is_err());
        assert!(decode_record(&[TAG_VERSIONED, 1]).is_err());
        assert!(decode_record(&[TAG_VREC, 1, 0, 0]).is_err());
        let mut good = encode_anchor(&VersionTable::default());
        good.push(0);
        assert!(decode_record(&good).is_err());
    }
}
