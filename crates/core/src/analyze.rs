//! Bridge between the engine and the `ode-analyze` front-end (DESIGN.md
//! §9): statement classification, catalog extraction, and the analysis
//! gate that `Transaction::execute`/`ReadTransaction::execute` run
//! before touching any data.
//!
//! O++ is a compiled language: the paper's compiler rejects unknown
//! members, type mismatches, and ill-formed constraints before a program
//! runs. This module restores that boundary for the statement surface —
//! every statement class (DDL, DML, `forall`, `explain`) is analyzed
//! against the live schema and catalog *before* a write transaction is
//! opened or a snapshot is taken, so a bad statement costs no gate
//! acquisition, no iteration, and no rollback.

use std::time::Instant;

use ode_analyze::{
    analyze_class, analyze_stmt, footprint_of, has_errors, CatalogView, Diagnostic, Footprint,
    StmtKind,
};

use crate::database::Database;
use crate::error::{OdeError, Result};
use crate::oql::{parse_delete, parse_pnew, parse_query, parse_update};

impl Database {
    /// Run static analysis on one statement without executing anything.
    ///
    /// Returns every diagnostic the pass produced — warnings and errors
    /// alike; [`ode_analyze::has_errors`] tells them apart. Statements
    /// that do not parse return the parse error unchanged (the executor
    /// would report the identical error, so nothing is lost by not
    /// wrapping it). Statements with no analyzable form (`activate`,
    /// `deactivate`, …) come back clean.
    ///
    /// Analysis runs against the committed schema and catalog under a
    /// read lock; no transaction is opened and no counters beyond the
    /// `analyze.*` family move.
    pub fn analyze_statement(&self, src: &str) -> Result<Vec<Diagnostic>> {
        let start = Instant::now();
        let mut span = self.flight.span(ode_obs::SpanStage::Analyze, head_of(src));
        let result = self.analyze_inner(src);
        let tel = &self.tel.analyze;
        tel.passes.inc();
        tel.latency.record_ns(start.elapsed().as_nanos() as u64);
        if let Ok(diags) = &result {
            let errors = diags
                .iter()
                .filter(|d| d.severity == ode_analyze::Severity::Error)
                .count();
            if errors > 0 {
                span.set_detail(format!("{} ({errors} errors)", head_of(src)));
            }
            for d in diags {
                match d.severity {
                    ode_analyze::Severity::Error => tel.errors.inc(),
                    ode_analyze::Severity::Warning => tel.warnings.inc(),
                }
            }
        }
        result
    }

    /// The gate the statement executors call: reject on error-severity
    /// diagnostics, stay silent otherwise. Parse failures pass through so
    /// the executor reports them with their original error type.
    pub(crate) fn analysis_gate(&self, src: &str) -> Result<()> {
        match self.analyze_statement(src) {
            Ok(diags) if has_errors(&diags) => Err(OdeError::Analysis(diags)),
            _ => Ok(()),
        }
    }

    /// Compute the static access footprint of one statement (DESIGN.md
    /// §14): the clusters it reads and writes, with the key-predicate
    /// ranges and index the analyzer can prove. `None` for statements
    /// without an analyzable shape (DDL, version ops, …). Parse errors
    /// propagate so callers can distinguish "no footprint" from "not a
    /// statement".
    ///
    /// A footprint with no writes is a *read-only proof*: the statement
    /// cannot touch the write-txn machinery, so executors may run it on
    /// the snapshot path.
    pub fn statement_footprint(&self, src: &str) -> Result<Option<Footprint>> {
        let trimmed = src.trim();
        let stripped = match trimmed.strip_prefix("explain") {
            Some(rest) if rest.starts_with(char::is_whitespace) => rest.trim_start(),
            _ => trimmed,
        };
        let kind_of = |src: &str| -> Result<Option<(crate::oql::QueryStmt, OwnedStmt)>> {
            if starts_with_kw(src, "pnew") {
                let (class, inits) = parse_pnew(src)?;
                return Ok(Some((
                    crate::oql::QueryStmt {
                        bindings: Vec::new(),
                        suchthat: None,
                        by: None,
                    },
                    OwnedStmt::Pnew { class, inits },
                )));
            }
            if starts_with_kw(src, "update") {
                let (query, assigns) = parse_update(src)?;
                return Ok(Some((query, OwnedStmt::Update { assigns })));
            }
            if starts_with_kw(src, "delete") {
                return Ok(Some((parse_delete(src)?, OwnedStmt::Delete)));
            }
            if starts_with_kw(src, "forall") || starts_with_kw(src, "for") {
                return Ok(Some((parse_query(src)?, OwnedStmt::Query)));
            }
            Ok(None)
        };
        let Some((query, owned)) = kind_of(stripped)? else {
            return Ok(None);
        };
        let inner = self.inner.read();
        let cat = catalog_view(&inner);
        let kind = match &owned {
            OwnedStmt::Pnew { class, inits } => StmtKind::Pnew { class, inits },
            OwnedStmt::Update { assigns } => StmtKind::Update {
                bindings: &query.bindings,
                suchthat: query.suchthat.as_ref(),
                assigns,
            },
            OwnedStmt::Delete => StmtKind::Delete {
                bindings: &query.bindings,
                suchthat: query.suchthat.as_ref(),
            },
            OwnedStmt::Query => StmtKind::Query {
                bindings: &query.bindings,
                suchthat: query.suchthat.as_ref(),
                by: query.by.as_ref().map(|(e, desc)| (e, *desc)),
            },
        };
        let fp = footprint_of(&inner.schema, Some(&cat), &kind);
        self.tel.analyze.footprints.inc();
        if fp.read_only() {
            self.tel.analyze.read_only_proofs.inc();
        }
        Ok(Some(fp))
    }

    fn analyze_inner(&self, src: &str) -> Result<Vec<Diagnostic>> {
        let trimmed = src.trim();
        let stripped = match trimmed.strip_prefix("explain") {
            Some(rest) if rest.starts_with(char::is_whitespace) => rest.trim_start(),
            _ => trimmed,
        };
        if starts_with_kw(stripped, "class") {
            return self.analyze_ddl(stripped);
        }
        if let Some(rest) = strip_kw2(stripped, "create", "cluster") {
            return Ok(self.check_class_exists(rest.trim(), src));
        }
        if let Some(rest) = strip_kw2(stripped, "create", "index") {
            return Ok(self.check_index_target(rest.trim(), src));
        }
        if starts_with_kw(stripped, "pnew") {
            let (class, inits) = parse_pnew(stripped)?;
            let inner = self.inner.read();
            return Ok(analyze_stmt(
                &inner.schema,
                Some(&catalog_view(&inner)),
                src,
                &StmtKind::Pnew {
                    class: &class,
                    inits: &inits,
                },
            ));
        }
        if starts_with_kw(stripped, "update") {
            let (query, assigns) = parse_update(stripped)?;
            let inner = self.inner.read();
            return Ok(analyze_stmt(
                &inner.schema,
                Some(&catalog_view(&inner)),
                src,
                &StmtKind::Update {
                    bindings: &query.bindings,
                    suchthat: query.suchthat.as_ref(),
                    assigns: &assigns,
                },
            ));
        }
        if starts_with_kw(stripped, "delete") {
            let query = parse_delete(stripped)?;
            let inner = self.inner.read();
            return Ok(analyze_stmt(
                &inner.schema,
                Some(&catalog_view(&inner)),
                src,
                &StmtKind::Delete {
                    bindings: &query.bindings,
                    suchthat: query.suchthat.as_ref(),
                },
            ));
        }
        if starts_with_kw(stripped, "forall") || starts_with_kw(stripped, "for") {
            let query = parse_query(stripped)?;
            let inner = self.inner.read();
            return Ok(analyze_stmt(
                &inner.schema,
                Some(&catalog_view(&inner)),
                src,
                &StmtKind::Query {
                    bindings: &query.bindings,
                    suchthat: query.suchthat.as_ref(),
                    by: query.by.as_ref().map(|(e, desc)| (e, *desc)),
                },
            ));
        }
        // Version ops, trigger activation, and anything else without a
        // statically analyzable shape: nothing to check here.
        Ok(Vec::new())
    }

    /// DDL-time analysis (§5 constraints, §6 triggers): apply the
    /// definitions to a scratch copy of the schema, then run the
    /// schema-level passes on each new class. Definition errors (dup
    /// class, unknown base, bad field refs) are left for the real
    /// `define` to report with their original error type.
    fn analyze_ddl(&self, src: &str) -> Result<Vec<Diagnostic>> {
        let builders = ode_model::parse_classes(src)?;
        let mut scratch = self.inner.read().schema.clone();
        let mut diags = Vec::new();
        for b in builders {
            match scratch.define(b) {
                Ok(id) => diags.extend(analyze_class(&scratch, id)),
                Err(_) => break,
            }
        }
        Ok(diags)
    }

    /// `create cluster <class>`: the class must be defined.
    fn check_class_exists(&self, class: &str, src: &str) -> Vec<Diagnostic> {
        if class.is_empty() || class.split_whitespace().count() != 1 {
            return Vec::new(); // malformed: the executor reports usage
        }
        let inner = self.inner.read();
        if inner.schema.class_by_name(class).is_err() {
            return vec![unknown_class(class, src)];
        }
        Vec::new()
    }

    /// `create index <class> <field>`: class and member must exist.
    fn check_index_target(&self, rest: &str, src: &str) -> Vec<Diagnostic> {
        let parts: Vec<&str> = rest.split_whitespace().collect();
        let [class, field] = parts.as_slice() else {
            return Vec::new(); // malformed: the executor reports usage
        };
        let inner = self.inner.read();
        let Ok(def) = inner.schema.class_by_name(class) else {
            return vec![unknown_class(class, src)];
        };
        if def.field(field).is_err() {
            return vec![Diagnostic::unknown_member(&def.name, field, src)];
        }
        Vec::new()
    }
}

/// Owned statement pieces backing the borrowed [`StmtKind`] that
/// [`Database::statement_footprint`] hands the analyzer.
enum OwnedStmt {
    Pnew {
        class: String,
        inits: Vec<(String, ode_model::Expr)>,
    },
    Update {
        assigns: Vec<(String, ode_model::Expr)>,
    },
    Delete,
    Query,
}

fn unknown_class(class: &str, src: &str) -> Diagnostic {
    Diagnostic::unknown_class(class, src)
}

/// First few words of a statement, for span details (bounded so one huge
/// statement cannot bloat the flight recorder).
fn head_of(src: &str) -> String {
    let trimmed = src.trim();
    let mut head: String = trimmed.chars().take(48).collect();
    if head.len() < trimmed.len() {
        head.push('…');
    }
    head
}

/// Extract the catalog facts the analyzer wants: which `(class, field)`
/// pairs have B-tree indexes.
fn catalog_view(inner: &crate::database::DbInner) -> CatalogView {
    CatalogView {
        indexed: inner.indexes.keys().cloned().collect(),
    }
}

/// Does `src` start with keyword `kw` followed by a word boundary?
fn starts_with_kw(src: &str, kw: &str) -> bool {
    src.strip_prefix(kw)
        .is_some_and(|rest| rest.is_empty() || rest.starts_with(|c: char| !c.is_alphanumeric()))
}

/// Strip two leading keywords (`create cluster`, `create index`).
fn strip_kw2<'a>(src: &'a str, a: &str, b: &str) -> Option<&'a str> {
    let rest = src.strip_prefix(a)?;
    if !rest.starts_with(char::is_whitespace) {
        return None;
    }
    let rest = rest.trim_start().strip_prefix(b)?;
    if rest.is_empty() || rest.starts_with(char::is_whitespace) {
        Some(rest)
    } else {
        None
    }
}
