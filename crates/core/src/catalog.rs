//! The persistent catalog.
//!
//! Heap 1 of the store holds the database's self-description: class
//! declarations, cluster registrations, index declarations, and trigger
//! activations. Each catalog entry is one record; [`crate::Database`]
//! replays the catalog heap in record-id order at open time (classes must
//! be re-defined in their original order for base resolution to succeed —
//! record-id order gives exactly that).

use ode_model::encode::{read_value, write_value, Reader, Writer};
use ode_model::{ModelError, Oid, Value};
use ode_storage::RecordId;
use std::collections::HashMap;

use crate::error::Result;

/// Heap id of the catalog: the first heap a fresh store creates.
pub const CATALOG_HEAP: u32 = 1;

const K_CLASS: u8 = 1;
const K_CLUSTER: u8 = 2;
const K_INDEX: u8 = 3;
const K_ACTIVATION: u8 = 4;

/// One catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogRecord {
    /// A class declaration (payload: `ode_model::encode::encode_class`).
    Class(Vec<u8>),
    /// A cluster (type extent): class name → heap id.
    Cluster {
        /// Class whose extent this cluster is.
        class_name: String,
        /// The heap holding the extent.
        heap: u32,
    },
    /// A secondary index declaration.
    Index {
        /// Indexed class (covers its deep extent).
        class_name: String,
        /// Indexed field.
        field: String,
    },
    /// A live trigger activation (§6): `object->T(args)`.
    Activation {
        /// Activation (trigger) id, unique database-wide.
        id: u64,
        /// Subject object.
        oid: Oid,
        /// Trigger name (resolved on the subject's class).
        trigger: String,
        /// Activation arguments, bound to the declaration's parameters.
        args: Vec<Value>,
    },
}

impl CatalogRecord {
    /// Serialize for the catalog heap.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            CatalogRecord::Class(bytes) => {
                let mut out = vec![K_CLASS];
                out.extend_from_slice(bytes);
                out
            }
            CatalogRecord::Cluster { class_name, heap } => {
                let mut out = vec![K_CLUSTER];
                write_value(&mut w, &Value::Str(class_name.clone()));
                write_value(&mut w, &Value::Int(*heap as i64));
                out.extend_from_slice(&w.finish());
                out
            }
            CatalogRecord::Index { class_name, field } => {
                let mut out = vec![K_INDEX];
                write_value(&mut w, &Value::Str(class_name.clone()));
                write_value(&mut w, &Value::Str(field.clone()));
                out.extend_from_slice(&w.finish());
                out
            }
            CatalogRecord::Activation {
                id,
                oid,
                trigger,
                args,
            } => {
                let mut out = vec![K_ACTIVATION];
                write_value(&mut w, &Value::Int(*id as i64));
                write_value(&mut w, &Value::Ref(*oid));
                write_value(&mut w, &Value::Str(trigger.clone()));
                write_value(&mut w, &Value::Array(args.clone()));
                out.extend_from_slice(&w.finish());
                out
            }
        }
    }

    /// Deserialize from the catalog heap.
    pub fn decode(bytes: &[u8]) -> Result<CatalogRecord> {
        let Some((&kind, rest)) = bytes.split_first() else {
            return Err(ModelError::Decode("empty catalog record".into()).into());
        };
        let mut r = Reader::new(rest);
        let rec = match kind {
            K_CLASS => CatalogRecord::Class(rest.to_vec()),
            K_CLUSTER => {
                let name = read_value(&mut r)?;
                let heap = read_value(&mut r)?;
                CatalogRecord::Cluster {
                    class_name: name.as_str()?.to_string(),
                    heap: heap.as_int()? as u32,
                }
            }
            K_INDEX => {
                let name = read_value(&mut r)?;
                let field = read_value(&mut r)?;
                CatalogRecord::Index {
                    class_name: name.as_str()?.to_string(),
                    field: field.as_str()?.to_string(),
                }
            }
            K_ACTIVATION => {
                let id = read_value(&mut r)?.as_int()? as u64;
                let oid = read_value(&mut r)?.as_ref_oid()?;
                let trigger = read_value(&mut r)?.as_str()?.to_string();
                let args = match read_value(&mut r)? {
                    Value::Array(a) => a,
                    _ => return Err(ModelError::Decode("activation args not array".into()).into()),
                };
                CatalogRecord::Activation {
                    id,
                    oid,
                    trigger,
                    args,
                }
            }
            other => return Err(ModelError::Decode(format!("unknown catalog kind {other}")).into()),
        };
        Ok(rec)
    }
}

/// In-memory map from catalog entries to their record ids, so entries can
/// be updated/deleted later.
#[derive(Debug, Default)]
pub struct CatalogState {
    /// class name → rid of its class record.
    pub class_rids: HashMap<String, RecordId>,
    /// class name → rid of its cluster record.
    pub cluster_rids: HashMap<String, RecordId>,
    /// (class name, field) → rid of the index record.
    pub index_rids: HashMap<(String, String), RecordId>,
    /// activation id → rid of the activation record.
    pub activation_rids: HashMap<u64, RecordId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::RecordId;

    fn oid() -> Oid {
        Oid {
            cluster: 2,
            rid: RecordId { page: 3, slot: 4 },
        }
    }

    #[test]
    fn all_kinds_roundtrip() {
        let records = vec![
            CatalogRecord::Class(vec![1, 2, 3, 4]),
            CatalogRecord::Cluster {
                class_name: "person".into(),
                heap: 7,
            },
            CatalogRecord::Index {
                class_name: "stockitem".into(),
                field: "supplier".into(),
            },
            CatalogRecord::Activation {
                id: 99,
                oid: oid(),
                trigger: "reorder".into(),
                args: vec![Value::Int(10), Value::Str("rush".into())],
            },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(CatalogRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(CatalogRecord::decode(&[]).is_err());
        assert!(CatalogRecord::decode(&[77]).is_err());
        assert!(CatalogRecord::decode(&[K_CLUSTER, 0xFF]).is_err());
    }
}
