//! The persistent catalog.
//!
//! Heap 1 of the store holds the database's self-description: class
//! declarations, cluster registrations, index declarations, and trigger
//! activations. Each catalog entry is one record; [`crate::Database`]
//! replays the catalog heap in record-id order at open time (classes must
//! be re-defined in their original order for base resolution to succeed —
//! record-id order gives exactly that).

use ode_model::encode::{read_value, write_value, Reader, Writer};
use ode_model::{ModelError, Oid, Value};
use ode_obs::WorkStatRow;
use ode_storage::RecordId;
use std::collections::HashMap;

use crate::error::Result;
use crate::trigger::PendingEvent;

/// Heap id of the catalog: the first heap a fresh store creates.
pub const CATALOG_HEAP: u32 = 1;

const K_CLASS: u8 = 1;
const K_CLUSTER: u8 = 2;
const K_INDEX: u8 = 3;
const K_ACTIVATION: u8 = 4;
const K_STATS: u8 = 5;
const K_PENDING: u8 = 6;

/// One catalog entry.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogRecord {
    /// A class declaration (payload: `ode_model::encode::encode_class`).
    Class(Vec<u8>),
    /// A cluster (type extent): class name → heap id.
    Cluster {
        /// Class whose extent this cluster is.
        class_name: String,
        /// The heap holding the extent.
        heap: u32,
    },
    /// A secondary index declaration.
    Index {
        /// Indexed class (covers its deep extent).
        class_name: String,
        /// Indexed field.
        field: String,
    },
    /// A live trigger activation (§6): `object->T(args)`.
    Activation {
        /// Activation (trigger) id, unique database-wide.
        id: u64,
        /// Subject object.
        oid: Oid,
        /// Trigger name (resolved on the subject's class).
        trigger: String,
        /// Activation arguments, bound to the declaration's parameters.
        args: Vec<Value>,
    },
    /// Accumulated workload statistics (per-cluster / per-index read,
    /// write, and scan counters), written at checkpoint time so the
    /// counters survive restarts. At most one lives in the catalog; it is
    /// updated in place (same rid) on every checkpoint.
    Stats(Vec<WorkStatRow>),
    /// One fired-trigger event awaiting the decoupled scheduler. Each
    /// event is its own record (a 100k-trigger storm must not be bounded
    /// by the max record size): enqueueing puts the record and
    /// acknowledging deletes it, both in the same store batch as the
    /// commit that fires or runs the action, so the pending set is exactly
    /// as durable as the commits that produced it.
    Pending(PendingEvent),
}

impl CatalogRecord {
    /// Serialize for the catalog heap.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        match self {
            CatalogRecord::Class(bytes) => {
                let mut out = vec![K_CLASS];
                out.extend_from_slice(bytes);
                out
            }
            CatalogRecord::Cluster { class_name, heap } => {
                let mut out = vec![K_CLUSTER];
                write_value(&mut w, &Value::Str(class_name.clone()));
                write_value(&mut w, &Value::Int(*heap as i64));
                out.extend_from_slice(&w.finish());
                out
            }
            CatalogRecord::Index { class_name, field } => {
                let mut out = vec![K_INDEX];
                write_value(&mut w, &Value::Str(class_name.clone()));
                write_value(&mut w, &Value::Str(field.clone()));
                out.extend_from_slice(&w.finish());
                out
            }
            CatalogRecord::Activation {
                id,
                oid,
                trigger,
                args,
            } => {
                let mut out = vec![K_ACTIVATION];
                write_value(&mut w, &Value::Int(*id as i64));
                write_value(&mut w, &Value::Ref(*oid));
                write_value(&mut w, &Value::Str(trigger.clone()));
                write_value(&mut w, &Value::Array(args.clone()));
                out.extend_from_slice(&w.finish());
                out
            }
            CatalogRecord::Stats(rows) => {
                let mut out = vec![K_STATS];
                write_value(&mut w, &Value::Int(rows.len() as i64));
                for row in rows {
                    write_value(&mut w, &Value::Str(row.key.clone()));
                    write_value(&mut w, &Value::Int(row.reads as i64));
                    write_value(&mut w, &Value::Int(row.writes as i64));
                    write_value(&mut w, &Value::Int(row.scans as i64));
                }
                out.extend_from_slice(&w.finish());
                out
            }
            CatalogRecord::Pending(e) => {
                let mut out = vec![K_PENDING];
                write_value(&mut w, &Value::Int(e.id as i64));
                write_value(&mut w, &Value::Int(e.activation as i64));
                write_value(&mut w, &Value::Ref(e.oid));
                write_value(&mut w, &Value::Str(e.trigger.clone()));
                write_value(&mut w, &Value::Array(e.args.clone()));
                write_value(&mut w, &Value::Int(e.depth as i64));
                out.extend_from_slice(&w.finish());
                out
            }
        }
    }

    /// Deserialize from the catalog heap.
    pub fn decode(bytes: &[u8]) -> Result<CatalogRecord> {
        let Some((&kind, rest)) = bytes.split_first() else {
            return Err(ModelError::Decode("empty catalog record".into()).into());
        };
        let mut r = Reader::new(rest);
        let rec = match kind {
            K_CLASS => CatalogRecord::Class(rest.to_vec()),
            K_CLUSTER => {
                let name = read_value(&mut r)?;
                let heap = read_value(&mut r)?;
                CatalogRecord::Cluster {
                    class_name: name.as_str()?.to_string(),
                    heap: heap.as_int()? as u32,
                }
            }
            K_INDEX => {
                let name = read_value(&mut r)?;
                let field = read_value(&mut r)?;
                CatalogRecord::Index {
                    class_name: name.as_str()?.to_string(),
                    field: field.as_str()?.to_string(),
                }
            }
            K_ACTIVATION => {
                let id = read_value(&mut r)?.as_int()? as u64;
                let oid = read_value(&mut r)?.as_ref_oid()?;
                let trigger = read_value(&mut r)?.as_str()?.to_string();
                let args = match read_value(&mut r)? {
                    Value::Array(a) => a,
                    _ => return Err(ModelError::Decode("activation args not array".into()).into()),
                };
                CatalogRecord::Activation {
                    id,
                    oid,
                    trigger,
                    args,
                }
            }
            K_STATS => {
                let count = read_value(&mut r)?.as_int()? as usize;
                let mut rows = Vec::with_capacity(count);
                for _ in 0..count {
                    let key = read_value(&mut r)?.as_str()?.to_string();
                    let reads = read_value(&mut r)?.as_int()? as u64;
                    let writes = read_value(&mut r)?.as_int()? as u64;
                    let scans = read_value(&mut r)?.as_int()? as u64;
                    rows.push(WorkStatRow {
                        key,
                        reads,
                        writes,
                        scans,
                    });
                }
                CatalogRecord::Stats(rows)
            }
            K_PENDING => {
                let id = read_value(&mut r)?.as_int()? as u64;
                let activation = read_value(&mut r)?.as_int()? as u64;
                let oid = read_value(&mut r)?.as_ref_oid()?;
                let trigger = read_value(&mut r)?.as_str()?.to_string();
                let args = match read_value(&mut r)? {
                    Value::Array(a) => a,
                    _ => {
                        return Err(ModelError::Decode("pending-event args not array".into()).into())
                    }
                };
                let depth = read_value(&mut r)?.as_int()? as u64;
                CatalogRecord::Pending(PendingEvent {
                    id,
                    activation,
                    oid,
                    trigger,
                    args,
                    depth,
                })
            }
            other => return Err(ModelError::Decode(format!("unknown catalog kind {other}")).into()),
        };
        Ok(rec)
    }
}

/// In-memory map from catalog entries to their record ids, so entries can
/// be updated/deleted later.
#[derive(Debug, Default)]
pub struct CatalogState {
    /// class name → rid of its class record.
    pub class_rids: HashMap<String, RecordId>,
    /// class name → rid of its cluster record.
    pub cluster_rids: HashMap<String, RecordId>,
    /// (class name, field) → rid of the index record.
    pub index_rids: HashMap<(String, String), RecordId>,
    /// activation id → rid of the activation record.
    pub activation_rids: HashMap<u64, RecordId>,
    /// rid of the (single) workload-statistics record, if one has been
    /// checkpointed.
    pub stats_rid: Option<RecordId>,
    /// pending-event id → rid of its event record.
    pub pending_rids: HashMap<u64, RecordId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ode_storage::RecordId;

    fn oid() -> Oid {
        Oid {
            cluster: 2,
            rid: RecordId { page: 3, slot: 4 },
        }
    }

    #[test]
    fn all_kinds_roundtrip() {
        let records = vec![
            CatalogRecord::Class(vec![1, 2, 3, 4]),
            CatalogRecord::Cluster {
                class_name: "person".into(),
                heap: 7,
            },
            CatalogRecord::Index {
                class_name: "stockitem".into(),
                field: "supplier".into(),
            },
            CatalogRecord::Activation {
                id: 99,
                oid: oid(),
                trigger: "reorder".into(),
                args: vec![Value::Int(10), Value::Str("rush".into())],
            },
            CatalogRecord::Stats(vec![
                WorkStatRow {
                    key: "cluster:stockitem".into(),
                    reads: 100,
                    writes: 20,
                    scans: 3,
                },
                WorkStatRow {
                    key: "index:stockitem.supplier".into(),
                    reads: 7,
                    writes: 0,
                    scans: 0,
                },
            ]),
            CatalogRecord::Stats(Vec::new()),
            CatalogRecord::Pending(PendingEvent {
                id: 12,
                activation: 99,
                oid: oid(),
                trigger: "reorder".into(),
                args: vec![Value::Int(10)],
                depth: 2,
            }),
            CatalogRecord::Pending(PendingEvent {
                id: 13,
                activation: 1,
                oid: oid(),
                trigger: "low_stock".into(),
                args: Vec::new(),
                depth: 0,
            }),
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(CatalogRecord::decode(&bytes).unwrap(), rec);
        }
    }

    #[test]
    fn garbage_rejected() {
        assert!(CatalogRecord::decode(&[]).is_err());
        assert!(CatalogRecord::decode(&[77]).is_err());
        assert!(CatalogRecord::decode(&[K_CLUSTER, 0xFF]).is_err());
    }
}
