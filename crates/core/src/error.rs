//! Engine error type.

use std::fmt;

use ode_analyze::Diagnostic;
use ode_model::ModelError;
use ode_storage::StorageError;

/// Errors surfaced by the Ode engine.
#[derive(Debug)]
pub enum OdeError {
    /// Substrate failure.
    Storage(StorageError),
    /// Schema/expression failure.
    Model(ModelError),
    /// `pnew` into a cluster that was never created (§2.5: "Before creating
    /// a persistent object, the corresponding cluster must exist").
    NoSuchCluster(String),
    /// Named object/oid does not denote a live persistent object.
    NoSuchObject(String),
    /// A constraint evaluated to false: the transaction is aborted and
    /// rolled back (§5, footnote 17).
    ConstraintViolation {
        /// Class declaring the violated constraint.
        class: String,
        /// Constraint name.
        constraint: String,
        /// Constraint source text.
        src: String,
        /// Display form of the offending object's id.
        object: String,
    },
    /// Version-related misuse (deleting the current version, dereferencing
    /// a deleted version, writing a frozen version).
    Version(String),
    /// Trigger-related misuse (unknown trigger, wrong arity, unknown id).
    Trigger(String),
    /// Trigger cascade exceeded the configured depth limit (perpetual
    /// triggers can loop; the paper leaves this unbounded, we do not).
    TriggerCascade {
        /// The configured limit that was hit.
        limit: usize,
    },
    /// Commit-time validation found that another transaction committed a
    /// conflicting change after this one began (optimistic concurrency,
    /// DESIGN.md §13). Transient: the work is rolled back and a retry
    /// against the new state will usually succeed.
    WriteConflict {
        /// What collided, for diagnostics ("object 3:1.0", "extent of
        /// cluster 5", "schema change").
        what: String,
    },
    /// The transaction was already aborted and cannot be used further.
    TransactionAborted,
    /// The static analyzer rejected the statement before any transaction
    /// work (O++ is a compiled language; see DESIGN.md §9). Carries every
    /// diagnostic the pass produced, errors and warnings alike.
    Analysis(Vec<Diagnostic>),
    /// An evaluation error annotated with the statement it came from, so
    /// shell/server users see *where* it failed.
    InStatement {
        /// The originating statement text (truncated for display).
        statement: String,
        /// The underlying failure.
        source: Box<OdeError>,
    },
    /// Generic misuse of the API.
    Usage(String),
}

impl fmt::Display for OdeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OdeError::Storage(e) => write!(f, "storage: {e}"),
            OdeError::Model(e) => write!(f, "model: {e}"),
            OdeError::NoSuchCluster(name) => {
                write!(f, "cluster `{name}` does not exist (create it before pnew)")
            }
            OdeError::NoSuchObject(what) => write!(f, "no such object: {what}"),
            OdeError::ConstraintViolation {
                class,
                constraint,
                src,
                object,
            } => write!(
                f,
                "constraint `{constraint}` of class `{class}` violated by object {object}: {src}"
            ),
            OdeError::Version(msg) => write!(f, "version error: {msg}"),
            OdeError::Trigger(msg) => write!(f, "trigger error: {msg}"),
            OdeError::TriggerCascade { limit } => {
                write!(f, "trigger cascade exceeded {limit} rounds")
            }
            OdeError::WriteConflict { what } => {
                write!(f, "write conflict on {what} (concurrent commit; retry)")
            }
            OdeError::TransactionAborted => write!(f, "transaction already aborted"),
            OdeError::Analysis(diags) => {
                let errors = diags
                    .iter()
                    .filter(|d| d.severity == ode_analyze::Severity::Error)
                    .count();
                write!(f, "analysis rejected the statement ({errors} error(s))")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
            OdeError::InStatement { statement, source } => {
                write!(f, "{source} (in statement `{statement}`)")
            }
            OdeError::Usage(msg) => write!(f, "usage error: {msg}"),
        }
    }
}

impl std::error::Error for OdeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OdeError::Storage(e) => Some(e),
            OdeError::Model(e) => Some(e),
            OdeError::InStatement { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl OdeError {
    /// Is this *transient* — worth retrying after a backoff? True when
    /// the root cause is a retryable [`StorageError`] (see
    /// [`StorageError::is_transient`]) or a commit-time
    /// [`OdeError::WriteConflict`]; the server maps these to the wire
    /// protocol's retryable `Unavailable` kind.
    pub fn is_unavailable(&self) -> bool {
        match self {
            OdeError::Storage(e) => e.is_transient(),
            OdeError::WriteConflict { .. } => true,
            OdeError::InStatement { source, .. } => source.is_unavailable(),
            _ => false,
        }
    }
}

impl From<StorageError> for OdeError {
    fn from(e: StorageError) -> Self {
        OdeError::Storage(e)
    }
}

impl From<ModelError> for OdeError {
    fn from(e: ModelError) -> Self {
        OdeError::Model(e)
    }
}

/// Result alias for the engine.
pub type Result<T> = std::result::Result<T, OdeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: OdeError = StorageError::NoSuchHeap(4).into();
        assert!(e.to_string().contains("storage"));
        let e: OdeError = ModelError::UnknownClass("x".into()).into();
        assert!(e.to_string().contains("unknown class"));
        let e = OdeError::ConstraintViolation {
            class: "female".into(),
            constraint: "female#0".into(),
            src: "sex == 'f'".into(),
            object: "2:1.0".into(),
        };
        let s = e.to_string();
        assert!(s.contains("female") && s.contains("sex == 'f'"), "{s}");
    }
}
