//! Engine behavior under injected storage faults: bounded commit retry,
//! release-error accounting, and the permanent-vs-transient split
//! (DESIGN.md §10).

use std::sync::Arc;

use ode_core::{Database, DbConfig};
use ode_storage::{FailpointConfig, FailpointStore, FaultKind, MemStore, Store};

fn faulty_db(retries: usize) -> (Database, Arc<FailpointStore>) {
    let inner: Arc<dyn Store> = Arc::new(MemStore::new());
    let fp = Arc::new(FailpointStore::new(inner, FailpointConfig::disabled(1)));
    let db = Database::from_store(
        Arc::clone(&fp) as Arc<dyn Store>,
        DbConfig {
            commit_retries: retries,
            ..DbConfig::default()
        },
    )
    .unwrap();
    db.define_from_source("class item { int n = 0; }").unwrap();
    db.create_cluster("item").unwrap();
    (db, fp)
}

#[test]
fn transient_commit_failure_is_retried_and_succeeds() {
    let (db, fp) = faulty_db(2);
    fp.force(FaultKind::CommitPre);
    let oid = db
        .transaction(|tx| tx.pnew("item", &[("n", 7.into())]))
        .expect("one transient fault is absorbed by the retry budget");
    assert_eq!(fp.faults_injected(), 1);
    assert_eq!(db.telemetry().txn.commit_retries, 1);
    // The retried batch landed: the object is readable afterwards.
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "n")?.as_int()?, 7);
        Ok(())
    })
    .unwrap();
}

#[test]
fn retry_budget_exhaustion_aborts_with_unavailable() {
    let (db, fp) = faulty_db(0);
    fp.force(FaultKind::CommitPre);
    let err = db
        .transaction(|tx| tx.pnew("item", &[]))
        .expect_err("no retry budget: the transient fault surfaces");
    assert!(err.is_unavailable(), "{err}");
    assert_eq!(db.telemetry().txn.commit_retries, 0);
    // Nothing half-applied: a later transaction starts from a clean store.
    db.transaction(|tx| tx.pnew("item", &[])).unwrap();
}

#[test]
fn failed_release_on_abort_is_counted_not_swallowed() {
    let (db, fp) = faulty_db(2);
    fp.force(FaultKind::Release);
    let err = db
        .transaction(|tx| {
            tx.pnew("item", &[])?;
            Err::<(), _>(ode_core::OdeError::Usage("forced abort".into()))
        })
        .expect_err("transaction aborts");
    assert!(
        !err.is_unavailable(),
        "usage errors are not retryable: {err}"
    );
    assert_eq!(db.telemetry().txn.release_errors, 1);
}

#[test]
fn permanent_errors_are_not_unavailable() {
    let (db, _fp) = faulty_db(2);
    let err = db
        .transaction(|tx| tx.pnew("nonexistent", &[]))
        .expect_err("unknown class");
    assert!(!err.is_unavailable(), "{err}");
}
