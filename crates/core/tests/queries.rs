//! Tests for §3: `forall` with `suchthat`/`by`, join queries over multiple
//! loop variables, index-accelerated selection, fixpoint (recursive)
//! queries, and set iteration with insert-during-iteration.

use ode_core::prelude::*;
use ode_model::SetValue;

fn inventory(db: &Database, n: i64) {
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 0)
            .field("supplier", Type::Str),
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
    db.transaction(|tx| {
        for i in 0..n {
            tx.pnew(
                "stockitem",
                &[
                    ("name", Value::from(format!("part-{i:04}"))),
                    ("quantity", Value::Int(i)),
                    (
                        "supplier",
                        Value::from(if i % 3 == 0 { "at&t" } else { "other" }),
                    ),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn suchthat_filters() {
    let db = Database::in_memory();
    inventory(&db, 100);
    let mut tx = db.begin();
    let n = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("quantity >= 90")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 10);
    let n = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("supplier == \"at&t\" && quantity < 9")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 3); // 0, 3, 6
    tx.commit().unwrap();
}

#[test]
fn by_orders_ascending_and_descending() {
    let db = Database::in_memory();
    inventory(&db, 10);
    let mut tx = db.begin();
    let names = tx
        .forall("stockitem")
        .unwrap()
        .by_desc("quantity")
        .unwrap()
        .collect_values("name")
        .unwrap();
    assert_eq!(names[0], Value::from("part-0009"));
    assert_eq!(names[9], Value::from("part-0000"));
    let quantities = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("quantity % 2 == 0")
        .unwrap()
        .by("quantity")
        .unwrap()
        .collect_values("quantity")
        .unwrap();
    assert_eq!(
        quantities,
        (0..10).step_by(2).map(Value::Int).collect::<Vec<_>>()
    );
    tx.commit().unwrap();
}

#[test]
fn projection_can_compute_expressions() {
    let db = Database::in_memory();
    inventory(&db, 4);
    let mut tx = db.begin();
    let vals = tx
        .forall("stockitem")
        .unwrap()
        .by("quantity")
        .unwrap()
        .collect_values("quantity * 2 + 1")
        .unwrap();
    assert_eq!(
        vals,
        vec![Value::Int(1), Value::Int(3), Value::Int(5), Value::Int(7)]
    );
    tx.commit().unwrap();
}

#[test]
fn iteration_sees_transaction_overlay() {
    let db = Database::in_memory();
    inventory(&db, 5);
    let mut tx = db.begin();
    // Add one uncommitted object and modify a committed one so it now
    // qualifies.
    tx.pnew(
        "stockitem",
        &[
            ("name", Value::from("fresh")),
            ("quantity", Value::Int(1000)),
        ],
    )
    .unwrap();
    let victim = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("quantity == 0")
        .unwrap()
        .collect_oids()
        .unwrap()[0];
    tx.set(victim, "quantity", 2000i64).unwrap();
    let n = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("quantity >= 1000")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 2);
    // Deleted objects disappear from iteration immediately.
    tx.pdelete(victim).unwrap();
    let n = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("quantity >= 1000")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 1);
    tx.commit().unwrap();
}

#[test]
fn indexed_equality_matches_full_scan() {
    let db = Database::in_memory();
    inventory(&db, 300);
    db.create_index("stockitem", "supplier").unwrap();
    let mut tx = db.begin();
    let with_index = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("supplier == \"at&t\"")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(with_index, 100);
    tx.commit().unwrap();
}

#[test]
fn indexed_range_matches_full_scan() {
    let db = Database::in_memory();
    inventory(&db, 200);
    db.create_index("stockitem", "quantity").unwrap();
    let mut tx = db.begin();
    for src in [
        "quantity < 17",
        "quantity <= 17",
        "quantity > 180",
        "quantity >= 180",
        "17 > quantity", // flipped operand order
    ] {
        let n = tx
            .forall("stockitem")
            .unwrap()
            .suchthat(src)
            .unwrap()
            .count()
            .unwrap();
        let expected = match src {
            "quantity < 17" | "17 > quantity" => 17,
            "quantity <= 17" => 18,
            "quantity > 180" => 19,
            _ => 20,
        };
        assert_eq!(n, expected, "{src}");
    }
    tx.commit().unwrap();
}

#[test]
fn index_stays_correct_after_updates_deletes_and_overlay() {
    let db = Database::in_memory();
    inventory(&db, 50);
    db.create_index("stockitem", "quantity").unwrap();
    // Committed updates move index entries.
    let oid = db
        .transaction(|tx| {
            let oid = tx
                .forall("stockitem")
                .unwrap()
                .suchthat("quantity == 7")
                .unwrap()
                .collect_oids()
                .unwrap()[0];
            tx.set(oid, "quantity", 7000i64)?;
            Ok(oid)
        })
        .unwrap();
    let mut tx = db.begin();
    assert_eq!(
        tx.forall("stockitem")
            .unwrap()
            .suchthat("quantity == 7")
            .unwrap()
            .count()
            .unwrap(),
        0
    );
    assert_eq!(
        tx.forall("stockitem")
            .unwrap()
            .suchthat("quantity == 7000")
            .unwrap()
            .collect_oids()
            .unwrap(),
        vec![oid]
    );
    drop(tx);

    // Uncommitted overlay: a new object and an in-txn update are seen even
    // though the committed index does not know them.
    let mut tx = db.begin();
    tx.pnew(
        "stockitem",
        &[("name", Value::from("x")), ("quantity", Value::Int(7000))],
    )
    .unwrap();
    tx.set(oid, "quantity", 5i64).unwrap();
    assert_eq!(
        tx.forall("stockitem")
            .unwrap()
            .suchthat("quantity == 7000")
            .unwrap()
            .count()
            .unwrap(),
        1,
        "in-txn update must hide the stale committed index entry"
    );
    drop(tx);

    // Committed deletes remove entries.
    db.transaction(|tx| tx.pdelete(oid)).unwrap();
    let mut tx = db.begin();
    assert_eq!(
        tx.forall("stockitem")
            .unwrap()
            .suchthat("quantity == 7000")
            .unwrap()
            .count()
            .unwrap(),
        0
    );
    tx.commit().unwrap();
}

#[test]
fn index_survives_reopen_via_rebuild() {
    let dir = std::env::temp_dir().join(format!("ode-core-ixreopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        db.define_class(
            ClassBuilder::new("stockitem")
                .field("name", Type::Str)
                .field_default("quantity", Type::Int, 0)
                .field("supplier", Type::Str),
        )
        .unwrap();
        db.create_cluster("stockitem").unwrap();
        db.create_index("stockitem", "supplier").unwrap();
        db.transaction(|tx| {
            for i in 0..30 {
                tx.pnew(
                    "stockitem",
                    &[
                        ("name", Value::from(format!("p{i}"))),
                        ("supplier", Value::from(if i % 2 == 0 { "a" } else { "b" })),
                    ],
                )?;
            }
            Ok(())
        })
        .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let mut tx = db.begin();
        let n = tx
            .forall("stockitem")
            .unwrap()
            .suchthat("supplier == \"a\"")
            .unwrap()
            .count()
            .unwrap();
        assert_eq!(n, 15);
        tx.commit().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

// ------------------------------------------------------------------ joins

fn company(db: &Database) {
    db.define_class(
        ClassBuilder::new("department")
            .field("dname", Type::Str)
            .field("dno", Type::Int),
    )
    .unwrap();
    db.define_class(
        ClassBuilder::new("employee")
            .field("ename", Type::Str)
            .field("deptno", Type::Int),
    )
    .unwrap();
    db.create_cluster("department").unwrap();
    db.create_cluster("employee").unwrap();
    db.transaction(|tx| {
        for d in 0..3i64 {
            tx.pnew(
                "department",
                &[
                    ("dname", Value::from(format!("dept-{d}"))),
                    ("dno", Value::Int(d)),
                ],
            )?;
        }
        for e in 0..12i64 {
            tx.pnew(
                "employee",
                &[
                    ("ename", Value::from(format!("emp-{e}"))),
                    ("deptno", Value::Int(e % 3)),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn join_with_multiple_loop_variables() {
    // §3.1: forall e in employee, d in department suchthat (e.deptno == d.dno)
    let db = Database::in_memory();
    company(&db);
    let mut tx = db.begin();
    let mut pairs = 0usize;
    tx.forall_join(&[("e", "employee"), ("d", "department")])
        .unwrap()
        .suchthat("e.deptno == d.dno")
        .unwrap()
        .run(|tx, binding| {
            let e = binding["e"];
            let d = binding["d"];
            assert_eq!(tx.get(e, "deptno")?, tx.get(d, "dno")?);
            pairs += 1;
            Ok(())
        })
        .unwrap();
    assert_eq!(pairs, 12); // every employee matches exactly one department
    tx.commit().unwrap();
}

#[test]
fn join_predicate_can_mix_variables_and_literals() {
    let db = Database::in_memory();
    company(&db);
    let mut tx = db.begin();
    let rows = tx
        .forall_join(&[("e", "employee"), ("d", "department")])
        .unwrap()
        .suchthat("e.deptno == d.dno && d.dname == \"dept-1\"")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 4);
    tx.commit().unwrap();
}

#[test]
fn cross_product_without_predicate() {
    let db = Database::in_memory();
    company(&db);
    let mut tx = db.begin();
    let rows = tx
        .forall_join(&[("e", "employee"), ("d", "department")])
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 36);
    tx.commit().unwrap();
}

#[test]
fn three_way_join() {
    let db = Database::in_memory();
    company(&db);
    db.define_class(ClassBuilder::new("project").field("pdept", Type::Int))
        .unwrap();
    db.create_cluster("project").unwrap();
    db.transaction(|tx| {
        tx.pnew("project", &[("pdept", Value::Int(0))])?;
        tx.pnew("project", &[("pdept", Value::Int(1))])?;
        Ok(())
    })
    .unwrap();
    let mut tx = db.begin();
    let rows = tx
        .forall_join(&[("e", "employee"), ("d", "department"), ("p", "project")])
        .unwrap()
        .suchthat("e.deptno == d.dno && p.pdept == d.dno")
        .unwrap()
        .collect()
        .unwrap();
    assert_eq!(rows.len(), 8); // 4 employees in dept 0 + 4 in dept 1
    tx.commit().unwrap();
}

// --------------------------------------------------------------- fixpoint

/// §3.2 parts explosion: which parts (transitively) make up a given part?
#[test]
fn fixpoint_parts_explosion_via_cluster() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("usage")
            .field("parent", Type::Str)
            .field("child", Type::Str),
    )
    .unwrap();
    db.define_class(ClassBuilder::new("result").field("part", Type::Str))
        .unwrap();
    db.create_cluster("usage").unwrap();
    db.create_cluster("result").unwrap();
    // engine -> {block, piston}; block -> {bolt}; piston -> {ring, bolt}
    db.transaction(|tx| {
        for (p, c) in [
            ("engine", "block"),
            ("engine", "piston"),
            ("block", "bolt"),
            ("piston", "ring"),
            ("piston", "bolt"),
            ("wheel", "rim"), // unrelated
        ] {
            tx.pnew(
                "usage",
                &[("parent", Value::from(p)), ("child", Value::from(c))],
            )?;
        }
        Ok(())
    })
    .unwrap();

    // Transitive closure: seed the result cluster with "engine", then
    // iterate it with fixpoint semantics, adding children of each part as
    // they are discovered — new result objects are visited too.
    let mut found = std::collections::BTreeSet::new();
    db.transaction(|tx| {
        tx.pnew("result", &[("part", Value::from("engine"))])?;
        tx.forall("result").unwrap().fixpoint().run(|tx, r| {
            let part = tx.get(r, "part")?.as_str()?.to_string();
            found.insert(part.clone());
            let children: Vec<String> = tx
                .forall("usage")?
                .suchthat(&format!("parent == \"{part}\""))?
                .collect_values("child")?
                .into_iter()
                .map(|v| v.as_str().unwrap().to_string())
                .collect();
            for c in children {
                let already = tx
                    .forall("result")?
                    .suchthat(&format!("part == \"{c}\""))?
                    .count()?;
                if already == 0 {
                    tx.pnew("result", &[("part", Value::from(c.as_str()))])?;
                }
            }
            Ok(())
        })?;
        Ok(())
    })
    .unwrap();
    let expected: std::collections::BTreeSet<String> =
        ["engine", "block", "piston", "bolt", "ring"]
            .into_iter()
            .map(String::from)
            .collect();
    assert_eq!(found, expected);
}

#[test]
fn non_fixpoint_iteration_does_not_see_additions() {
    let db = Database::in_memory();
    db.define_class(ClassBuilder::new("node").field_default("gen", Type::Int, 0))
        .unwrap();
    db.create_cluster("node").unwrap();
    db.transaction(|tx| {
        tx.pnew("node", &[("gen", Value::Int(0))])?;
        tx.pnew("node", &[("gen", Value::Int(0))])?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        let mut visited = 0;
        tx.forall("node").unwrap().run(|tx, _oid| {
            visited += 1;
            // Each visit creates a new node; a plain iteration must not
            // chase them.
            tx.pnew("node", &[("gen", Value::Int(1))])?;
            Ok(())
        })?;
        assert_eq!(visited, 2);
        Ok(())
    })
    .unwrap();
    assert_eq!(db.extent_size("node", true).unwrap(), 4);
}

#[test]
fn fixpoint_terminates_when_no_new_objects() {
    let db = Database::in_memory();
    db.define_class(ClassBuilder::new("node").field_default("gen", Type::Int, 0))
        .unwrap();
    db.create_cluster("node").unwrap();
    db.transaction(|tx| {
        tx.pnew("node", &[])?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        let mut visited = 0;
        tx.forall("node").unwrap().fixpoint().run(|tx, oid| {
            visited += 1;
            let gen = tx.get(oid, "gen")?.as_int()?;
            if gen < 5 {
                tx.pnew("node", &[("gen", Value::Int(gen + 1))])?;
            }
            Ok(())
        })?;
        assert_eq!(visited, 6); // gen 0..=5
        Ok(())
    })
    .unwrap();
}

// -------------------------------------------------------------------- sets

#[test]
fn set_fields_and_iteration() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("part")
            .field("name", Type::Str)
            .field_default(
                "children",
                Type::Set(Box::new(Type::Str)),
                Value::Set(SetValue::new()),
            ),
    )
    .unwrap();
    db.create_cluster("part").unwrap();
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("part", &[("name", Value::from("engine"))])?;
            assert!(tx.set_insert(oid, "children", "block")?);
            assert!(tx.set_insert(oid, "children", "piston")?);
            assert!(!tx.set_insert(oid, "children", "block")?, "dedup");
            Ok(oid)
        })
        .unwrap();
    db.transaction(|tx| {
        let v = tx.get(oid, "children")?;
        assert_eq!(v.as_set()?.len(), 2);
        assert!(tx.set_remove(oid, "children", &Value::from("block"))?);
        assert!(!tx.set_remove(oid, "children", &Value::from("block"))?);
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "children")?.as_set()?.len(), 1);
        Ok(())
    })
    .unwrap();
}

#[test]
fn set_iteration_visits_elements_added_during_iteration() {
    // §3.2 over a set: compute 0..=10 by inserting successors while
    // iterating.
    let db = Database::in_memory();
    db.define_class(ClassBuilder::new("holder").field_default(
        "nums",
        Type::Set(Box::new(Type::Int)),
        Value::Set(SetValue::new()),
    ))
    .unwrap();
    db.create_cluster("holder").unwrap();
    db.transaction(|tx| {
        let h = tx.pnew("holder", &[])?;
        tx.set_insert(h, "nums", 0i64)?;
        let visited = tx.iterate_set(h, "nums", |tx, v| {
            let n = v.as_int()?;
            if n < 10 {
                tx.set_insert(h, "nums", n + 1)?;
            }
            Ok(())
        })?;
        assert_eq!(visited, 11);
        assert_eq!(tx.get(h, "nums")?.as_set()?.len(), 11);
        Ok(())
    })
    .unwrap();
}

#[test]
fn membership_operator_in_queries() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("part")
            .field("name", Type::Str)
            .field_default(
                "tags",
                Type::Set(Box::new(Type::Str)),
                Value::Set(SetValue::new()),
            ),
    )
    .unwrap();
    db.create_cluster("part").unwrap();
    db.transaction(|tx| {
        let a = tx.pnew("part", &[("name", Value::from("a"))])?;
        tx.set_insert(a, "tags", "critical")?;
        let b = tx.pnew("part", &[("name", Value::from("b"))])?;
        tx.set_insert(b, "tags", "spare")?;
        Ok(())
    })
    .unwrap();
    let mut tx = db.begin();
    let names = tx
        .forall("part")
        .unwrap()
        .suchthat("'critical' in tags")
        .unwrap()
        .collect_values("name")
        .unwrap();
    assert_eq!(names, vec![Value::from("a")]);
    tx.commit().unwrap();
}

#[test]
fn early_error_in_body_propagates() {
    let db = Database::in_memory();
    inventory(&db, 3);
    let mut tx = db.begin();
    let err = tx
        .forall("stockitem")
        .unwrap()
        .run(|_tx, _oid| Err(ode_core::OdeError::Usage("stop".into())));
    assert!(err.is_err());
    tx.commit().unwrap();
}
