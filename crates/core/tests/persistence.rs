//! Engine tests for §2 of the paper: persistent objects, object identity,
//! clusters, the dual volatile/persistent store, and transaction
//! atomicity/durability.

use ode_core::prelude::*;
use ode_core::OdeError;

/// The paper's running example (§2.3): the stockitem class.
fn define_stockitem(db: &Database) {
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("allowance", Type::Float, 0.0)
            .field_default("quantity", Type::Int, 0)
            .field_default("max_quantity", Type::Int, 0)
            .field_default("price", Type::Float, 0.0)
            .field_default("reorder_level", Type::Int, 0)
            .field("supplier", Type::Str)
            .field("supplier_address", Type::Str),
    )
    .unwrap();
}

/// §2.4: `sip = pnew stockitem("512 dram", 0.05, 7500, 15000, 5.00, 15, …)`.
fn new_dram(tx: &mut Transaction) -> Oid {
    tx.pnew(
        "stockitem",
        &[
            ("name", Value::from("512 dram")),
            ("allowance", Value::Float(0.05)),
            ("quantity", Value::Int(7500)),
            ("max_quantity", Value::Int(15000)),
            ("price", Value::Float(5.00)),
            ("reorder_level", Value::Int(15)),
            ("supplier", Value::from("at&t")),
            ("supplier_address", Value::from("berkeley hts, nj")),
        ],
    )
    .unwrap()
}

#[test]
fn pnew_requires_cluster() {
    // §2.5: "Before creating a persistent object, the corresponding
    // cluster must exist."
    let db = Database::in_memory();
    define_stockitem(&db);
    let mut tx = db.begin();
    let err = tx.pnew("stockitem", &[]).unwrap_err();
    assert!(matches!(err, OdeError::NoSuchCluster(_)), "{err}");
}

#[test]
fn create_cluster_is_idempotent() {
    let db = Database::in_memory();
    define_stockitem(&db);
    let a = db.create_cluster("stockitem").unwrap();
    let b = db.create_cluster("stockitem").unwrap();
    assert_eq!(a, b);
    assert!(db.has_cluster("stockitem"));
    assert!(!db.has_cluster_checked("ghost"));
}

trait HasClusterChecked {
    fn has_cluster_checked(&self, name: &str) -> bool;
}

impl HasClusterChecked for Database {
    fn has_cluster_checked(&self, name: &str) -> bool {
        self.has_cluster(name)
    }
}

#[test]
fn pnew_read_roundtrip_with_defaults_and_inits() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    db.transaction(|tx| {
        let oid = new_dram(tx);
        assert_eq!(tx.get(oid, "name")?, Value::from("512 dram"));
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(7500));
        Ok(())
    })
    .unwrap();
}

#[test]
fn oid_is_stable_identity_across_transactions() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    let oid = db.transaction(|tx| Ok(new_dram(tx))).unwrap();
    db.transaction(|tx| {
        tx.set(oid, "quantity", 6000i64)?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(6000));
        assert_eq!(tx.get(oid, "name")?, Value::from("512 dram"));
        Ok(())
    })
    .unwrap();
}

#[test]
fn read_your_writes_within_transaction() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    db.transaction(|tx| {
        let oid = new_dram(tx);
        tx.set(oid, "quantity", 1i64)?;
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(1));
        tx.set(oid, "quantity", 2i64)?;
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(2));
        Ok(())
    })
    .unwrap();
}

#[test]
fn abort_discards_everything() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    let keeper = db.transaction(|tx| Ok(new_dram(tx))).unwrap();

    // Abort a transaction that created an object and modified another.
    let mut tx = db.begin();
    let doomed = new_dram(&mut tx);
    tx.set(keeper, "quantity", 1i64).unwrap();
    tx.abort();

    let mut tx = db.begin();
    assert!(!tx.exists(doomed));
    assert_eq!(tx.get(keeper, "quantity").unwrap(), Value::Int(7500));
    // The cluster still holds exactly one object.
    assert_eq!(tx.forall("stockitem").unwrap().count().unwrap(), 1);
    tx.commit().unwrap();
}

#[test]
fn dropping_a_transaction_aborts_it() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    {
        let mut tx = db.begin();
        let _ = new_dram(&mut tx);
        // No commit: dropped here.
    }
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 0);
}

#[test]
fn pdelete_removes_and_makes_refs_dangle() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    let oid = db.transaction(|tx| Ok(new_dram(tx))).unwrap();
    db.transaction(|tx| tx.pdelete(oid)).unwrap();
    let tx = db.begin();
    assert!(!tx.exists(oid));
    assert!(matches!(tx.read(oid), Err(OdeError::NoSuchObject(_))));
}

#[test]
fn pdelete_of_object_created_in_same_txn() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    db.transaction(|tx| {
        let oid = new_dram(tx);
        tx.pdelete(oid)?;
        assert!(!tx.exists(oid));
        Ok(())
    })
    .unwrap();
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 0);
}

#[test]
fn double_delete_is_an_error() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    let oid = db.transaction(|tx| Ok(new_dram(tx))).unwrap();
    db.transaction(|tx| {
        tx.pdelete(oid)?;
        assert!(tx.pdelete(oid).is_err());
        Ok(())
    })
    .unwrap();
}

#[test]
fn field_type_checking_on_assignment() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    let mut tx = db.begin();
    let oid = new_dram(&mut tx);
    // int into a string field: rejected, transaction still usable (type
    // errors are not constraint violations).
    assert!(tx.set(oid, "name", 42i64).is_err());
    assert!(tx.set(oid, "ghost_field", 1i64).is_err());
    tx.set(oid, "name", "1 meg dram").unwrap();
    tx.commit().unwrap();
}

#[test]
fn objects_of_multiple_classes_live_in_their_own_clusters() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.define_class(ClassBuilder::new("supplier").field("name", Type::Str))
        .unwrap();
    db.create_cluster("stockitem").unwrap();
    db.create_cluster("supplier").unwrap();
    db.transaction(|tx| {
        new_dram(tx);
        new_dram(tx);
        tx.pnew("supplier", &[("name", Value::from("at&t"))])?;
        Ok(())
    })
    .unwrap();
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 2);
    assert_eq!(db.extent_size("supplier", true).unwrap(), 1);
}

#[test]
fn references_between_objects_deref_through_transactions() {
    let db = Database::in_memory();
    db.define_class(ClassBuilder::new("dept").field("dname", Type::Str))
        .unwrap();
    db.define_class(
        ClassBuilder::new("employee")
            .field("ename", Type::Str)
            .field("dept", Type::Ref("dept".into())),
    )
    .unwrap();
    db.create_cluster("dept").unwrap();
    db.create_cluster("employee").unwrap();
    let (e, d) = db
        .transaction(|tx| {
            let d = tx.pnew("dept", &[("dname", Value::from("research"))])?;
            let e = tx.pnew(
                "employee",
                &[("ename", Value::from("ritchie")), ("dept", Value::Ref(d))],
            )?;
            Ok((e, d))
        })
        .unwrap();
    let tx = db.begin();
    let dept_ref = tx.get(e, "dept").unwrap();
    assert_eq!(dept_ref, Value::Ref(d));
    let doid = dept_ref.as_ref_oid().unwrap();
    assert_eq!(tx.get(doid, "dname").unwrap(), Value::from("research"));
}

#[test]
fn durability_across_reopen() {
    let dir = std::env::temp_dir().join(format!("ode-core-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let oid;
    {
        let db = Database::open(&dir).unwrap();
        define_stockitem(&db);
        db.create_cluster("stockitem").unwrap();
        oid = db.transaction(|tx| Ok(new_dram(tx))).unwrap();
        db.transaction(|tx| tx.set(oid, "quantity", 9999i64))
            .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let tx = db.begin();
        assert_eq!(tx.get(oid, "quantity").unwrap(), Value::Int(9999));
        assert_eq!(tx.get(oid, "name").unwrap(), Value::from("512 dram"));
        drop(tx);
        assert_eq!(db.extent_size("stockitem", true).unwrap(), 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn atomic_multi_object_commit() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    let (a, b) = db
        .transaction(|tx| {
            let a = new_dram(tx);
            let b = new_dram(tx);
            tx.set(a, "quantity", 1i64)?;
            tx.set(b, "quantity", 2i64)?;
            Ok((a, b))
        })
        .unwrap();
    let tx = db.begin();
    assert_eq!(tx.get(a, "quantity").unwrap(), Value::Int(1));
    assert_eq!(tx.get(b, "quantity").unwrap(), Value::Int(2));
}

#[test]
fn update_closure_is_atomic_on_error() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    let oid = db.transaction(|tx| Ok(new_dram(tx))).unwrap();
    let mut tx = db.begin();
    let err = tx.update(oid, |w| {
        w.set("quantity", 1i64)?;
        w.set("nonexistent", 2i64)?; // fails
        Ok(())
    });
    assert!(err.is_err());
    // The first assignment must not have leaked through.
    assert_eq!(tx.get(oid, "quantity").unwrap(), Value::Int(7500));
}

#[test]
fn methods_are_usable_through_transactions() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    db.register_method("stockitem", "stock_value", |state, _args| {
        // price * quantity — classic member function.
        let price = state.fields[4].as_float()?;
        let qty = state.fields[2].as_int()? as f64;
        Ok(Value::Float(price * qty))
    })
    .unwrap();
    let oid = db.transaction(|tx| Ok(new_dram(tx))).unwrap();
    let tx = db.begin();
    assert_eq!(
        tx.call(oid, "stock_value", &[]).unwrap(),
        Value::Float(5.0 * 7500.0)
    );
}

#[test]
fn typed_layer_roundtrip() {
    use ode_core::typed::OdeInstance;

    struct Item {
        name: String,
        quantity: i64,
    }

    impl OdeInstance for Item {
        fn class_name() -> &'static str {
            "stockitem"
        }
        fn to_fields(&self) -> Vec<(&'static str, Value)> {
            vec![
                ("name", Value::from(self.name.as_str())),
                ("quantity", Value::Int(self.quantity)),
            ]
        }
        fn from_fields(get: &dyn Fn(&str) -> Option<Value>) -> ode_core::Result<Self> {
            Ok(Item {
                name: get("name")
                    .and_then(|v| v.as_str().ok().map(String::from))
                    .unwrap_or_default(),
                quantity: get("quantity").and_then(|v| v.as_int().ok()).unwrap_or(0),
            })
        }
    }

    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    let p = db
        .transaction(|tx| {
            tx.pnew_typed(&Item {
                name: "1 meg dram".into(),
                quantity: 42,
            })
        })
        .unwrap();
    let item = db.transaction(|tx| tx.fetch(p)).unwrap();
    assert_eq!(item.name, "1 meg dram");
    assert_eq!(item.quantity, 42);
    db.transaction(|tx| {
        tx.store_typed(
            p,
            &Item {
                name: "1 meg dram".into(),
                quantity: 64,
            },
        )
    })
    .unwrap();
    let item = db.transaction(|tx| tx.fetch(p)).unwrap();
    assert_eq!(item.quantity, 64);
}

#[test]
fn many_objects_scale_past_a_single_page() {
    let db = Database::in_memory();
    define_stockitem(&db);
    db.create_cluster("stockitem").unwrap();
    db.transaction(|tx| {
        for i in 0..2000 {
            tx.pnew(
                "stockitem",
                &[
                    ("name", Value::from(format!("part-{i}"))),
                    ("quantity", Value::Int(i)),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 2000);
}
