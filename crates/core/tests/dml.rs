//! Tests for statement-level DML: `pnew`, `update … set`, `delete` — the
//! data-manipulation half of the "single integrated language" surface.

use ode_core::oql::ExecResult;
use ode_core::prelude::*;

fn db() -> Database {
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class stockitem {
            string name;
            int    quantity = 0;
            int    on_order = 0;
            double price = 1.0;
            constraint: quantity >= 0;
        }
        "#,
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
    db
}

#[test]
fn pnew_statement_with_initializers() {
    let db = db();
    let oid = db
        .transaction(|tx| {
            let r =
                tx.execute(r#"pnew stockitem (name = "dram", quantity = 50 + 50, price = 2.5)"#)?;
            match r {
                ExecResult::Created(oid) => Ok(oid),
                other => panic!("expected Created, got {other:?}"),
            }
        })
        .unwrap();
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "name")?, Value::from("dram"));
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(100));
        assert_eq!(tx.get(oid, "price")?, Value::Float(2.5));
        Ok(())
    })
    .unwrap();
}

#[test]
fn pnew_statement_defaults_only() {
    let db = db();
    db.transaction(|tx| {
        assert!(matches!(
            tx.execute("pnew stockitem")?,
            ExecResult::Created(_)
        ));
        assert!(matches!(
            tx.execute("pnew stockitem ()")?,
            ExecResult::Created(_)
        ));
        Ok(())
    })
    .unwrap();
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 2);
}

#[test]
fn update_statement_bulk() {
    let db = db();
    db.transaction(|tx| {
        for i in 0..10i64 {
            tx.pnew(
                "stockitem",
                &[
                    ("name", Value::from(format!("p{i}"))),
                    ("quantity", Value::Int(i)),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
    let n = db
        .transaction(|tx| {
            match tx.execute(
                "update s in stockitem suchthat (quantity < 5) set on_order = on_order + 100, quantity = quantity + 1",
            )? {
                ExecResult::Updated(n) => Ok(n),
                other => panic!("{other:?}"),
            }
        })
        .unwrap();
    assert_eq!(n, 5);
    db.transaction(|tx| {
        // Each updated object got both assignments.
        assert_eq!(
            tx.forall("stockitem")?
                .suchthat("on_order == 100")?
                .count()?,
            5
        );
        // quantity was bumped: minimum is now 1.
        assert_eq!(
            tx.forall("stockitem")?.min("quantity")?,
            Some(Value::Int(1))
        );
        Ok(())
    })
    .unwrap();
}

#[test]
fn update_sees_pre_assignment_values_left_to_right() {
    let db = db();
    db.transaction(|tx| {
        tx.pnew("stockitem", &[("quantity", Value::Int(7))])?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        // on_order takes the *current* quantity, then quantity is zeroed:
        // left-to-right, like statements in a C++ body.
        tx.execute("update s in stockitem set on_order = quantity, quantity = 0")?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        let rows = tx.query("forall s in stockitem")?;
        let oid = rows.oids()?[0];
        assert_eq!(tx.get(oid, "on_order")?, Value::Int(7));
        assert_eq!(tx.get(oid, "quantity")?, Value::Int(0));
        Ok(())
    })
    .unwrap();
}

#[test]
fn update_respects_constraints() {
    let db = db();
    db.transaction(|tx| {
        tx.pnew("stockitem", &[("quantity", Value::Int(3))])?;
        Ok(())
    })
    .unwrap();
    let err = db
        .transaction(|tx| {
            tx.execute("update s in stockitem set quantity = quantity - 10")?;
            Ok(())
        })
        .unwrap_err();
    assert!(matches!(err, OdeError::ConstraintViolation { .. }), "{err}");
    // Rolled back.
    db.transaction(|tx| {
        assert_eq!(tx.forall("stockitem")?.sum("quantity")?, Value::Int(3));
        Ok(())
    })
    .unwrap();
}

#[test]
fn delete_statement() {
    let db = db();
    db.transaction(|tx| {
        for i in 0..6i64 {
            tx.pnew("stockitem", &[("quantity", Value::Int(i))])?;
        }
        Ok(())
    })
    .unwrap();
    let n = db
        .transaction(|tx| {
            match tx.execute("delete s in stockitem suchthat (quantity % 2 == 0)")? {
                ExecResult::Deleted(n) => Ok(n),
                other => panic!("{other:?}"),
            }
        })
        .unwrap();
    assert_eq!(n, 3);
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 3);
    // Unconditional delete clears the rest.
    db.transaction(|tx| {
        tx.execute("delete s in stockitem")?;
        Ok(())
    })
    .unwrap();
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 0);
}

#[test]
fn execute_dispatches_queries_too() {
    let db = db();
    db.transaction(|tx| {
        tx.execute(r#"pnew stockitem (name = "a", quantity = 1)"#)?;
        tx.execute(r#"pnew stockitem (name = "b", quantity = 2)"#)?;
        match tx.execute("forall s in stockitem suchthat (quantity > 1)")? {
            ExecResult::Rows(rows) => assert_eq!(rows.len(), 1),
            other => panic!("{other:?}"),
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn dml_parse_errors() {
    let db = db();
    let mut tx = db.begin();
    assert!(tx.execute("pnew").is_err());
    assert!(tx.execute("pnew ghost_class").is_err());
    assert!(tx.execute("pnew stockitem (name)").is_err());
    assert!(tx.execute("pnew stockitem (name = )").is_err());
    assert!(tx.execute("update s in stockitem").is_err(), "missing set");
    assert!(tx.execute("update s stockitem set a = 1").is_err());
    assert!(tx.execute("delete from stockitem").is_err());
    assert!(tx
        .execute(r#"pnew stockitem (name = "x") trailing"#)
        .is_err());
    tx.commit().unwrap();
}

#[test]
fn dml_with_string_literals_containing_delimiters() {
    let db = db();
    db.transaction(|tx| {
        tx.execute(r#"pnew stockitem (name = "a,b)c", quantity = 1)"#)?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        let n = tx
            .forall("stockitem")?
            .suchthat(r#"name == "a,b)c""#)?
            .count()?;
        assert_eq!(n, 1);
        Ok(())
    })
    .unwrap();
}
