//! Tests for §3.1.1: multiple inheritance, cluster hierarchies, `is` type
//! tests, and the paper's income-averaging example over
//! person/student/faculty.

use ode_core::prelude::*;

/// The paper's university hierarchy, including a diamond (teaching
/// assistant derives from both student and faculty, which share person).
fn university(db: &Database) {
    db.define_class(
        ClassBuilder::new("person")
            .field("name", Type::Str)
            .field_default("base_income", Type::Int, 0),
    )
    .unwrap();
    db.define_class(ClassBuilder::new("student").base("person").field_default(
        "stipend",
        Type::Int,
        0,
    ))
    .unwrap();
    db.define_class(ClassBuilder::new("faculty").base("person").field_default(
        "salary",
        Type::Int,
        0,
    ))
    .unwrap();
    db.define_class(
        ClassBuilder::new("teaching_assistant")
            .base("student")
            .base("faculty"),
    )
    .unwrap();
    for c in ["person", "student", "faculty", "teaching_assistant"] {
        db.create_cluster(c).unwrap();
    }
    // income(): the paper's virtual member function.
    db.register_method("person", "income", |s, _| {
        Ok(Value::Int(s.fields[1].as_int()?))
    })
    .unwrap();
    db.register_method("student", "income", |s, _| {
        Ok(Value::Int(s.fields[1].as_int()? + s.fields[2].as_int()?))
    })
    .unwrap();
    db.register_method("faculty", "income", |s, _| {
        Ok(Value::Int(s.fields[1].as_int()? + s.fields[2].as_int()?))
    })
    .unwrap();
}

fn populate(db: &Database) -> (Oid, Oid, Oid, Oid) {
    db.transaction(|tx| {
        let p = tx.pnew(
            "person",
            &[
                ("name", Value::from("pat")),
                ("base_income", Value::Int(100)),
            ],
        )?;
        let s = tx.pnew(
            "student",
            &[
                ("name", Value::from("sam")),
                ("base_income", Value::Int(10)),
                ("stipend", Value::Int(20)),
            ],
        )?;
        let f = tx.pnew(
            "faculty",
            &[
                ("name", Value::from("fran")),
                ("base_income", Value::Int(200)),
                ("salary", Value::Int(300)),
            ],
        )?;
        let ta = tx.pnew(
            "teaching_assistant",
            &[
                ("name", Value::from("terry")),
                ("base_income", Value::Int(5)),
            ],
        )?;
        Ok((p, s, f, ta))
    })
    .unwrap()
}

#[test]
fn deep_iteration_includes_derived_extents() {
    let db = Database::in_memory();
    university(&db);
    populate(&db);
    let mut tx = db.begin();
    // Iterating the person cluster visits persons, students, faculty, TAs.
    assert_eq!(tx.forall("person").unwrap().count().unwrap(), 4);
    // Shallow: only exact persons.
    assert_eq!(tx.forall("person").unwrap().shallow().count().unwrap(), 1);
    // Students: the student + the TA.
    assert_eq!(tx.forall("student").unwrap().count().unwrap(), 2);
    assert_eq!(tx.forall("faculty").unwrap().count().unwrap(), 2);
    tx.commit().unwrap();
}

#[test]
fn is_test_matches_hierarchy() {
    let db = Database::in_memory();
    university(&db);
    let (p, s, f, ta) = populate(&db);
    let tx = db.begin();
    assert!(tx.instance_of(p, "person").unwrap());
    assert!(!tx.instance_of(p, "student").unwrap());
    assert!(tx.instance_of(s, "person").unwrap());
    assert!(tx.instance_of(s, "student").unwrap());
    assert!(!tx.instance_of(s, "faculty").unwrap());
    assert!(tx.instance_of(ta, "student").unwrap());
    assert!(tx.instance_of(ta, "faculty").unwrap());
    assert!(tx.instance_of(ta, "person").unwrap());
    assert!(!tx.instance_of(f, "teaching_assistant").unwrap());
}

#[test]
fn is_test_in_suchthat_expressions() {
    let db = Database::in_memory();
    university(&db);
    populate(&db);
    let mut tx = db.begin();
    // The paper's §3.1.1 pattern: select subsets of the person cluster by
    // dynamic type. A loop variable bound via join gives `p is student`.
    let n = tx
        .forall_join(&[("p", "person")])
        .unwrap()
        .suchthat("p is student")
        .unwrap()
        .collect()
        .unwrap()
        .len();
    assert_eq!(n, 2); // student + TA
    tx.commit().unwrap();
}

#[test]
fn income_averages_like_the_paper() {
    // §3.1.1: compute average income of persons, students, faculty —
    // virtual dispatch through the cluster hierarchy.
    let db = Database::in_memory();
    university(&db);
    populate(&db);
    let mut tx = db.begin();

    let mut income_p = 0i64;
    let mut np = 0i64;
    let mut income_s = 0i64;
    let mut ns = 0i64;
    let mut income_f = 0i64;
    let mut nf = 0i64;
    tx.forall("person")
        .unwrap()
        .run(|tx, p| {
            let v = tx.call(p, "income", &[])?.as_int()?;
            income_p += v;
            np += 1;
            if tx.instance_of(p, "student")? {
                income_s += v;
                ns += 1;
            } else if tx.instance_of(p, "faculty")? {
                income_f += v;
                nf += 1;
            }
            Ok(())
        })
        .unwrap();

    // person: pat 100; student: sam 10+20=30; faculty: fran 200+300=500;
    // TA terry: student override first in MRO → 5+0=5.
    assert_eq!(np, 4);
    assert_eq!(income_p, 100 + 30 + 500 + 5);
    assert_eq!((ns, income_s), (2, 35)); // sam + terry
    assert_eq!((nf, income_f), (1, 500)); // fran only (terry matched student)
    tx.commit().unwrap();
}

#[test]
fn diamond_object_has_single_shared_base_state() {
    let db = Database::in_memory();
    university(&db);
    let (.., ta) = populate(&db);
    db.transaction(|tx| {
        // One write to the shared person::name is visible everywhere.
        tx.set(ta, "name", "terry the TA")?;
        Ok(())
    })
    .unwrap();
    let tx = db.begin();
    assert_eq!(tx.get(ta, "name").unwrap(), Value::from("terry the TA"));
}

#[test]
fn hierarchy_survives_reopen() {
    let dir = std::env::temp_dir().join(format!("ode-core-hier-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        university(&db);
        populate(&db);
    }
    {
        let db = Database::open(&dir).unwrap();
        let mut tx = db.begin();
        assert_eq!(tx.forall("person").unwrap().count().unwrap(), 4);
        assert_eq!(tx.forall("student").unwrap().count().unwrap(), 2);
        // The schema (with inheritance) was reloaded from the catalog.
        db.with_schema(|s| {
            let ta = s.id_of("teaching_assistant").unwrap();
            let person = s.id_of("person").unwrap();
            assert!(s.is_subclass(ta, person));
        });
        tx.commit().unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn extent_of_class_without_cluster_is_empty_but_iterable() {
    let db = Database::in_memory();
    university(&db);
    db.define_class(ClassBuilder::new("visiting_scholar").base("person"))
        .unwrap();
    // No cluster created for visiting_scholar.
    populate(&db);
    let mut tx = db.begin();
    assert_eq!(tx.forall("visiting_scholar").unwrap().count().unwrap(), 0);
    // person still works and does not include the cluster-less class.
    assert_eq!(tx.forall("person").unwrap().count().unwrap(), 4);
    tx.commit().unwrap();
}

// ---------------------------------------------------------------------------
// Streaming extent scans (DESIGN.md §8): `for_each_extent` replaced the
// materializing `extent_of`. These tests pin the equivalence between what
// the stream yields and what the query layer collects, plus the
// overlay-merge and dedup semantics the old `seen`-set path guaranteed.

#[test]
fn streaming_extent_matches_collected_oids() {
    let db = Database::in_memory();
    university(&db);
    populate(&db);
    let mut tx = db.begin();
    for (class, deep) in [
        ("person", true),
        ("person", false),
        ("student", true),
        ("student", false),
        ("faculty", true),
        ("teaching_assistant", true),
    ] {
        let mut streamed: Vec<Oid> = Vec::new();
        tx.for_each_extent(class, deep, &mut |oid, state| {
            assert!(!state.fields.is_empty(), "states stream fully decoded");
            streamed.push(oid);
            Ok(true)
        })
        .unwrap();
        let forall = tx.forall(class).unwrap();
        let forall = if deep { forall } else { forall.shallow() };
        let collected = forall.collect_oids().unwrap();
        assert_eq!(streamed, collected, "class={class} deep={deep}");
    }
    tx.commit().unwrap();
}

#[test]
fn snapshot_stream_matches_write_txn_stream_without_writes() {
    let db = Database::in_memory();
    university(&db);
    populate(&db);
    let mut via_write: Vec<(Oid, String)> = Vec::new();
    {
        let tx = db.begin();
        tx.for_each_extent("person", true, &mut |oid, state| {
            via_write.push((oid, format!("{:?}", state.fields)));
            Ok(true)
        })
        .unwrap();
    }
    let via_snapshot: Vec<(Oid, String)> = db
        .read(|rtx| {
            let mut out = Vec::new();
            rtx.for_each_extent("person", true, &mut |oid, state| {
                out.push((oid, format!("{:?}", state.fields)));
                Ok(true)
            })?;
            Ok(out)
        })
        .unwrap();
    assert_eq!(via_write, via_snapshot);
    assert_eq!(via_write.len(), 4);
}

#[test]
fn streaming_extent_merges_same_txn_updates_deletes_and_inserts() {
    let db = Database::in_memory();
    university(&db);
    let (p, s, f, ta) = populate(&db);
    let mut tx = db.begin();
    // Mutations before the scan, all from this (uncommitted) transaction:
    // an update must surface its overlay state in place, a delete must
    // vanish, and inserts must arrive after the committed members in
    // creation order.
    tx.set(s, "name", "sam the elder").unwrap();
    tx.pdelete(f).unwrap();
    let n1 = tx
        .pnew("person", &[("name", Value::from("new-pat"))])
        .unwrap();
    let n2 = tx
        .pnew("student", &[("name", Value::from("new-sam"))])
        .unwrap();

    let mut visited: Vec<(Oid, Value)> = Vec::new();
    tx.for_each_extent("person", true, &mut |oid, state| {
        visited.push((oid, state.fields[0].clone()));
        Ok(true)
    })
    .unwrap();

    let oids: Vec<Oid> = visited.iter().map(|&(oid, _)| oid).collect();
    assert!(!oids.contains(&f), "deleted object must not stream");
    assert!(oids.contains(&p) && oids.contains(&ta));
    // Inserts stream after every committed member, in creation order.
    assert_eq!(&oids[oids.len() - 2..], &[n1, n2]);
    let by_oid = |o: Oid| {
        visited
            .iter()
            .find(|&&(oid, _)| oid == o)
            .map(|(_, name)| name.clone())
            .unwrap()
    };
    assert_eq!(by_oid(s), Value::from("sam the elder"));
    assert_eq!(by_oid(n2), Value::from("new-sam"));
    tx.abort();
}

#[test]
fn diamond_hierarchy_streams_each_object_exactly_once() {
    // The diamond (teaching_assistant under both student and faculty)
    // is the shape the old cross-heap `seen` set guarded; streaming must
    // keep each member unique without it.
    let db = Database::in_memory();
    university(&db);
    populate(&db);
    let tx = db.begin();
    for class in ["person", "student", "faculty"] {
        let mut seen = std::collections::HashSet::new();
        tx.for_each_extent(class, true, &mut |oid, _| {
            assert!(seen.insert(oid), "{class}: {oid} streamed twice");
            Ok(true)
        })
        .unwrap();
    }
}

#[test]
fn early_break_consumer_stops_the_stream() {
    let db = Database::in_memory();
    university(&db);
    populate(&db);
    let tx = db.begin();
    let mut visited = 0usize;
    tx.for_each_extent("person", true, &mut |_, _| {
        visited += 1;
        Ok(visited < 2) // stop after the second object
    })
    .unwrap();
    assert_eq!(visited, 2, "the stream must stop when the visitor says so");
}
