//! The engine behind a serving layer: one `Database` shared by many
//! threads. Transactions serialize behind the engine's gate, so
//! concurrent writers queue at `begin()` — the property under test is
//! that nothing is lost, torn, or double-applied when eight threads
//! hammer the same engine the way eight `ode-server` connections do.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use ode_core::oql::ExecResult;
use ode_core::Database;

/// `Database` must be shareable across connection threads by reference.
#[test]
fn database_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<Arc<Database>>();
}

#[test]
fn eight_threads_share_one_database() {
    const THREADS: usize = 8;
    const ROWS_PER_THREAD: usize = 25;

    let db = Arc::new(Database::in_memory());
    db.define_from_source("class stockitem { string name; int quantity = 0; }")
        .unwrap();
    db.create_cluster("stockitem").unwrap();
    db.create_index("stockitem", "quantity").unwrap();

    let start = Arc::new(Barrier::new(THREADS));
    let queries_ok = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let start = Arc::clone(&start);
            let queries_ok = Arc::clone(&queries_ok);
            std::thread::spawn(move || {
                start.wait();
                // Interleave inserts, updates, scans, and explains — the
                // mixed workload a pool of server sessions produces.
                for i in 0..ROWS_PER_THREAD {
                    let tag = (t * 10_000 + i) as i64;
                    db.transaction(|tx| {
                        match tx.execute(&format!(
                            r#"pnew stockitem (name = "t{t}", quantity = {tag})"#
                        ))? {
                            ExecResult::Created(_) => Ok(()),
                            other => panic!("unexpected result: {other:?}"),
                        }
                    })
                    .unwrap();
                    if i % 5 == 0 {
                        let rows = db
                            .transaction(|tx| {
                                let r = tx.execute(&format!(
                                    "forall s in stockitem suchthat (quantity >= {} && quantity < {})",
                                    t * 10_000,
                                    (t + 1) * 10_000,
                                ))?;
                                match r {
                                    ExecResult::Rows(rows) => Ok(rows.rows.len()),
                                    other => panic!("unexpected result: {other:?}"),
                                }
                            })
                            .unwrap();
                        // Own writes are always visible; other threads'
                        // rows never leak into this tag range.
                        assert_eq!(rows, i + 1, "thread {t} at step {i}");
                        queries_ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Every thread can explain against the shared schema.
                db.transaction(|tx| {
                    let r = tx.execute(&format!(
                        "explain forall s in stockitem suchthat (quantity == {})",
                        t * 10_000
                    ))?;
                    match r {
                        ExecResult::Explain(prof) => {
                            let strategy = prof.strategy.to_string();
                            assert!(strategy.contains("index probe"), "{strategy}")
                        }
                        other => panic!("unexpected result: {other:?}"),
                    }
                    Ok(())
                })
                .unwrap();
                // And update its own rows without touching anyone else's.
                let updated = db
                    .transaction(|tx| {
                        match tx.execute(&format!(
                            "update s in stockitem suchthat (quantity >= {} && quantity < {}) set name = \"done{t}\"",
                            t * 10_000,
                            (t + 1) * 10_000,
                        ))? {
                            ExecResult::Updated(n) => Ok(n),
                            other => panic!("unexpected result: {other:?}"),
                        }
                    })
                    .unwrap();
                assert_eq!(updated, ROWS_PER_THREAD, "thread {t}");
            })
        })
        .collect();

    for w in workers {
        w.join().unwrap();
    }

    assert_eq!(
        queries_ok.load(Ordering::Relaxed),
        THREADS * ROWS_PER_THREAD.div_ceil(5)
    );
    assert_eq!(
        db.extent_size("stockitem", true).unwrap(),
        THREADS * ROWS_PER_THREAD,
        "every thread's inserts are durable exactly once"
    );
    let snap = db.telemetry();
    assert!(snap.txn.committed >= (THREADS * ROWS_PER_THREAD) as u64);
    assert_eq!(snap.txn.aborted_constraint, 0);
    assert_eq!(snap.txn.aborted_other, 0);
}

/// Tentpole property: snapshot readers never observe a torn commit.
///
/// A writer thread moves balance between accounts, each commit keeping
/// the grand total constant. Four concurrent snapshot readers open read
/// transactions in a loop and assert that (a) the total across every
/// account is exactly the invariant — a partially-applied commit would
/// break it, (b) the extent row count never wobbles, and (c) the
/// snapshot never goes stale while it is open, because the publish
/// window excludes commits for the snapshot's whole lifetime.
#[test]
fn snapshot_readers_never_see_torn_commits() {
    use std::sync::atomic::AtomicBool;

    use ode_core::prelude::Value;

    const READERS: usize = 4;
    const ACCOUNTS: usize = 8;
    const TOTAL: i64 = 100 * ACCOUNTS as i64;
    const WRITES: usize = 300;

    let db = Arc::new(Database::in_memory());
    db.define_from_source("class acct { int bal = 100; }")
        .unwrap();
    db.create_cluster("acct").unwrap();
    let oids: Vec<_> = (0..ACCOUNTS)
        .map(|_| {
            db.transaction(|tx| match tx.execute("pnew acct")? {
                ExecResult::Created(oid) => Ok(oid),
                other => panic!("unexpected result: {other:?}"),
            })
            .unwrap()
        })
        .collect();

    let int = |v: Value| match v {
        Value::Int(n) => n,
        other => panic!("expected int, got {other:?}"),
    };

    let start = Arc::new(Barrier::new(READERS + 1));
    let done = Arc::new(AtomicBool::new(false));
    let snapshots = Arc::new(AtomicUsize::new(0));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let db = Arc::clone(&db);
            let oids = oids.clone();
            let start = Arc::clone(&start);
            let done = Arc::clone(&done);
            let snapshots = Arc::clone(&snapshots);
            std::thread::spawn(move || {
                start.wait();
                while !done.load(Ordering::Acquire) {
                    let mut rtx = db.begin_read();
                    // Point reads: the cross-object invariant holds in
                    // every snapshot.
                    let sum: i64 = oids.iter().map(|&o| int(rtx.get(o, "bal").unwrap())).sum();
                    assert_eq!(sum, TOTAL, "torn commit visible to a snapshot");
                    // Query path: the extent is never half-grown.
                    match rtx.execute("forall a in acct").unwrap() {
                        ExecResult::Rows(rows) => assert_eq!(rows.rows.len(), ACCOUNTS),
                        other => panic!("unexpected result: {other:?}"),
                    }
                    // The snapshot cannot have been overtaken while open:
                    // publishes wait for the apply gate we hold.
                    assert!(!rtx.is_stale(), "commit published under a live snapshot");
                    drop(rtx);
                    snapshots.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    start.wait();
    for i in 0..WRITES {
        let src = oids[i % ACCOUNTS];
        let dst = oids[(i + 3) % ACCOUNTS];
        let amount = 1 + (i % 7) as i64;
        db.transaction(|tx| {
            let from = int(tx.get(src, "bal")?);
            let to = int(tx.get(dst, "bal")?);
            tx.set(src, "bal", from - amount)?;
            tx.set(dst, "bal", to + amount)?;
            Ok(())
        })
        .unwrap();
    }
    done.store(true, Ordering::Release);
    for r in readers {
        r.join().unwrap();
    }

    assert!(snapshots.load(Ordering::Relaxed) > 0);
    let final_sum = db
        .read(|rtx| {
            Ok(oids
                .iter()
                .map(|&o| int(rtx.get(o, "bal").unwrap()))
                .sum::<i64>())
        })
        .unwrap();
    assert_eq!(final_sum, TOTAL);
    let snap = db.telemetry();
    assert!(snap.txn.read_txns >= snapshots.load(Ordering::Relaxed) as u64);
    assert!(snap.txn.write_txns >= WRITES as u64);
}

/// Multi-writer validation property: read-modify-write on a hot key
/// loses no updates. Every increment reads the counter, so two
/// increments racing on the same begin epoch cannot both validate —
/// the loser aborts with `WriteConflict` and `Database::transaction`
/// re-runs it against the winner's published state (DESIGN.md §13).
#[test]
fn concurrent_increments_lose_no_updates() {
    use ode_core::prelude::Value;

    const THREADS: usize = 8;
    // CI's writer-contention job turns the hammer up via the env knob.
    let increments: usize = std::env::var("ODE_CONTENTION_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);

    let db = Arc::new(Database::in_memory());
    db.define_from_source("class counter { int n = 0; }")
        .unwrap();
    db.create_cluster("counter").unwrap();
    let oid = db
        .transaction(|tx| match tx.execute("pnew counter")? {
            ExecResult::Created(oid) => Ok(oid),
            other => panic!("unexpected result: {other:?}"),
        })
        .unwrap();

    let start = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let db = Arc::clone(&db);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                for _ in 0..increments {
                    db.transaction(|tx| {
                        let n = match tx.get(oid, "n")? {
                            Value::Int(n) => n,
                            other => panic!("expected int, got {other:?}"),
                        };
                        tx.set(oid, "n", n + 1)
                    })
                    .unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let total = db
        .read(|rtx| match rtx.get(oid, "n")? {
            Value::Int(n) => Ok(n),
            other => panic!("expected int, got {other:?}"),
        })
        .unwrap();
    assert_eq!(
        total,
        (THREADS * increments) as i64,
        "every increment survived validation exactly once"
    );
    let snap = db.telemetry();
    assert!(snap.txn.committed >= (THREADS * increments) as u64);
    // Conflicts are transient: they show up in their own counter, never
    // in the abort taxonomy the operator alerts on.
    assert_eq!(snap.txn.aborted_other, 0);
}

/// Write skew is detected, not admitted. Two transactions each read
/// both accounts (the joint invariant `a + b >= 0`) and each debits a
/// *different* account — under plain snapshot isolation both would
/// commit and break the invariant. Our validation treats every read as
/// a promise: the second committer's read of the first's written
/// object is stale, so it aborts with `WriteConflict`.
#[test]
fn write_skew_between_overlapping_transactions_is_rejected() {
    use ode_core::prelude::{OdeError, Value};

    let db = Database::in_memory();
    db.define_from_source("class acct { int bal = 100; }")
        .unwrap();
    db.create_cluster("acct").unwrap();
    let (a, b) = db
        .transaction(|tx| {
            let a = match tx.execute("pnew acct")? {
                ExecResult::Created(oid) => oid,
                other => panic!("unexpected result: {other:?}"),
            };
            let b = match tx.execute("pnew acct")? {
                ExecResult::Created(oid) => oid,
                other => panic!("unexpected result: {other:?}"),
            };
            Ok((a, b))
        })
        .unwrap();

    let int = |v: Value| match v {
        Value::Int(n) => n,
        other => panic!("expected int, got {other:?}"),
    };

    // Both transactions open before either commits: same begin epoch,
    // overlapping read sets, disjoint write sets.
    let mut tx1 = db.begin();
    let mut tx2 = db.begin();
    let sum1 = int(tx1.get(a, "bal").unwrap()) + int(tx1.get(b, "bal").unwrap());
    let sum2 = int(tx2.get(a, "bal").unwrap()) + int(tx2.get(b, "bal").unwrap());
    assert_eq!(sum1, 200);
    assert_eq!(sum2, 200);
    // Each decides "the joint balance covers a 150 debit" and debits
    // its own account. Admitting both would leave a + b = -100.
    tx1.set(a, "bal", 100i64 - 150).unwrap();
    tx2.set(b, "bal", 100i64 - 150).unwrap();

    tx1.commit().unwrap();
    let err = tx2.commit().unwrap_err();
    assert!(
        matches!(err, OdeError::WriteConflict { .. }),
        "write skew must surface as a conflict, got: {err:?}"
    );
    assert!(err.is_unavailable(), "conflicts are retryable for clients");

    // The invariant-breaking combination never reached the store.
    let (fa, fb) = db
        .read(|rtx| {
            Ok((
                int(rtx.get(a, "bal").unwrap()),
                int(rtx.get(b, "bal").unwrap()),
            ))
        })
        .unwrap();
    assert_eq!((fa, fb), (-50, 100));
    assert!(fa + fb >= 0, "joint invariant survived the race");
    let snap = db.telemetry();
    assert!(snap.txn.conflicts >= 1, "conflict abort is counted");
}
