//! The engine behind a serving layer: one `Database` shared by many
//! threads. Transactions serialize behind the engine's gate, so
//! concurrent writers queue at `begin()` — the property under test is
//! that nothing is lost, torn, or double-applied when eight threads
//! hammer the same engine the way eight `ode-server` connections do.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use ode_core::oql::ExecResult;
use ode_core::Database;

/// `Database` must be shareable across connection threads by reference.
#[test]
fn database_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<Arc<Database>>();
}

#[test]
fn eight_threads_share_one_database() {
    const THREADS: usize = 8;
    const ROWS_PER_THREAD: usize = 25;

    let db = Arc::new(Database::in_memory());
    db.define_from_source("class stockitem { string name; int quantity = 0; }")
        .unwrap();
    db.create_cluster("stockitem").unwrap();
    db.create_index("stockitem", "quantity").unwrap();

    let start = Arc::new(Barrier::new(THREADS));
    let queries_ok = Arc::new(AtomicUsize::new(0));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let db = Arc::clone(&db);
            let start = Arc::clone(&start);
            let queries_ok = Arc::clone(&queries_ok);
            std::thread::spawn(move || {
                start.wait();
                // Interleave inserts, updates, scans, and explains — the
                // mixed workload a pool of server sessions produces.
                for i in 0..ROWS_PER_THREAD {
                    let tag = (t * 10_000 + i) as i64;
                    db.transaction(|tx| {
                        match tx.execute(&format!(
                            r#"pnew stockitem (name = "t{t}", quantity = {tag})"#
                        ))? {
                            ExecResult::Created(_) => Ok(()),
                            other => panic!("unexpected result: {other:?}"),
                        }
                    })
                    .unwrap();
                    if i % 5 == 0 {
                        let rows = db
                            .transaction(|tx| {
                                let r = tx.execute(&format!(
                                    "forall s in stockitem suchthat (quantity >= {} && quantity < {})",
                                    t * 10_000,
                                    (t + 1) * 10_000,
                                ))?;
                                match r {
                                    ExecResult::Rows(rows) => Ok(rows.rows.len()),
                                    other => panic!("unexpected result: {other:?}"),
                                }
                            })
                            .unwrap();
                        // Own writes are always visible; other threads'
                        // rows never leak into this tag range.
                        assert_eq!(rows, i + 1, "thread {t} at step {i}");
                        queries_ok.fetch_add(1, Ordering::Relaxed);
                    }
                }
                // Every thread can explain against the shared schema.
                db.transaction(|tx| {
                    let r = tx.execute(&format!(
                        "explain forall s in stockitem suchthat (quantity == {})",
                        t * 10_000
                    ))?;
                    match r {
                        ExecResult::Explain(prof) => {
                            let strategy = prof.strategy.to_string();
                            assert!(strategy.contains("index probe"), "{strategy}")
                        }
                        other => panic!("unexpected result: {other:?}"),
                    }
                    Ok(())
                })
                .unwrap();
                // And update its own rows without touching anyone else's.
                let updated = db
                    .transaction(|tx| {
                        match tx.execute(&format!(
                            "update s in stockitem suchthat (quantity >= {} && quantity < {}) set name = \"done{t}\"",
                            t * 10_000,
                            (t + 1) * 10_000,
                        ))? {
                            ExecResult::Updated(n) => Ok(n),
                            other => panic!("unexpected result: {other:?}"),
                        }
                    })
                    .unwrap();
                assert_eq!(updated, ROWS_PER_THREAD, "thread {t}");
            })
        })
        .collect();

    for w in workers {
        w.join().unwrap();
    }

    assert_eq!(
        queries_ok.load(Ordering::Relaxed),
        THREADS * ROWS_PER_THREAD.div_ceil(5)
    );
    assert_eq!(
        db.extent_size("stockitem", true).unwrap(),
        THREADS * ROWS_PER_THREAD,
        "every thread's inserts are durable exactly once"
    );
    let snap = db.telemetry();
    assert!(snap.txn.committed >= (THREADS * ROWS_PER_THREAD) as u64);
    assert_eq!(snap.txn.aborted_constraint, 0);
    assert_eq!(snap.txn.aborted_other, 0);
}
