//! Tests for §4: object versioning — explicit `newversion`, generic vs.
//! specific references, linear chains, version trees (the footnote-15
//! extension), version deletion, and durability.

use ode_core::prelude::*;
use ode_core::OdeError;

fn docs(db: &Database) {
    db.define_class(
        ClassBuilder::new("document")
            .field("title", Type::Str)
            .field_default("body", Type::Str, ""),
    )
    .unwrap();
    db.create_cluster("document").unwrap();
}

fn new_doc(tx: &mut Transaction, title: &str, body: &str) -> Oid {
    tx.pnew(
        "document",
        &[("title", Value::from(title)), ("body", Value::from(body))],
    )
    .unwrap()
}

#[test]
fn updates_do_not_create_versions() {
    // §4: "Updating a persistent object does not automatically create a
    // new version."
    let db = Database::in_memory();
    docs(&db);
    let oid = db
        .transaction(|tx| Ok(new_doc(tx, "paper", "draft 1")))
        .unwrap();
    db.transaction(|tx| tx.set(oid, "body", "draft 2")).unwrap();
    let tx = db.begin();
    assert!(!tx.is_versioned(oid).unwrap());
    assert_eq!(tx.versions(oid).unwrap(), vec![0]);
    assert_eq!(tx.current_version(oid).unwrap(), 0);
}

#[test]
fn newversion_freezes_the_old_state() {
    let db = Database::in_memory();
    docs(&db);
    let oid = db
        .transaction(|tx| Ok(new_doc(tx, "paper", "draft 1")))
        .unwrap();
    let v1 = db
        .transaction(|tx| {
            let v1 = tx.newversion(oid)?;
            tx.set(oid, "body", "draft 2")?;
            Ok(v1)
        })
        .unwrap();
    assert_eq!(v1, 1);
    let tx = db.begin();
    // Generic reference: the current version.
    assert_eq!(tx.get(oid, "body").unwrap(), Value::from("draft 2"));
    // Specific references: pinned.
    let old = tx.read_version(VersionRef { oid, version: 0 }).unwrap();
    assert_eq!(old.fields[1], Value::from("draft 1"));
    let new = tx.read_version(VersionRef { oid, version: 1 }).unwrap();
    assert_eq!(new.fields[1], Value::from("draft 2"));
    assert_eq!(tx.versions(oid).unwrap(), vec![0, 1]);
    assert!(tx.is_versioned(oid).unwrap());
}

#[test]
fn generic_reference_tracks_current_across_many_versions() {
    let db = Database::in_memory();
    docs(&db);
    let oid = db.transaction(|tx| Ok(new_doc(tx, "p", "v0"))).unwrap();
    for i in 1..=10 {
        db.transaction(|tx| {
            tx.newversion(oid)?;
            tx.set(oid, "body", format!("v{i}"))?;
            Ok(())
        })
        .unwrap();
    }
    let tx = db.begin();
    assert_eq!(tx.get(oid, "body").unwrap(), Value::from("v10"));
    assert_eq!(tx.versions(oid).unwrap().len(), 11);
    // Every specific reference still resolves to its own state.
    for i in 0..=10u32 {
        let s = tx.read_version(VersionRef { oid, version: i }).unwrap();
        assert_eq!(s.fields[1], Value::from(format!("v{i}")));
    }
    // Linear chain: parents are predecessors.
    for i in 1..=10u32 {
        assert_eq!(
            tx.parent_version(VersionRef { oid, version: i }).unwrap(),
            Some(i - 1)
        );
    }
    assert_eq!(
        tx.parent_version(VersionRef { oid, version: 0 }).unwrap(),
        None
    );
}

#[test]
fn multiple_versions_within_one_transaction() {
    let db = Database::in_memory();
    docs(&db);
    db.transaction(|tx| {
        let oid = new_doc(tx, "p", "a");
        tx.newversion(oid)?;
        tx.set(oid, "body", "b")?;
        tx.newversion(oid)?;
        tx.set(oid, "body", "c")?;
        // All three visible inside the transaction.
        assert_eq!(
            tx.read_version(VersionRef { oid, version: 0 })?.fields[1],
            Value::from("a")
        );
        assert_eq!(
            tx.read_version(VersionRef { oid, version: 1 })?.fields[1],
            Value::from("b")
        );
        assert_eq!(tx.get(oid, "body")?, Value::from("c"));
        Ok(())
    })
    .unwrap();
}

#[test]
fn version_tree_branching() {
    // The footnote-15 extension: branch from an old version.
    let db = Database::in_memory();
    docs(&db);
    let oid = db.transaction(|tx| Ok(new_doc(tx, "p", "root"))).unwrap();
    db.transaction(|tx| {
        tx.newversion(oid)?; // v1, linear child of v0
        tx.set(oid, "body", "mainline")?;
        Ok(())
    })
    .unwrap();
    let branch = db
        .transaction(|tx| {
            let b = tx.newversion_from(VersionRef { oid, version: 0 })?;
            tx.set(oid, "body", "branch off root")?;
            Ok(b)
        })
        .unwrap();
    assert_eq!(branch, 2);
    let tx = db.begin();
    // The branch's parent is v0, not v1.
    assert_eq!(
        tx.parent_version(VersionRef { oid, version: 2 }).unwrap(),
        Some(0)
    );
    let children = tx.child_versions(VersionRef { oid, version: 0 }).unwrap();
    assert_eq!(children, vec![1, 2]);
    // The branch started from v0's state.
    assert_eq!(tx.get(oid, "body").unwrap(), Value::from("branch off root"));
    assert_eq!(
        tx.read_version(VersionRef { oid, version: 1 })
            .unwrap()
            .fields[1],
        Value::from("mainline")
    );
}

#[test]
fn delete_version_reparents_children() {
    let db = Database::in_memory();
    docs(&db);
    let oid = db.transaction(|tx| Ok(new_doc(tx, "p", "v0"))).unwrap();
    db.transaction(|tx| {
        for i in 1..=3 {
            tx.newversion(oid)?;
            tx.set(oid, "body", format!("v{i}"))?;
        }
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| tx.delete_version(VersionRef { oid, version: 1 }))
        .unwrap();
    let tx = db.begin();
    assert_eq!(tx.versions(oid).unwrap(), vec![0, 2, 3]);
    // v2's parent was v1; it is now re-parented to v0.
    assert_eq!(
        tx.parent_version(VersionRef { oid, version: 2 }).unwrap(),
        Some(0)
    );
    assert!(matches!(
        tx.read_version(VersionRef { oid, version: 1 }),
        Err(OdeError::Version(_))
    ));
}

#[test]
fn current_version_cannot_be_deleted() {
    let db = Database::in_memory();
    docs(&db);
    let oid = db.transaction(|tx| Ok(new_doc(tx, "p", "v0"))).unwrap();
    db.transaction(|tx| {
        tx.newversion(oid)?;
        Ok(())
    })
    .unwrap();
    let mut tx = db.begin();
    let err = tx
        .delete_version(VersionRef { oid, version: 1 })
        .unwrap_err();
    assert!(matches!(err, OdeError::Version(_)), "{err}");
    tx.commit().unwrap();
}

#[test]
fn vref_names_the_current_version() {
    let db = Database::in_memory();
    docs(&db);
    let oid = db.transaction(|tx| Ok(new_doc(tx, "p", "v0"))).unwrap();
    let tx = db.begin();
    assert_eq!(tx.vref(oid).unwrap(), VersionRef { oid, version: 0 });
    drop(tx);
    db.transaction(|tx| {
        tx.newversion(oid)?;
        Ok(())
    })
    .unwrap();
    let tx = db.begin();
    assert_eq!(tx.vref(oid).unwrap().version, 1);
}

#[test]
fn specific_refs_stored_in_fields_stay_pinned() {
    // Historical databases (§4): an audit object holds a specific ref.
    let db = Database::in_memory();
    docs(&db);
    db.define_class(ClassBuilder::new("audit").field("snapshot", Type::VRef("document".into())))
        .unwrap();
    db.create_cluster("audit").unwrap();
    let (doc, audit) = db
        .transaction(|tx| {
            let doc = new_doc(tx, "contract", "original terms");
            let vref = tx.vref(doc)?;
            let audit = tx.pnew("audit", &[("snapshot", Value::VRef(vref))])?;
            Ok((doc, audit))
        })
        .unwrap();
    db.transaction(|tx| {
        tx.newversion(doc)?;
        tx.set(doc, "body", "amended terms")?;
        Ok(())
    })
    .unwrap();
    let tx = db.begin();
    let Value::VRef(vref) = tx.get(audit, "snapshot").unwrap() else {
        panic!("not a vref")
    };
    let snapshot = tx.read_version(vref).unwrap();
    assert_eq!(snapshot.fields[1], Value::from("original terms"));
    assert_eq!(tx.get(doc, "body").unwrap(), Value::from("amended terms"));
}

#[test]
fn versions_survive_reopen() {
    let dir = std::env::temp_dir().join(format!("ode-core-verreopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let oid;
    {
        let db = Database::open(&dir).unwrap();
        docs(&db);
        oid = db.transaction(|tx| Ok(new_doc(tx, "p", "v0"))).unwrap();
        db.transaction(|tx| {
            tx.newversion(oid)?;
            tx.set(oid, "body", "v1")?;
            tx.newversion(oid)?;
            tx.set(oid, "body", "v2")?;
            Ok(())
        })
        .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let tx = db.begin();
        assert_eq!(tx.versions(oid).unwrap(), vec![0, 1, 2]);
        assert_eq!(tx.get(oid, "body").unwrap(), Value::from("v2"));
        assert_eq!(
            tx.read_version(VersionRef { oid, version: 0 })
                .unwrap()
                .fields[1],
            Value::from("v0")
        );
        assert_eq!(
            tx.read_version(VersionRef { oid, version: 1 })
                .unwrap()
                .fields[1],
            Value::from("v1")
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pdelete_removes_all_versions() {
    let db = Database::in_memory();
    docs(&db);
    let oid = db.transaction(|tx| Ok(new_doc(tx, "p", "v0"))).unwrap();
    db.transaction(|tx| {
        tx.newversion(oid)?;
        tx.newversion(oid)?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| tx.pdelete(oid)).unwrap();
    let tx = db.begin();
    assert!(!tx.exists(oid));
    assert!(tx.read_version(VersionRef { oid, version: 0 }).is_err());
    drop(tx);
    // The cluster scan sees no leftover version records.
    assert_eq!(db.extent_size("document", true).unwrap(), 0);
}

#[test]
fn cluster_iteration_sees_current_versions_only() {
    let db = Database::in_memory();
    docs(&db);
    db.transaction(|tx| {
        let a = new_doc(tx, "a", "a0");
        tx.newversion(a)?;
        tx.set(a, "body", "a1")?;
        new_doc(tx, "b", "b0");
        Ok(())
    })
    .unwrap();
    let mut tx = db.begin();
    let bodies: Vec<Value> = tx
        .forall("document")
        .unwrap()
        .by("title")
        .unwrap()
        .collect_values("body")
        .unwrap();
    assert_eq!(bodies, vec![Value::from("a1"), Value::from("b0")]);
    tx.commit().unwrap();
}

#[test]
fn reading_missing_versions_errors() {
    let db = Database::in_memory();
    docs(&db);
    let oid = db.transaction(|tx| Ok(new_doc(tx, "p", "x"))).unwrap();
    let tx = db.begin();
    assert!(tx.read_version(VersionRef { oid, version: 5 }).is_err());
    // Version 0 of an unversioned object is its only state.
    assert_eq!(
        tx.read_version(VersionRef { oid, version: 0 })
            .unwrap()
            .fields[1],
        Value::from("x")
    );
}

#[test]
fn abort_discards_version_operations() {
    let db = Database::in_memory();
    docs(&db);
    let oid = db.transaction(|tx| Ok(new_doc(tx, "p", "v0"))).unwrap();
    {
        let mut tx = db.begin();
        tx.newversion(oid).unwrap();
        tx.set(oid, "body", "would-be v1").unwrap();
        tx.abort();
    }
    let tx = db.begin();
    assert!(!tx.is_versioned(oid).unwrap());
    assert_eq!(tx.get(oid, "body").unwrap(), Value::from("v0"));
}
