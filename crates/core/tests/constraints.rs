//! Tests for §5: class constraints, inheritance of constraints,
//! abort-and-rollback on violation, and constraint-based specialization
//! (the paper's `class female : public person` example).

use ode_core::prelude::*;
use ode_core::OdeError;

fn is_violation(e: &OdeError) -> bool {
    matches!(e, OdeError::ConstraintViolation { .. })
}

fn stock_db() -> Database {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 0)
            .field_default("max_quantity", Type::Int, 1000)
            .constraint_named("non_negative", "quantity >= 0")
            .constraint_named("bounded", "quantity <= max_quantity"),
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
    db
}

#[test]
fn violating_update_aborts_the_transaction() {
    let db = stock_db();
    let oid = db
        .transaction(|tx| tx.pnew("stockitem", &[("name", Value::from("x"))]))
        .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    let err = tx.set(oid, "quantity", -1i64).unwrap_err();
    assert!(is_violation(&err), "{err}");
    // §5 footnote 17: the whole transaction is aborted and rolled back.
    assert!(matches!(
        tx.get(oid, "quantity"),
        Err(OdeError::TransactionAborted)
    ));
    drop(tx);
    // Nothing leaked: the earlier in-transaction update is gone too.
    let tx = db.begin();
    assert_eq!(tx.get(oid, "quantity").unwrap(), Value::Int(0));
}

#[test]
fn violating_pnew_aborts() {
    let db = stock_db();
    let mut tx = db.begin();
    let err = tx
        .pnew(
            "stockitem",
            &[("name", Value::from("bad")), ("quantity", Value::Int(-5))],
        )
        .unwrap_err();
    assert!(is_violation(&err), "{err}");
    drop(tx);
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 0);
}

#[test]
fn multi_field_update_is_checked_after_the_closure() {
    let db = stock_db();
    let oid = db
        .transaction(|tx| {
            tx.pnew(
                "stockitem",
                &[("name", Value::from("x")), ("quantity", Value::Int(500))],
            )
        })
        .unwrap();
    // Raising quantity above the current max is fine when max is raised in
    // the same update (transiently inconsistent inside the closure).
    db.transaction(|tx| {
        tx.update(oid, |w| {
            w.set("quantity", 5000i64)?;
            w.set("max_quantity", 10000i64)?;
            Ok(())
        })
    })
    .unwrap();
    let tx = db.begin();
    assert_eq!(tx.get(oid, "quantity").unwrap(), Value::Int(5000));
}

#[test]
fn constraints_involving_multiple_fields() {
    let db = stock_db();
    let mut tx = db.begin();
    let err = tx
        .pnew(
            "stockitem",
            &[
                ("name", Value::from("x")),
                ("quantity", Value::Int(2000)), // default max is 1000
            ],
        )
        .unwrap_err();
    assert!(is_violation(&err), "{err}");
}

#[test]
fn constraint_based_specialization_female() {
    // §5 verbatim: class female: public person { constraint: sex == 'f' ||
    // sex == 'F'; }
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("person")
            .field("name", Type::Str)
            .field("sex", Type::Str),
    )
    .unwrap();
    db.define_class(
        ClassBuilder::new("female")
            .base("person")
            .constraint("sex == 'f' || sex == 'F'"),
    )
    .unwrap();
    db.create_cluster("person").unwrap();
    db.create_cluster("female").unwrap();

    // A person with sex 'm' is fine…
    db.transaction(|tx| {
        tx.pnew(
            "person",
            &[("name", Value::from("mark")), ("sex", Value::from("m"))],
        )
    })
    .unwrap();
    // …a female with sex 'F' is fine…
    db.transaction(|tx| {
        tx.pnew(
            "female",
            &[("name", Value::from("fran")), ("sex", Value::from("F"))],
        )
    })
    .unwrap();
    // …a female with sex 'm' violates the specialization.
    let err = db
        .transaction(|tx| {
            tx.pnew(
                "female",
                &[("name", Value::from("oops")), ("sex", Value::from("m"))],
            )
        })
        .unwrap_err();
    assert!(is_violation(&err), "{err}");
}

#[test]
fn constraints_are_inherited_by_derived_classes() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("account")
            .field_default("balance", Type::Int, 0)
            .constraint("balance >= 0"),
    )
    .unwrap();
    db.define_class(
        ClassBuilder::new("savings")
            .base("account")
            .field_default("rate", Type::Float, 0.01)
            .constraint("rate > 0.0"),
    )
    .unwrap();
    db.create_cluster("savings").unwrap();
    // The derived object must satisfy both its own and the base constraint.
    let err = db
        .transaction(|tx| tx.pnew("savings", &[("balance", Value::Int(-1))]))
        .unwrap_err();
    assert!(is_violation(&err), "{err}");
    let err = db
        .transaction(|tx| tx.pnew("savings", &[("rate", Value::Float(0.0))]))
        .unwrap_err();
    assert!(is_violation(&err), "{err}");
    db.transaction(|tx| tx.pnew("savings", &[("balance", Value::Int(10))]))
        .unwrap();
}

#[test]
fn violation_error_names_class_and_constraint() {
    let db = stock_db();
    let err = db
        .transaction(|tx| tx.pnew("stockitem", &[("quantity", Value::Int(-1))]))
        .unwrap_err();
    let OdeError::ConstraintViolation {
        class,
        constraint,
        src,
        ..
    } = err
    else {
        panic!("wrong error kind");
    };
    assert_eq!(class, "stockitem");
    assert_eq!(constraint, "non_negative");
    assert_eq!(src, "quantity >= 0");
}

#[test]
fn constraints_may_call_methods() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("order")
            .field_default("items", Type::Int, 0)
            .field_default("unit_price", Type::Float, 1.0)
            .constraint("total() <= 10000.0"),
    )
    .unwrap();
    db.register_method("order", "total", |s, _| {
        Ok(Value::Float(
            s.fields[0].as_int()? as f64 * s.fields[1].as_float()?,
        ))
    })
    .unwrap();
    db.create_cluster("order").unwrap();
    db.transaction(|tx| tx.pnew("order", &[("items", Value::Int(100))]))
        .unwrap();
    let err = db
        .transaction(|tx| {
            tx.pnew(
                "order",
                &[
                    ("items", Value::Int(100_000)),
                    ("unit_price", Value::Float(2.0)),
                ],
            )
        })
        .unwrap_err();
    assert!(is_violation(&err), "{err}");
}

#[test]
fn constraint_rollback_preserves_other_objects_in_txn() {
    let db = stock_db();
    let existing = db
        .transaction(|tx| tx.pnew("stockitem", &[("name", Value::from("a"))]))
        .unwrap();
    let mut tx = db.begin();
    let fresh = tx.pnew("stockitem", &[("name", Value::from("b"))]).unwrap();
    tx.set(existing, "quantity", 7i64).unwrap();
    // Violation rolls back everything, including `fresh`.
    let _ = tx.set(fresh, "quantity", -1i64).unwrap_err();
    drop(tx);
    let tx = db.begin();
    assert!(!tx.exists(fresh));
    assert_eq!(tx.get(existing, "quantity").unwrap(), Value::Int(0));
    drop(tx);
    assert_eq!(db.extent_size("stockitem", true).unwrap(), 1);
}

#[test]
fn unparsable_constraint_rejected_at_definition_time() {
    let db = Database::in_memory();
    let err = db
        .define_class(
            ClassBuilder::new("broken")
                .field("x", Type::Int)
                .constraint("x >="),
        )
        .unwrap_err();
    assert!(matches!(err, OdeError::Model(_)), "{err}");
}
