//! Edge cases across the engine: record forwarding through object growth,
//! cyclic data under fixpoint iteration, large values, many classes and
//! clusters, version/index interplay, and constraints that dereference
//! other objects.

use ode_core::prelude::*;
use ode_model::SetValue;

#[test]
fn object_growth_forwards_but_identity_is_stable() {
    // Grow one object's payload from bytes to kilobytes: its record gets
    // forwarded inside the heap, but the oid (and durability) hold.
    let dir = std::env::temp_dir().join(format!("ode-edge-grow-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let oid;
    {
        let db = Database::open(&dir).unwrap();
        db.define_from_source("class blob { string data; int n = 0; }")
            .unwrap();
        db.create_cluster("blob").unwrap();
        oid = db
            .transaction(|tx| tx.pnew("blob", &[("data", Value::from("x"))]))
            .unwrap();
        // Fill the page with siblings so growth cannot stay in place.
        db.transaction(|tx| {
            for i in 0..60 {
                tx.pnew(
                    "blob",
                    &[("data", Value::from("y".repeat(100))), ("n", Value::Int(i))],
                )?;
            }
            Ok(())
        })
        .unwrap();
        for size in [10usize, 1_000, 6_000, 200, 7_000] {
            db.transaction(|tx| tx.set(oid, "data", "z".repeat(size)))
                .unwrap();
            db.transaction(|tx| {
                assert_eq!(tx.get(oid, "data")?.as_str()?.len(), size);
                Ok(())
            })
            .unwrap();
        }
    }
    // Reopen: the forwarded record still resolves through the same oid.
    let db = Database::open(&dir).unwrap();
    db.transaction(|tx| {
        assert_eq!(tx.get(oid, "data")?.as_str()?.len(), 7_000);
        Ok(())
    })
    .unwrap();
    // And scans still see exactly 61 objects (no forward-target doubles).
    assert_eq!(db.extent_size("blob", true).unwrap(), 61);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fixpoint_over_cyclic_data_terminates() {
    // a -> b -> c -> a. The engine's fixpoint visits each *object* once,
    // so cyclic reachability terminates with the right answer.
    let db = Database::in_memory();
    db.define_from_source("class edge { string src; string dst; } class seen { string node; }")
        .unwrap();
    db.create_cluster("edge").unwrap();
    db.create_cluster("seen").unwrap();
    db.transaction(|tx| {
        for (s, d) in [("a", "b"), ("b", "c"), ("c", "a"), ("x", "y")] {
            tx.pnew("edge", &[("src", Value::from(s)), ("dst", Value::from(d))])?;
        }
        Ok(())
    })
    .unwrap();
    let mut reached = Vec::new();
    db.transaction(|tx| {
        tx.pnew("seen", &[("node", Value::from("a"))])?;
        tx.forall("seen")?.fixpoint().run(|tx, row| {
            let node = tx.get(row, "node")?.as_str()?.to_string();
            reached.push(node.clone());
            let nexts = tx
                .forall("edge")?
                .suchthat(&format!("src == \"{node}\""))?
                .collect_values("dst")?;
            for n in nexts {
                let n = n.as_str()?.to_string();
                if tx
                    .forall("seen")?
                    .suchthat(&format!("node == \"{n}\""))?
                    .count()?
                    == 0
                {
                    tx.pnew("seen", &[("node", Value::from(n.as_str()))])?;
                }
            }
            Ok(())
        })?;
        Ok(())
    })
    .unwrap();
    reached.sort();
    assert_eq!(reached, vec!["a", "b", "c"]);
}

#[test]
fn set_fixpoint_over_cycles_terminates_via_dedup() {
    // Set insertion dedups, so a cyclic closure over a set terminates
    // without any user-side visited bookkeeping.
    let db = Database::in_memory();
    db.define_from_source("class h { set<int> nums; }").unwrap();
    db.create_cluster("h").unwrap();
    db.transaction(|tx| {
        let h = tx.pnew("h", &[("nums", Value::Set(SetValue::new()))])?;
        tx.set_insert(h, "nums", 0i64)?;
        let visited = tx.iterate_set(h, "nums", |tx, v| {
            let n = v.as_int()?;
            // successor modulo 5: cyclic.
            tx.set_insert(h, "nums", (n + 1) % 5)?;
            Ok(())
        })?;
        assert_eq!(visited, 5);
        Ok(())
    })
    .unwrap();
}

#[test]
fn large_values_near_page_capacity() {
    let db = Database::in_memory();
    db.define_from_source("class big { string s; array<int> a; }")
        .unwrap();
    db.create_cluster("big").unwrap();
    db.transaction(|tx| {
        // ~4 KB string + ~2.7 KB array: close to (but under) one page.
        let s = "α".repeat(2000); // multibyte, 4000 bytes
        let arr: Vec<Value> = (0..300).map(Value::Int).collect();
        let oid = tx.pnew(
            "big",
            &[
                ("s", Value::from(s.clone())),
                ("a", Value::Array(arr.clone())),
            ],
        )?;
        assert_eq!(tx.get(oid, "s")?.as_str()?, s);
        let Value::Array(back) = tx.get(oid, "a")? else {
            panic!()
        };
        assert_eq!(back, arr);
        Ok(())
    })
    .unwrap();
}

#[test]
fn oversized_object_is_a_clean_error() {
    let db = Database::in_memory();
    db.define_from_source("class big { string s; }").unwrap();
    db.create_cluster("big").unwrap();
    let mut tx = db.begin();
    let oid = tx.pnew("big", &[]).unwrap();
    // A single object larger than a page cannot be stored; the error must
    // be a storage error at commit, not a panic, and the txn aborts.
    tx.set(oid, "s", "x".repeat(20_000)).unwrap();
    let err = tx.commit().unwrap_err();
    assert!(matches!(err, OdeError::Storage(_)), "{err}");
    assert_eq!(db.extent_size("big", true).unwrap(), 0);
    // Database remains healthy.
    db.transaction(|tx| {
        tx.pnew("big", &[("s", Value::from("small"))])?;
        Ok(())
    })
    .unwrap();
}

#[test]
fn many_classes_and_clusters_roundtrip() {
    let dir = std::env::temp_dir().join(format!("ode-edge-many-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        for i in 0..60 {
            db.define_from_source(&format!("class c{i} {{ int v = {i}; }}"))
                .unwrap();
            db.create_cluster(&format!("c{i}")).unwrap();
        }
        db.transaction(|tx| {
            for i in 0..60 {
                tx.pnew(&format!("c{i}"), &[])?;
            }
            Ok(())
        })
        .unwrap();
    }
    let db = Database::open(&dir).unwrap();
    for i in 0..60 {
        assert_eq!(db.extent_size(&format!("c{i}"), true).unwrap(), 1);
        db.transaction(|tx| {
            let oids = tx.forall(&format!("c{i}"))?.collect_oids()?;
            assert_eq!(tx.get(oids[0], "v")?, Value::Int(i));
            Ok(())
        })
        .unwrap();
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn index_tracks_current_version_only() {
    let db = Database::in_memory();
    db.define_from_source("class doc { int rev = 0; }").unwrap();
    db.create_cluster("doc").unwrap();
    db.create_index("doc", "rev").unwrap();
    let oid = db.transaction(|tx| tx.pnew("doc", &[])).unwrap();
    db.transaction(|tx| {
        tx.newversion(oid)?;
        tx.set(oid, "rev", 5i64)?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        // Current value indexed...
        assert_eq!(tx.forall("doc")?.suchthat("rev == 5")?.count()?, 1);
        // ...frozen version's value is not (queries are over current state).
        assert_eq!(tx.forall("doc")?.suchthat("rev == 0")?.count()?, 0);
        // But the frozen state is still reachable by specific reference.
        let old = tx.read_version(VersionRef { oid, version: 0 })?;
        assert_eq!(old.fields[0], Value::Int(0));
        Ok(())
    })
    .unwrap();
}

#[test]
fn constraint_can_dereference_other_objects() {
    // A constraint navigating a reference: an employee's salary must not
    // exceed their manager's.
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class manager { string name; int cap; }
        class employee {
            string name;
            int salary = 0;
            ref<manager> boss;
            constraint: boss == null || salary <= boss.cap;
        }
        "#,
    )
    .unwrap();
    db.create_cluster("manager").unwrap();
    db.create_cluster("employee").unwrap();
    let boss = db
        .transaction(|tx| {
            tx.pnew(
                "manager",
                &[("name", Value::from("m")), ("cap", Value::Int(100))],
            )
        })
        .unwrap();
    // Within cap: fine.
    let e = db
        .transaction(|tx| {
            tx.pnew(
                "employee",
                &[
                    ("name", Value::from("e")),
                    ("salary", Value::Int(90)),
                    ("boss", Value::Ref(boss)),
                ],
            )
        })
        .unwrap();
    // Beyond cap: constraint violation through the dereference.
    let err = db
        .transaction(|tx| tx.set(e, "salary", 150i64))
        .unwrap_err();
    assert!(matches!(err, OdeError::ConstraintViolation { .. }), "{err}");
    // No boss: the null guard admits any salary.
    db.transaction(|tx| {
        tx.pnew(
            "employee",
            &[("name", Value::from("solo")), ("salary", Value::Int(999))],
        )
    })
    .unwrap();
}

#[test]
fn deep_hierarchy_chains() {
    // A 12-deep single-inheritance chain: layouts accumulate, extents nest.
    let db = Database::in_memory();
    db.define_from_source("class l0 { int f0 = 0; }").unwrap();
    for i in 1..12 {
        db.define_from_source(&format!(
            "class l{i} : public l{} {{ int f{i} = {i}; }}",
            i - 1
        ))
        .unwrap();
    }
    for i in 0..12 {
        db.create_cluster(&format!("l{i}")).unwrap();
    }
    db.transaction(|tx| {
        let leaf = tx.pnew("l11", &[])?;
        // All 12 inherited fields present with their defaults.
        for i in 0..12 {
            assert_eq!(tx.get(leaf, &format!("f{i}"))?, Value::Int(i));
        }
        assert!(tx.instance_of(leaf, "l0")?);
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        assert_eq!(
            tx.forall("l0")?.count()?,
            1,
            "leaf visible from the root extent"
        );
        assert_eq!(tx.forall("l11")?.count()?, 1);
        Ok(())
    })
    .unwrap();
}

#[test]
fn empty_and_null_field_queries() {
    let db = Database::in_memory();
    db.define_from_source("class t { string s; int n = 0; }")
        .unwrap();
    db.create_cluster("t").unwrap();
    db.transaction(|tx| {
        tx.pnew("t", &[])?; // s is null
        tx.pnew("t", &[("s", Value::from(""))])?; // s is empty
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        assert_eq!(tx.forall("t")?.suchthat("s == null")?.count()?, 1);
        assert_eq!(tx.forall("t")?.suchthat("s == \"\"")?.count()?, 1);
        assert_eq!(tx.forall("t")?.suchthat("s != null")?.count()?, 1);
        Ok(())
    })
    .unwrap();
}
