//! Tests for query aggregates (sum/avg/min/max) and native-closure
//! predicates — conveniences layered over §3.1's iteration facility (the
//! paper's income example computes exactly these averages in loop bodies).

use ode_core::prelude::*;

fn db_with_items() -> Database {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("item")
            .field("name", Type::Str)
            .field_default("qty", Type::Int, 0)
            .field_default("price", Type::Float, 0.0),
    )
    .unwrap();
    db.create_cluster("item").unwrap();
    db.transaction(|tx| {
        for (name, qty, price) in [
            ("a", 10i64, 2.5f64),
            ("b", 20, 1.0),
            ("c", 30, 4.0),
            ("d", 40, 0.5),
        ] {
            tx.pnew(
                "item",
                &[
                    ("name", Value::from(name)),
                    ("qty", Value::Int(qty)),
                    ("price", Value::Float(price)),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
    db
}

#[test]
fn sum_int_and_float() {
    let db = db_with_items();
    let mut tx = db.begin();
    assert_eq!(
        tx.forall("item").unwrap().sum("qty").unwrap(),
        Value::Int(100)
    );
    assert_eq!(
        tx.forall("item").unwrap().sum("price * qty").unwrap(),
        Value::Float(10.0 * 2.5 + 20.0 + 30.0 * 4.0 + 40.0 * 0.5)
    );
    // Filtered sums.
    assert_eq!(
        tx.forall("item")
            .unwrap()
            .suchthat("qty >= 30")
            .unwrap()
            .sum("qty")
            .unwrap(),
        Value::Int(70)
    );
    tx.commit().unwrap();
}

#[test]
fn avg_min_max() {
    let db = db_with_items();
    let mut tx = db.begin();
    assert_eq!(tx.forall("item").unwrap().avg("qty").unwrap(), Some(25.0));
    assert_eq!(
        tx.forall("item").unwrap().min("price").unwrap(),
        Some(Value::Float(0.5))
    );
    assert_eq!(
        tx.forall("item").unwrap().max("qty").unwrap(),
        Some(Value::Int(40))
    );
    // Empty domain.
    assert_eq!(
        tx.forall("item")
            .unwrap()
            .suchthat("qty > 999")
            .unwrap()
            .avg("qty")
            .unwrap(),
        None
    );
    assert_eq!(
        tx.forall("item")
            .unwrap()
            .suchthat("qty > 999")
            .unwrap()
            .min("qty")
            .unwrap(),
        None
    );
    tx.commit().unwrap();
}

#[test]
fn sum_rejects_non_numeric() {
    let db = db_with_items();
    let mut tx = db.begin();
    assert!(tx.forall("item").unwrap().sum("name").is_err());
    tx.commit().unwrap();
}

#[test]
fn closure_filter_composes_with_suchthat() {
    let db = db_with_items();
    let mut tx = db.begin();
    let n = tx
        .forall("item")
        .unwrap()
        .suchthat("qty >= 20")
        .unwrap()
        .filter(|state| {
            // Native predicate: price below 2.0 (fields: name, qty, price).
            matches!(state.fields[2], Value::Float(p) if p < 2.0)
        })
        .count()
        .unwrap();
    assert_eq!(n, 2); // b (20, 1.0) and d (40, 0.5)
    tx.commit().unwrap();
}

#[test]
fn closure_filter_alone() {
    let db = db_with_items();
    let mut tx = db.begin();
    let oids = tx
        .forall("item")
        .unwrap()
        .filter(|s| s.fields[1] >= Value::Int(30))
        .collect_oids()
        .unwrap();
    assert_eq!(oids.len(), 2);
    tx.commit().unwrap();
}

#[test]
fn closure_filter_captures_environment() {
    let db = db_with_items();
    let mut tx = db.begin();
    let threshold = Value::Int(15);
    let mut seen = 0usize;
    tx.forall("item")
        .unwrap()
        .filter(|s| s.fields[1] > threshold)
        .run(|_tx, _oid| {
            seen += 1;
            Ok(())
        })
        .unwrap();
    assert_eq!(seen, 3);
    tx.commit().unwrap();
}

#[test]
fn paper_income_average_via_aggregates() {
    // The §3.1.1 example, restated with aggregates.
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class person  { string name; int income = 0; }
        class student : public person { }
        class faculty : public person { }
        "#,
    )
    .unwrap();
    for c in ["person", "student", "faculty"] {
        db.create_cluster(c).unwrap();
    }
    db.transaction(|tx| {
        tx.pnew("person", &[("income", Value::Int(100))])?;
        tx.pnew("student", &[("income", Value::Int(20))])?;
        tx.pnew("faculty", &[("income", Value::Int(300))])?;
        Ok(())
    })
    .unwrap();
    let mut tx = db.begin();
    assert_eq!(
        tx.forall("person").unwrap().avg("income").unwrap(),
        Some(140.0)
    );
    assert_eq!(
        tx.forall("student").unwrap().avg("income").unwrap(),
        Some(20.0)
    );
    assert_eq!(
        tx.forall("faculty").unwrap().avg("income").unwrap(),
        Some(300.0)
    );
    tx.commit().unwrap();
}
