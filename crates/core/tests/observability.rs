//! Engine-side observability: flight-recorder spans, per-cluster
//! workload statistics (including persistence across reopen), and the
//! trace-context plumbing the wire protocol rides on.

use ode_core::obs::{current_trace, set_trace, SpanStage, TraceId};
use ode_core::prelude::*;

fn inventory(db: &Database) {
    db.define_from_source("class stockitem { string name; int quantity = 0; }")
        .unwrap();
    db.create_cluster("stockitem").unwrap();
    db.transaction(|tx| {
        for i in 0..10 {
            tx.pnew(
                "stockitem",
                &[
                    ("name", Value::from(format!("item-{i}"))),
                    ("quantity", Value::Int(i)),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn flight_recorder_captures_span_tree() {
    let db = Database::in_memory();
    inventory(&db);

    let trace = db.flight().mint_trace();
    let _ctx = set_trace(trace);
    db.transaction(|tx| {
        let n = tx.forall("stockitem")?.suchthat("quantity >= 5")?.count()?;
        assert_eq!(n, 5);
        Ok(())
    })
    .unwrap();
    drop(_ctx);

    let spans = db.flight().for_trace(trace);
    assert!(!spans.is_empty(), "trace recorded no spans");
    let stages: Vec<SpanStage> = spans.iter().map(|s| s.stage).collect();
    assert!(stages.contains(&SpanStage::Txn), "{stages:?}");
    assert!(stages.contains(&SpanStage::Execute), "{stages:?}");
    assert!(stages.contains(&SpanStage::Commit), "{stages:?}");
    // Every span belongs to the requested trace and has monotonic
    // timestamps.
    for s in &spans {
        assert_eq!(s.trace, trace);
        assert!(s.end_ns >= s.start_ns);
    }
    // The commit span nests (transitively) under the transaction span.
    let txn = spans.iter().find(|s| s.stage == SpanStage::Txn).unwrap();
    let commit = spans.iter().find(|s| s.stage == SpanStage::Commit).unwrap();
    assert_eq!(commit.parent, txn.span_id);
    assert!(commit.start_ns >= txn.start_ns);
}

#[test]
fn background_work_stays_out_of_foreign_traces() {
    let db = Database::in_memory();
    inventory(&db);
    assert_eq!(current_trace(), TraceId::NONE);
    // Work outside any trace context lands in trace 0.
    db.read(|tx| tx.forall("stockitem")?.count()).unwrap();
    let traced: Vec<_> = db
        .flight()
        .snapshot()
        .into_iter()
        .filter(|s| s.trace.is_traced())
        .collect();
    assert!(
        traced.is_empty(),
        "untraced work minted a trace: {traced:?}"
    );
}

#[test]
fn workload_stats_accumulate_and_persist() {
    let dir = std::env::temp_dir().join(format!("ode-core-workstats-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir).unwrap();
        inventory(&db);
        db.read(|tx| tx.forall("stockitem")?.count()).unwrap();
        let rows = db.workload_stats();
        let item = rows
            .iter()
            .find(|r| r.key == "cluster:stockitem")
            .expect("cluster counters exist");
        assert!(item.scans >= 1, "{item:?}");
        assert!(item.reads >= 10, "{item:?}");
        assert!(item.writes >= 10, "{item:?}");
        // Checkpoint persists the counters into the catalog.
        db.checkpoint().unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let rows = db.workload_stats();
        let item = rows
            .iter()
            .find(|r| r.key == "cluster:stockitem")
            .expect("counters survived reopen");
        let (reads0, scans0) = (item.reads, item.writes);
        assert!(item.scans >= 1 && item.reads >= 10, "{item:?}");
        // Counters keep accumulating on top of the absorbed baseline, and
        // a second checkpoint updates the same record in place.
        db.read(|tx| tx.forall("stockitem")?.count()).unwrap();
        db.checkpoint().unwrap();
        db.checkpoint().unwrap();
        let rows = db.workload_stats();
        let item = rows.iter().find(|r| r.key == "cluster:stockitem").unwrap();
        assert!(item.reads > reads0 || item.writes >= scans0, "{item:?}");
    }
    {
        // A third open still decodes a single stats record cleanly.
        let db = Database::open(&dir).unwrap();
        assert!(db
            .workload_stats()
            .iter()
            .any(|r| r.key == "cluster:stockitem"));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn index_probe_counts_into_index_stats() {
    let db = Database::in_memory();
    inventory(&db);
    db.create_index("stockitem", "quantity").unwrap();
    db.read(|tx| tx.forall("stockitem")?.suchthat("quantity == 7")?.count())
        .unwrap();
    let rows = db.workload_stats();
    let ix = rows
        .iter()
        .find(|r| r.key == "index:stockitem.quantity")
        .expect("index counters exist: {rows:?}");
    assert!(ix.reads >= 1, "{ix:?}");
}
