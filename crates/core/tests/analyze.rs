//! The static-analysis gate (DESIGN.md §9): every statement class runs
//! through the analyzer before the engine does any transaction work,
//! statically bad statements come back as [`OdeError::Analysis`] with
//! coded diagnostics, and DDL-time schema analysis rejects contradictory
//! constraints before they reach the catalog.

use ode_core::oql::ExecResult;
use ode_core::prelude::*;

fn db() -> Database {
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class stockitem {
            string name;
            int    quantity = 0;
            int    on_order = 0;
            double price = 1.0;
            constraint: quantity >= 0;
        }
        "#,
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
    db
}

fn analysis_codes(e: &OdeError) -> Vec<&'static str> {
    match e {
        OdeError::Analysis(diags) => diags.iter().map(|d| d.code).collect(),
        other => panic!("expected OdeError::Analysis, got {other}"),
    }
}

#[test]
fn execute_gates_every_statement_class() {
    let db = db();
    // Query in a write transaction.
    let mut tx = db.begin();
    let e = tx.execute("forall s in stockitem suchthat (missing > 1)");
    assert_eq!(analysis_codes(&e.unwrap_err()), ["A002"]);
    // DML: pnew, update, delete.
    let e = tx.execute("pnew stockitem (quantity = \"lots\")");
    assert_eq!(analysis_codes(&e.unwrap_err()), ["A007"]);
    let e = tx.execute("update s in stockitem set missing = 1");
    assert_eq!(analysis_codes(&e.unwrap_err()), ["A002"]);
    let e = tx.execute("delete z in zombie");
    assert_eq!(analysis_codes(&e.unwrap_err()), ["A001"]);
    // The transaction survives analysis rejections and still works.
    let r = tx.execute("pnew stockitem (name = \"dram\", quantity = 5)");
    assert!(matches!(r, Ok(ExecResult::Created(_))), "{r:?}");
    tx.commit().unwrap();

    // Read transactions gate too, including through `explain`.
    let mut rtx = db.begin_read();
    let e = rtx.execute("forall s in stockitem suchthat (missing > 1)");
    assert_eq!(analysis_codes(&e.unwrap_err()), ["A002"]);
    let e = rtx.execute("explain forall s in stockitem suchthat (missing > 1)");
    assert_eq!(analysis_codes(&e.unwrap_err()), ["A002"]);
    let r = rtx.execute("forall s in stockitem suchthat (quantity > 1)");
    assert!(r.is_ok(), "{r:?}");
}

#[test]
fn parse_errors_keep_their_original_type() {
    let db = db();
    let mut tx = db.begin();
    // Unparsable statements are not the analyzer's to report: the
    // executor returns the original parse error.
    let e = tx.execute("forall suchthat quantity").unwrap_err();
    assert!(matches!(e, OdeError::Model(_)), "{e}");
    tx.commit().unwrap();
}

#[test]
fn ddl_analysis_rejects_contradictory_constraints() {
    let db = db();
    // A subclass whose constraint contradicts the inherited one (§5):
    // rejected before the catalog sees it.
    let e = db
        .define_from_source("class scarce : public stockitem { constraint: quantity < 0; }")
        .unwrap_err();
    assert_eq!(analysis_codes(&e), ["A008"]);
    // The class was never defined.
    assert!(db.with_schema(|s| s.class_by_name("scarce").is_err()));
    // A sane subclass still defines fine.
    db.define_from_source("class bulk : public stockitem { int pallets = 0; }")
        .unwrap();
}

#[test]
fn analyze_statement_reports_without_executing() {
    let db = db();
    let before = db.telemetry();
    let diags = db
        .analyze_statement("forall s in stockitem suchthat (quantity > 10 && quantity < 5)")
        .unwrap();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, "A101");
    assert_eq!(diags[0].severity, Severity::Warning);
    let after = db.telemetry();
    assert_eq!(after.analyze.passes, before.analyze.passes + 1);
    assert_eq!(after.analyze.warnings, before.analyze.warnings + 1);
    assert_eq!(after.txn.begun, before.txn.begun);
    assert!(after.analyze.latency.count > before.analyze.latency.count);
}

#[test]
fn eval_time_unknown_var_names_the_statement() {
    let db = db();
    // `$param` survives parsing and analysis only where parameters are
    // legal; `query()` (no gate) lets it reach the evaluator, which
    // must now say *which statement* had the unbound variable.
    let mut tx = db.begin();
    // The predicate only evaluates against an object.
    tx.pnew("stockitem", &[("name", Value::from("dram"))])
        .unwrap();
    let e = tx
        .query("forall s in stockitem suchthat ($floor > quantity)")
        .unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("unbound variable `$floor`"), "{msg}");
    assert!(msg.contains("in statement"), "{msg}");
    assert!(msg.contains("$floor > quantity"), "{msg}");
    // The typed source is preserved underneath.
    assert!(
        matches!(&e, OdeError::InStatement { source, .. }
            if matches!(**source, OdeError::Model(_))),
        "{e:?}"
    );
    tx.commit().unwrap();
}
