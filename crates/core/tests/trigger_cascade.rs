//! Cross-object trigger cascades: an action transaction writing *another*
//! object must evaluate that object's activations at its own commit (§6's
//! end-of-transaction rule applies to every transaction, including
//! weak-coupled action transactions).

use ode_core::prelude::*;

/// A two-stage production line: consuming widgets triggers a restock
/// order; the order's arrival (modelled by the restock callback writing
/// the warehouse) triggers a warehouse audit.
fn setup() -> (Database, Oid, Oid) {
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class widget_bin {
            int level = 100;
            int ordered = 0;
            trigger low() : level < 10 {
                call restock;
            }
        }
        class warehouse {
            int stock = 1000;
            int audits = 0;
            trigger audit() : stock < 950 {
                audits = audits + 1;
            }
        }
        "#,
    )
    .unwrap();
    db.create_cluster("widget_bin").unwrap();
    db.create_cluster("warehouse").unwrap();
    let (bin, wh) = db
        .transaction(|tx| {
            let bin = tx.pnew("widget_bin", &[])?;
            let wh = tx.pnew("warehouse", &[])?;
            tx.activate_trigger(bin, "low", vec![])?;
            tx.activate_trigger(wh, "audit", vec![])?;
            Ok((bin, wh))
        })
        .unwrap();
    (db, bin, wh)
}

#[test]
fn action_on_a_fires_trigger_on_b() {
    let (db, bin, wh) = setup();
    // The restock callback moves 100 units from the warehouse to the bin.
    db.register_callback("restock", move |tx, bin_oid, _args| {
        let level = tx.get(bin_oid, "level")?.as_int()?;
        tx.update(bin_oid, |w| {
            w.set("level", level + 100)?;
            let o = w.get("ordered")?.as_int()?;
            w.set("ordered", o + 1)
        })?;
        // Writing the *warehouse* makes its audit trigger eligible at this
        // action transaction's commit.
        let stock = tx.get(wh, "stock")?.as_int()?;
        tx.set(wh, "stock", stock - 100)?;
        Ok(())
    });

    // Drain the bin: bin.low fires; its action writes the warehouse, whose
    // audit trigger (stock 900 < 950) fires in cascade.
    let mut tx = db.begin();
    tx.set(bin, "level", 5i64).unwrap();
    let info = tx.commit().unwrap();
    let fired: Vec<&str> = info.fired.iter().map(|f| f.trigger.as_str()).collect();
    assert_eq!(fired, vec!["low", "audit"], "cross-object cascade order");
    assert!(info.failures.is_empty());

    db.transaction(|tx| {
        assert_eq!(tx.get(bin, "level")?, Value::Int(105));
        assert_eq!(tx.get(bin, "ordered")?, Value::Int(1));
        assert_eq!(tx.get(wh, "stock")?, Value::Int(900));
        assert_eq!(tx.get(wh, "audits")?, Value::Int(1));
        Ok(())
    })
    .unwrap();

    // Both triggers were once-only: they are spent now.
    let tx = db.begin();
    assert!(tx.active_triggers(bin).is_empty());
    assert!(tx.active_triggers(wh).is_empty());
}

#[test]
fn cascade_depth_counts_chained_objects() {
    // A chain of N relay objects, each once-only trigger poking the next:
    // the whole chain runs within the cascade limit and fires in order.
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class relay {
            int n = 0;
            int hot = 0;
            ref<relay> next;
            trigger fire() : hot == 1 {
                call pass_on;
            }
        }
        "#,
    )
    .unwrap();
    db.create_cluster("relay").unwrap();
    db.register_callback("pass_on", |tx, oid, _args| {
        let next = tx.get(oid, "next")?;
        if let Value::Ref(next) = next {
            tx.set(next, "hot", 1i64)?;
        }
        Ok(())
    });
    const N: usize = 10;
    let oids = db
        .transaction(|tx| {
            let mut oids = Vec::new();
            let mut next: Option<Oid> = None;
            for i in (0..N).rev() {
                let mut inits = vec![("n", Value::Int(i as i64))];
                if let Some(nx) = next {
                    inits.push(("next", Value::Ref(nx)));
                }
                let oid = tx.pnew("relay", &inits)?;
                tx.activate_trigger(oid, "fire", vec![])?;
                next = Some(oid);
                oids.push(oid);
            }
            oids.reverse(); // oids[0] is the head
            Ok(oids)
        })
        .unwrap();

    let mut tx = db.begin();
    tx.set(oids[0], "hot", 1i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), N, "every relay fired once");
    assert!(info.failures.is_empty());
    // All relays are hot at the end.
    db.transaction(|tx| {
        for &oid in &oids {
            assert_eq!(tx.get(oid, "hot")?, Value::Int(1));
        }
        Ok(())
    })
    .unwrap();
}

#[test]
fn chain_longer_than_cascade_limit_is_cut_and_reported() {
    let db = ode_core::Database::from_store(
        std::sync::Arc::new(ode_storage::MemStore::new()),
        DbConfig {
            trigger_cascade_limit: 4,
            ..DbConfig::default()
        },
    )
    .unwrap();
    db.define_from_source(
        r#"
        class relay {
            int hot = 0;
            ref<relay> next;
            trigger fire() : hot == 1 { call pass_on; }
        }
        "#,
    )
    .unwrap();
    db.create_cluster("relay").unwrap();
    db.register_callback("pass_on", |tx, oid, _args| {
        if let Value::Ref(next) = tx.get(oid, "next")? {
            tx.set(next, "hot", 1i64)?;
        }
        Ok(())
    });
    let oids = db
        .transaction(|tx| {
            let mut next: Option<Oid> = None;
            let mut oids = Vec::new();
            for _ in 0..10 {
                let mut inits = Vec::new();
                if let Some(nx) = next {
                    inits.push(("next", Value::Ref(nx)));
                }
                let oid = tx.pnew("relay", &inits)?;
                tx.activate_trigger(oid, "fire", vec![])?;
                next = Some(oid);
                oids.push(oid);
            }
            oids.reverse();
            Ok(oids)
        })
        .unwrap();
    let mut tx = db.begin();
    tx.set(oids[0], "hot", 1i64).unwrap();
    let info = tx.commit().unwrap();
    assert!(
        info.fired.len() < 10,
        "the chain must be cut by the limit (fired {})",
        info.fired.len()
    );
    assert!(
        info.failures
            .iter()
            .any(|f| matches!(f.error, OdeError::TriggerCascade { limit: 4 })),
        "the cut is reported with the limit"
    );
}
