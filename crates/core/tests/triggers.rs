//! Tests for §6: triggers — activation with arguments, once-only vs.
//! perpetual, end-of-transaction condition evaluation, weak coupling
//! (independent action transactions; aborted transactions fire nothing),
//! explicit deactivation, cascades and the cascade limit, callback
//! actions, and persistence of activations.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ode_core::prelude::*;
use ode_core::OdeError;

/// The paper's active-inventory example: reorder when stock runs low.
fn inventory(db: &Database) {
    db.define_class(
        ClassBuilder::new("stockitem")
            .field("name", Type::Str)
            .field_default("quantity", Type::Int, 100)
            .field_default("reorder_level", Type::Int, 20)
            .field_default("on_order", Type::Int, 0)
            // Once-only trigger, as in §6: fires when quantity drops to the
            // reorder level; action places an order.
            .trigger("reorder", &[], false, "quantity <= reorder_level")
            .action_assign("on_order", "on_order + 100")
            // Perpetual variant with an activation argument.
            .trigger("low_stock", &["threshold"], true, "quantity < $threshold")
            .action_callback("notify"),
    )
    .unwrap();
    db.create_cluster("stockitem").unwrap();
}

#[test]
fn trigger_fires_when_condition_becomes_true_at_commit() {
    let db = Database::in_memory();
    inventory(&db);
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            tx.activate_trigger(oid, "reorder", vec![])?;
            Ok(oid)
        })
        .unwrap();

    // Condition false: no firing.
    let mut tx = db.begin();
    tx.set(oid, "quantity", 50i64).unwrap();
    let info = tx.commit().unwrap();
    assert!(!info.any_fired());

    // Condition true at commit: fires, and the weak-coupled action ran.
    let mut tx = db.begin();
    tx.set(oid, "quantity", 10i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    assert_eq!(info.fired[0].trigger, "reorder");
    assert!(info.failures.is_empty());
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
}

#[test]
fn once_only_trigger_deactivates_after_firing() {
    let db = Database::in_memory();
    inventory(&db);
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            tx.activate_trigger(oid, "reorder", vec![])?;
            Ok(oid)
        })
        .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    // Second qualifying update: trigger is gone.
    let mut tx = db.begin();
    tx.set(oid, "quantity", 1i64).unwrap();
    let info = tx.commit().unwrap();
    assert!(!info.any_fired());
    // Reactivation re-arms it (the paper: "must then be reactivated
    // explicitly if desired").
    db.transaction(|tx| {
        tx.activate_trigger(oid, "reorder", vec![])?;
        Ok(())
    })
    .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 2i64).unwrap();
    assert_eq!(tx.commit().unwrap().fired.len(), 1);
}

#[test]
fn perpetual_trigger_rearms() {
    let db = Database::in_memory();
    inventory(&db);
    let fired = Arc::new(AtomicUsize::new(0));
    let fired2 = fired.clone();
    db.register_callback("notify", move |_tx, _oid, _args| {
        fired2.fetch_add(1, Ordering::SeqCst);
        Ok(())
    });
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            tx.activate_trigger(oid, "low_stock", vec![Value::Int(50)])?;
            Ok(oid)
        })
        .unwrap();
    for qty in [40i64, 30, 20] {
        let mut tx = db.begin();
        tx.set(oid, "quantity", qty).unwrap();
        let info = tx.commit().unwrap();
        assert_eq!(info.fired.len(), 1, "perpetual fires every time");
    }
    assert_eq!(fired.load(Ordering::SeqCst), 3);
}

#[test]
fn activation_arguments_reach_the_condition() {
    let db = Database::in_memory();
    inventory(&db);
    db.register_callback("notify", |_tx, _oid, _args| Ok(()));
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            // threshold = 10: quantity 15 must NOT fire.
            tx.activate_trigger(oid, "low_stock", vec![Value::Int(10)])?;
            Ok(oid)
        })
        .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 15i64).unwrap();
    assert!(!tx.commit().unwrap().any_fired());
    let mut tx = db.begin();
    tx.set(oid, "quantity", 5i64).unwrap();
    assert!(tx.commit().unwrap().any_fired());
}

#[test]
fn wrong_arity_activation_rejected() {
    let db = Database::in_memory();
    inventory(&db);
    let mut tx = db.begin();
    let oid = tx
        .pnew("stockitem", &[("name", Value::from("dram"))])
        .unwrap();
    let err = tx.activate_trigger(oid, "low_stock", vec![]).unwrap_err();
    assert!(matches!(err, OdeError::Trigger(_)), "{err}");
    let err = tx.activate_trigger(oid, "ghost", vec![]).unwrap_err();
    assert!(matches!(err, OdeError::Model(_)), "{err}");
    tx.commit().unwrap();
}

#[test]
fn aborted_transaction_fires_nothing() {
    // §6: "If the triggering transaction is aborted, the trigger actions
    // generated by it are aborted."
    let db = Database::in_memory();
    inventory(&db);
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            tx.activate_trigger(oid, "reorder", vec![])?;
            Ok(oid)
        })
        .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 1i64).unwrap();
    tx.abort();
    // Action never ran; trigger still armed.
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(0));
    assert_eq!(tx.active_triggers(oid).len(), 1);
}

#[test]
fn explicit_deactivation_prevents_firing() {
    let db = Database::in_memory();
    inventory(&db);
    let (oid, tid) = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            let tid = tx.activate_trigger(oid, "reorder", vec![])?;
            Ok((oid, tid))
        })
        .unwrap();
    db.transaction(|tx| tx.deactivate_trigger(tid)).unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 1i64).unwrap();
    assert!(!tx.commit().unwrap().any_fired());
    // Deactivating twice errors.
    let mut tx = db.begin();
    assert!(tx.deactivate_trigger(tid).is_err());
    tx.commit().unwrap();
}

#[test]
fn deactivation_in_same_transaction_as_activation() {
    let db = Database::in_memory();
    inventory(&db);
    db.transaction(|tx| {
        let oid = tx.pnew(
            "stockitem",
            &[("name", Value::from("dram")), ("quantity", Value::Int(1))],
        )?;
        let tid = tx.activate_trigger(oid, "reorder", vec![])?;
        tx.deactivate_trigger(tid)?;
        Ok(())
    })
    .unwrap();
    // Nothing fired, nothing persisted.
    let db2 = db;
    let mut tx = db2.begin();
    let oids = tx.forall("stockitem").unwrap().collect_oids().unwrap();
    assert_eq!(tx.active_triggers(oids[0]).len(), 0);
    tx.commit().unwrap();
}

#[test]
fn activation_in_creating_transaction_can_fire_immediately() {
    // Activate + make the condition true in the same transaction: fires at
    // that commit.
    let db = Database::in_memory();
    inventory(&db);
    let mut tx = db.begin();
    let oid = tx
        .pnew(
            "stockitem",
            &[("name", Value::from("dram")), ("quantity", Value::Int(1))],
        )
        .unwrap();
    tx.activate_trigger(oid, "reorder", vec![]).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
    // Once-only + fired at birth: not persisted as active.
    assert_eq!(tx.active_triggers(oid).len(), 0);
}

#[test]
fn trigger_cascade_chains_and_limit() {
    // A perpetual trigger whose action keeps re-satisfying its own
    // condition must hit the cascade limit, reported as failures (weak
    // coupling: the commit itself succeeded).
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("counter")
            .field_default("n", Type::Int, 0)
            .trigger("bump", &[], true, "n >= 0") // always true
            .action_assign("n", "n + 1"),
    )
    .unwrap();
    db.create_cluster("counter").unwrap();
    let mut tx = db.begin();
    let oid = tx.pnew("counter", &[]).unwrap();
    tx.activate_trigger(oid, "bump", vec![]).unwrap();
    let info = tx.commit().unwrap();
    assert!(
        !info.failures.is_empty(),
        "runaway cascade must be reported"
    );
    assert!(info
        .failures
        .iter()
        .any(|f| matches!(f.error, OdeError::TriggerCascade { .. })));
    // The cascade made real progress before the limit.
    let tx = db.begin();
    assert!(tx.get(oid, "n").unwrap().as_int().unwrap() > 0);
}

#[test]
fn bounded_cascade_terminates_cleanly() {
    // Action increments until the condition goes false: a well-behaved
    // cascade.
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("counter")
            .field_default("n", Type::Int, 0)
            .trigger("bump", &[], true, "n < 5")
            .action_assign("n", "n + 1"),
    )
    .unwrap();
    db.create_cluster("counter").unwrap();
    let mut tx = db.begin();
    let oid = tx.pnew("counter", &[]).unwrap();
    tx.activate_trigger(oid, "bump", vec![]).unwrap();
    tx.set(oid, "n", 1i64).unwrap();
    let info = tx.commit().unwrap();
    assert!(info.failures.is_empty());
    assert_eq!(info.fired.len(), 4); // n: 1→2→3→4→5, condition false at 5
    let tx = db.begin();
    assert_eq!(tx.get(oid, "n").unwrap(), Value::Int(5));
}

#[test]
fn callback_actions_run_in_independent_transactions() {
    let db = Database::in_memory();
    inventory(&db);
    db.register_callback("notify", |tx, oid, _args| {
        // The action sees the committed post-state and may write more —
        // here it restocks, which also quenches the (perpetual) condition.
        let qty = tx.get(oid, "quantity")?.as_int()?;
        tx.update(oid, |w| {
            w.set("on_order", qty * 2)?;
            w.set("quantity", 100i64)?;
            Ok(())
        })?;
        Ok(())
    });
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            tx.activate_trigger(oid, "low_stock", vec![Value::Int(50)])?;
            Ok(oid)
        })
        .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 10i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    assert!(info.failures.is_empty());
    let tx = db.begin();
    assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(20));
    assert_eq!(tx.get(oid, "quantity").unwrap(), Value::Int(100));
}

#[test]
fn missing_callback_is_reported_not_fatal() {
    let db = Database::in_memory();
    inventory(&db);
    // "notify" never registered.
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            tx.activate_trigger(oid, "low_stock", vec![Value::Int(50)])?;
            Ok(oid)
        })
        .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "quantity", 10i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    assert_eq!(info.failures.len(), 1);
    assert!(matches!(info.failures[0].error, OdeError::Trigger(_)));
}

#[test]
fn deleting_the_object_drops_its_activations() {
    let db = Database::in_memory();
    inventory(&db);
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
            tx.activate_trigger(oid, "reorder", vec![])?;
            Ok(oid)
        })
        .unwrap();
    db.transaction(|tx| tx.pdelete(oid)).unwrap();
    let tx = db.begin();
    assert!(tx.active_triggers(oid).is_empty());
}

#[test]
fn activations_survive_reopen() {
    let dir = std::env::temp_dir().join(format!("ode-core-trigreopen-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let oid;
    {
        let db = Database::open(&dir).unwrap();
        inventory(&db);
        oid = db
            .transaction(|tx| {
                let oid = tx.pnew("stockitem", &[("name", Value::from("dram"))])?;
                tx.activate_trigger(oid, "reorder", vec![])?;
                Ok(oid)
            })
            .unwrap();
    }
    {
        let db = Database::open(&dir).unwrap();
        let tx = db.begin();
        assert_eq!(tx.active_triggers(oid).len(), 1);
        drop(tx);
        // And it still fires.
        let mut tx = db.begin();
        tx.set(oid, "quantity", 1i64).unwrap();
        let info = tx.commit().unwrap();
        assert_eq!(info.fired.len(), 1);
        let tx = db.begin();
        assert_eq!(tx.get(oid, "on_order").unwrap(), Value::Int(100));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn triggers_only_evaluate_for_written_objects() {
    // An untouched object's trigger must not fire even if its condition is
    // true (conditions are only *re*-evaluated when the subject changes —
    // observationally equivalent to the paper's end-of-transaction rule,
    // since an unwritten subject's condition value cannot have changed).
    let db = Database::in_memory();
    inventory(&db);
    let (low, other) = db
        .transaction(|tx| {
            let low = tx.pnew(
                "stockitem",
                &[("name", Value::from("low")), ("quantity", Value::Int(50))],
            )?;
            let other = tx.pnew("stockitem", &[("name", Value::from("other"))])?;
            Ok((low, other))
        })
        .unwrap();
    db.transaction(|tx| {
        tx.activate_trigger(low, "reorder", vec![])?;
        Ok(())
    })
    .unwrap();
    // Write only `other`; low's condition is false anyway.
    let mut tx = db.begin();
    tx.set(other, "quantity", 99i64).unwrap();
    assert!(!tx.commit().unwrap().any_fired());
    // Now write `low` so its condition becomes true.
    let mut tx = db.begin();
    tx.set(low, "quantity", 10i64).unwrap();
    assert_eq!(tx.commit().unwrap().fired.len(), 1);
}

#[test]
fn trigger_on_derived_class_object_uses_inherited_declaration() {
    let db = Database::in_memory();
    db.define_class(
        ClassBuilder::new("item")
            .field_default("qty", Type::Int, 100)
            .trigger("low", &[], false, "qty < 10")
            .action_assign("qty", "qty + 50"),
    )
    .unwrap();
    db.define_class(
        ClassBuilder::new("special")
            .base("item")
            .field("tag", Type::Str),
    )
    .unwrap();
    db.create_cluster("item").unwrap();
    db.create_cluster("special").unwrap();
    let oid = db
        .transaction(|tx| {
            let oid = tx.pnew("special", &[("tag", Value::from("s"))])?;
            tx.activate_trigger(oid, "low", vec![])?;
            Ok(oid)
        })
        .unwrap();
    let mut tx = db.begin();
    tx.set(oid, "qty", 5i64).unwrap();
    let info = tx.commit().unwrap();
    assert_eq!(info.fired.len(), 1);
    let tx = db.begin();
    assert_eq!(tx.get(oid, "qty").unwrap(), Value::Int(55));
}
