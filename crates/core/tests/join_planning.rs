//! Tests for the join planner: inner variables whose join key is indexed
//! are probed through the index instead of enumerated, and the probe path
//! must agree exactly with the nested-loop path under updates, inserts,
//! deletes, null keys, and hierarchy membership.

use ode_core::prelude::*;

fn company(index: bool) -> Database {
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class department { string dname; int dno; }
        class lab : public department { string campus; }
        class employee { string ename; int deptno; }
        "#,
    )
    .unwrap();
    for c in ["department", "lab", "employee"] {
        db.create_cluster(c).unwrap();
    }
    if index {
        db.create_index("department", "dno").unwrap();
    }
    db.transaction(|tx| {
        for d in 0..4i64 {
            tx.pnew(
                "department",
                &[
                    ("dname", Value::from(format!("dept-{d}"))),
                    ("dno", Value::Int(d)),
                ],
            )?;
        }
        // A lab is a department too (deep extent must be probed correctly).
        tx.pnew(
            "lab",
            &[
                ("dname", Value::from("bell labs")),
                ("dno", Value::Int(99)),
                ("campus", Value::from("murray hill")),
            ],
        )?;
        for e in 0..10i64 {
            tx.pnew(
                "employee",
                &[
                    ("ename", Value::from(format!("emp-{e}"))),
                    ("deptno", Value::Int(if e == 9 { 99 } else { e % 4 })),
                ],
            )?;
        }
        Ok(())
    })
    .unwrap();
    db
}

fn join_rows(db: &Database) -> Vec<Vec<Oid>> {
    db.transaction(|tx| {
        let mut rows = tx
            .forall_join(&[("e", "employee"), ("d", "department")])
            .unwrap()
            .suchthat("e.deptno == d.dno")
            .unwrap()
            .collect()?;
        rows.sort();
        Ok(rows)
    })
    .unwrap()
}

#[test]
fn probed_join_agrees_with_nested_loop() {
    let plain = company(false);
    let indexed = company(true);
    let a = join_rows(&plain);
    let b = join_rows(&indexed);
    assert_eq!(a.len(), 10, "every employee matches exactly one department");
    assert_eq!(a.len(), b.len());
    // Oids are deterministic (same construction order), so rows compare.
    assert_eq!(a, b);
}

#[test]
fn probe_covers_hierarchy_members() {
    // emp-9 belongs to the lab (a department subclass); the index on
    // `department.dno` covers the deep extent, so the probe must find it.
    let db = company(true);
    db.transaction(|tx| {
        let rows = tx
            .forall_join(&[("e", "employee"), ("d", "department")])?
            .suchthat("e.deptno == d.dno && e.ename == \"emp-9\"")?
            .collect()?;
        assert_eq!(rows.len(), 1);
        let d = rows[0][1];
        assert!(tx.instance_of(d, "lab")?);
        Ok(())
    })
    .unwrap();
}

#[test]
fn probe_sees_in_transaction_changes() {
    let db = company(true);
    db.transaction(|tx| {
        // A new department, uncommitted: the committed index cannot know it.
        let fresh = tx.pnew(
            "department",
            &[("dname", Value::from("fresh")), ("dno", Value::Int(77))],
        )?;
        let e = tx.pnew(
            "employee",
            &[
                ("ename", Value::from("new hire")),
                ("deptno", Value::Int(77)),
            ],
        )?;
        let rows = tx
            .forall_join(&[("e", "employee"), ("d", "department")])?
            .suchthat("e.deptno == d.dno && e.deptno == 77")?
            .collect()?;
        assert_eq!(rows, vec![vec![e, fresh]]);

        // An in-transaction dno change: the stale committed entry must not
        // produce a row, and the new value must.
        let dept1 = tx
            .forall("department")?
            .suchthat("dno == 1")?
            .collect_oids()?[0];
        tx.set(dept1, "dno", 55i64)?;
        let rows = tx
            .forall_join(&[("e", "employee"), ("d", "department")])?
            .suchthat("e.deptno == d.dno && e.deptno == 1")?
            .collect()?;
        assert!(rows.is_empty(), "stale index entry must be filtered");

        // Deleted departments disappear from probes.
        let dept2 = tx
            .forall("department")?
            .suchthat("dno == 2")?
            .collect_oids()?[0];
        tx.pdelete(dept2)?;
        let rows = tx
            .forall_join(&[("e", "employee"), ("d", "department")])?
            .suchthat("e.deptno == d.dno && e.deptno == 2")?
            .collect()?;
        assert!(rows.is_empty());
        Ok(())
    })
    .unwrap();
}

#[test]
fn probe_with_constant_key() {
    // `d.dno == 3` has no earlier-variable references: still probeable.
    let db = company(true);
    db.transaction(|tx| {
        let rows = tx
            .forall_join(&[("e", "employee"), ("d", "department")])?
            .suchthat("d.dno == 3 && e.deptno == d.dno")?
            .collect()?;
        assert_eq!(rows.len(), 2); // emp-3 and emp-7
        Ok(())
    })
    .unwrap();
}

#[test]
fn null_keys_fall_back_to_enumeration() {
    let db = Database::in_memory();
    db.define_from_source(
        r#"
        class parent { string tag; }
        class child { string tag; ref<parent> owner; }
        "#,
    )
    .unwrap();
    db.create_cluster("parent").unwrap();
    db.create_cluster("child").unwrap();
    db.create_index("child", "owner").unwrap();
    db.transaction(|tx| {
        let p = tx.pnew("parent", &[("tag", Value::from("p"))])?;
        tx.pnew(
            "child",
            &[("tag", Value::from("owned")), ("owner", Value::Ref(p))],
        )?;
        tx.pnew("child", &[("tag", Value::from("orphan"))])?; // owner null
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        // Join on the ref field: the owned child matches its parent.
        let rows = tx
            .forall_join(&[("p", "parent"), ("c", "child")])?
            .suchthat("c.owner == p")?
            .collect()?;
        assert_eq!(rows.len(), 1);
        Ok(())
    })
    .unwrap();
}

#[test]
fn three_way_join_with_mixed_probing() {
    // department indexed, project not: middle var probes, last enumerates.
    let db = company(true);
    db.define_from_source("class project { int pdept; string pname; }")
        .unwrap();
    db.create_cluster("project").unwrap();
    db.transaction(|tx| {
        tx.pnew(
            "project",
            &[("pdept", Value::Int(0)), ("pname", Value::from("unix"))],
        )?;
        tx.pnew(
            "project",
            &[("pdept", Value::Int(1)), ("pname", Value::from("c++"))],
        )?;
        Ok(())
    })
    .unwrap();
    db.transaction(|tx| {
        let rows = tx
            .forall_join(&[("e", "employee"), ("d", "department"), ("p", "project")])?
            .suchthat("e.deptno == d.dno && p.pdept == d.dno")?
            .collect()?;
        // Employees in dept 0 (3: emp-0,4,8) and dept 1 (2: emp-1,5) with
        // their single projects: wait — dept 0 has emp 0,4,8 and dept 1 has
        // emp 1,5 (e%4 over 0..9 minus emp-9): dept0={0,4,8}, dept1={1,5}.
        assert_eq!(rows.len(), 5);
        Ok(())
    })
    .unwrap();
}
