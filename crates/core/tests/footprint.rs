//! Footprint-driven validation (DESIGN.md §14): the static analyzer
//! proves key-predicate ranges, the transaction layer records them in
//! its scan entries, and `claim_commit` intersects reader ranges with
//! writer ranges so provably disjoint transactions stop conflicting.
//!
//! Two families of tests live here:
//!
//! * regression tests pinning the narrowed-validation semantics —
//!   disjoint ranges commit, overlapping or unproven access still
//!   conflicts (the soundness edge);
//! * a property-based oracle checking the footprint pass itself is a
//!   sound over-approximation: every cluster the runtime actually
//!   touched was predicted by `Database::statement_footprint`.

use std::collections::HashSet;

use ode_core::prelude::{OdeError, Value};
use ode_core::Database;
use proptest::prelude::*;

/// A class with *no* index on `quantity`: predicates on it take the
/// extent-scan path, which records per-heap scan entries (not
/// per-object read-set entries) — exactly the shape the ranged
/// validation narrows.
fn stock_db() -> Database {
    let db = Database::in_memory();
    db.define_from_source("class stockitem { string name; int quantity = 0; double price = 0.0; }")
        .unwrap();
    db.create_cluster("stockitem").unwrap();
    db
}

fn seed(db: &Database, rows: &[(&str, i64)]) {
    db.transaction(|tx| {
        for (name, q) in rows {
            tx.execute(&format!(
                r#"pnew stockitem (name = "{name}", quantity = {q})"#
            ))?;
        }
        Ok(())
    })
    .unwrap();
}

/// The false-conflict regression the tentpole exists to fix: two
/// overlapping writers whose `suchthat` ranges are provably disjoint
/// both scan the same heap, but neither reads a row the other writes.
/// Before ranged stamps the second committer aborted on the whole-heap
/// scan entry; now validation intersects the ranges and admits it.
#[test]
fn disjoint_ranged_writers_both_commit() {
    let db = stock_db();
    seed(&db, &[("low", 5), ("high", 50)]);

    let mut tx1 = db.begin();
    let mut tx2 = db.begin();
    tx1.execute("update s in stockitem suchthat (quantity < 10) set price = 1.0")
        .unwrap();
    tx2.execute("update s in stockitem suchthat (quantity > 20) set price = 2.0")
        .unwrap();

    tx1.commit().unwrap();
    tx2.commit()
        .expect("disjoint quantity ranges must not conflict");

    let snap = db.telemetry();
    assert!(
        snap.txn.narrowed_validations >= 1,
        "the second commit must pass via range intersection, got {}",
        snap.txn.narrowed_validations
    );
    assert!(
        snap.txn.ranged_scans >= 2,
        "both predicate scans should record ranges, got {}",
        snap.txn.ranged_scans
    );

    // Both writes landed: each writer hit exactly its own row.
    let prices: Vec<(i64, f64)> = db
        .transaction(|tx| {
            let rows = match tx.execute("forall s in stockitem by (quantity)")? {
                ode_core::oql::ExecResult::Rows(rows) => rows.rows,
                other => panic!("unexpected result: {other:?}"),
            };
            let mut out = Vec::new();
            for row in rows {
                let q = match tx.get(row[0], "quantity")? {
                    Value::Int(q) => q,
                    other => panic!("bad quantity: {other:?}"),
                };
                let p = match tx.get(row[0], "price")? {
                    Value::Float(p) => p,
                    other => panic!("bad price: {other:?}"),
                };
                out.push((q, p));
            }
            Ok(out)
        })
        .unwrap();
    assert_eq!(prices, vec![(5, 1.0), (50, 2.0)]);
}

/// Overlapping ranges are not disjoint: a reader whose predicate range
/// intersects a committed writer's range must still abort. tx2 writes
/// to a second cluster so its commit has ops to validate.
#[test]
fn overlapping_ranged_reader_still_conflicts() {
    let db = stock_db();
    db.define_from_source("class audit { string note; }")
        .unwrap();
    db.create_cluster("audit").unwrap();
    seed(&db, &[("low", 5), ("high", 50)]);

    let mut tx1 = db.begin();
    let mut tx2 = db.begin();
    // Reader range (3, ∞) overlaps writer range (-∞, 10) on [5, 10).
    tx2.execute("forall s in stockitem suchthat (quantity > 3)")
        .unwrap();
    tx2.execute(r#"pnew audit (note = "scanned")"#).unwrap();
    tx1.execute("update s in stockitem suchthat (quantity < 10) set price = 1.0")
        .unwrap();

    tx1.commit().unwrap();
    let err = tx2.commit().unwrap_err();
    assert!(
        matches!(err, OdeError::WriteConflict { .. }),
        "overlapping ranges must conflict, got: {err:?}"
    );
}

/// A scan with no provable range promises the whole extent: any newer
/// write to the heap — however narrow — invalidates it.
#[test]
fn full_scan_reader_conflicts_with_ranged_writer() {
    let db = stock_db();
    db.define_from_source("class audit { string note; }")
        .unwrap();
    db.create_cluster("audit").unwrap();
    seed(&db, &[("low", 5), ("high", 50)]);

    let mut tx1 = db.begin();
    let mut tx2 = db.begin();
    tx2.execute("forall s in stockitem").unwrap();
    tx2.execute(r#"pnew audit (note = "scanned")"#).unwrap();
    tx1.execute("update s in stockitem suchthat (quantity > 20) set price = 2.0")
        .unwrap();

    tx1.commit().unwrap();
    let err = tx2.commit().unwrap_err();
    assert!(
        matches!(err, OdeError::WriteConflict { .. }),
        "an unranged scan promises the whole heap, got: {err:?}"
    );
}

/// The soundness edge: a writer that *moves rows across the range
/// boundary* (assigning the predicate field itself) cannot be narrowed
/// away. The self-verifying write note detects that the final state
/// left the predicate range and demotes the heap to a whole-heap
/// stamp, so the ranged reader still conflicts.
#[test]
fn writer_moving_rows_into_reader_range_conflicts() {
    let db = stock_db();
    db.define_from_source("class audit { string note; }")
        .unwrap();
    db.create_cluster("audit").unwrap();
    seed(&db, &[("mover", 1), ("high", 50)]);

    let mut tx1 = db.begin();
    let mut tx2 = db.begin();
    // Reader believes nothing below 20 matters…
    tx2.execute("forall s in stockitem suchthat (quantity > 20)")
        .unwrap();
    tx2.execute(r#"pnew audit (note = "scanned")"#).unwrap();
    // …but the writer moves a row from quantity 1 into the reader's
    // range. Its suchthat range [1,1] is disjoint from (20, ∞) — a
    // naive range intersection would wrongly admit the reader.
    tx1.execute("update s in stockitem suchthat (quantity == 1) set quantity = 30")
        .unwrap();

    tx1.commit().unwrap();
    let err = tx2.commit().unwrap_err();
    assert!(
        matches!(err, OdeError::WriteConflict { .. }),
        "a writer assigning the range field must not be narrowed, got: {err:?}"
    );
}

/// Read-only proofs: statements with no write footprint are proven
/// read-only; anything that writes is not.
#[test]
fn read_only_proofs_classify_statements() {
    let db = stock_db();
    let ro = |stmt: &str| {
        db.statement_footprint(stmt)
            .unwrap()
            .unwrap_or_else(|| panic!("no footprint for {stmt:?}"))
            .read_only()
    };
    assert!(ro("forall s in stockitem suchthat (quantity > 3)"));
    assert!(ro("forall s in stockitem by (quantity)"));
    assert!(!ro(r#"pnew stockitem (name = "x")"#));
    assert!(!ro(
        "update s in stockitem suchthat (quantity > 3) set price = 1.0"
    ));
    assert!(!ro("delete s in stockitem suchthat (quantity > 3)"));

    let snap = db.telemetry();
    assert!(snap.analyze.footprints >= 5);
    assert!(snap.analyze.read_only_proofs >= 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness oracle: the statically predicted footprint is an
    /// over-approximation of what the runtime recorded. Every heap the
    /// transaction scanned and every object it read individually must
    /// lie in a cluster the footprint predicted as read; a ranged scan
    /// entry may only exist when the analyzer proved ranges.
    #[test]
    fn predicted_footprint_covers_observed(
        quantities in prop::collection::vec(0i64..40, 0..10),
        cmp_ix in 0usize..5,
        bound in 0i64..40,
        kind in 0usize..4,
    ) {
        let db = stock_db();
        db.transaction(|tx| {
            for (i, q) in quantities.iter().enumerate() {
                tx.execute(&format!(r#"pnew stockitem (name = "r{i}", quantity = {q})"#))?;
            }
            Ok(())
        })
        .unwrap();

        let cmp = ["<", "<=", "==", ">=", ">"][cmp_ix];
        let stmt = match kind {
            0 => format!("forall s in stockitem suchthat (quantity {cmp} {bound})"),
            1 => "forall s in stockitem".to_string(),
            2 => format!("update s in stockitem suchthat (quantity {cmp} {bound}) set price = 9.0"),
            _ => format!("delete s in stockitem suchthat (quantity {cmp} {bound})"),
        };

        let fp = db.statement_footprint(&stmt).unwrap().expect("statement is analyzable");
        prop_assert_eq!(fp.read_only(), kind <= 1, "{}", stmt);

        let (scans, read_oids) = db
            .transaction(|tx| {
                tx.execute(&stmt)?;
                Ok((tx.observed_scans(), tx.observed_read_oids()))
            })
            .unwrap();

        let mut predicted: HashSet<u32> = HashSet::new();
        for acc in fp.reads.iter().chain(fp.writes.iter()) {
            predicted.extend(db.extent_heap_ids(&acc.class, acc.deep).unwrap());
        }
        let analyzer_has_ranges = fp.reads.iter().any(|a| !a.ranges.is_empty());

        for (heap, ranged) in scans {
            prop_assert!(
                predicted.contains(&heap),
                "runtime scanned heap {heap} the analyzer did not predict for {stmt:?}"
            );
            if ranged {
                prop_assert!(
                    analyzer_has_ranges,
                    "runtime recorded a ranged scan the analyzer did not prove for {stmt:?}"
                );
            }
        }
        for oid in read_oids {
            prop_assert!(
                predicted.contains(&oid.cluster),
                "runtime read cluster {} the analyzer did not predict for {stmt:?}",
                oid.cluster
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Scan-entry bracketing around streaming extents: hints and widening must
// track the *iteration*, not a pre-collected vec (DESIGN.md §14).

use ode_core::prelude::ReadContext;

/// A complete hinted stream records a narrowed (ranged) entry; an early
/// `break` from the consumer must widen it to a whole-heap entry — a
/// partial iteration's outcome depends on enumeration order, so the
/// ranges no longer bound what was observed.
#[test]
fn early_break_widens_scan_entries_to_whole_heap() {
    let db = stock_db();
    seed(&db, &[("a", 1), ("b", 2), ("c", 3)]);

    let ranges =
        ode_model::extract_field_ranges(&ode_model::parse_expr("quantity < 2").unwrap(), None);
    assert!(!ranges.is_empty(), "predicate must pin a range");

    // Full iteration under a hint → the entry stays narrowed.
    {
        let tx = db.begin();
        tx.scan_hint(ranges.clone());
        tx.for_each_extent("stockitem", true, &mut |_, _| Ok(true))
            .unwrap();
        tx.scan_hint_clear();
        let scans = tx.observed_scans();
        assert_eq!(scans.len(), 1);
        assert!(scans[0].1, "complete hinted scan should record ranges");
    }

    // Early break under the same hint → whole-heap (unranged) entry.
    {
        let tx = db.begin();
        tx.scan_hint(ranges);
        tx.for_each_extent("stockitem", true, &mut |_, _| Ok(false))
            .unwrap();
        tx.scan_hint_clear();
        let scans = tx.observed_scans();
        assert_eq!(scans.len(), 1);
        assert!(
            !scans[0].1,
            "an early-stopped scan must widen to a whole-heap entry"
        );
    }
}

/// A predicate that errors mid-stream aborts the enumeration; the heaps
/// streamed so far must be widened, and the statement-scoped range hint
/// must not leak into the *next* scan (the RAII guard regression).
#[test]
fn mid_stream_eval_error_widens_and_clears_the_hint() {
    let db = stock_db();
    db.define_from_source("class audit { string note; }")
        .unwrap();
    db.create_cluster("audit").unwrap();
    seed(&db, &[("a", 1), ("b", 2)]);
    db.transaction(|tx| {
        tx.execute(r#"pnew audit (note = "x")"#)?;
        Ok(())
    })
    .unwrap();

    let mut tx = db.begin();
    // `quantity < 2` proves a range; the arithmetic on `name` (a string)
    // errors once a row survives the first conjunct.
    let err = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("quantity < 2 && name + 1 == 2")
        .unwrap()
        .count();
    assert!(err.is_err(), "string arithmetic must fail evaluation");
    let scans = tx.observed_scans();
    assert_eq!(scans.len(), 1);
    assert!(
        !scans[0].1,
        "an errored scan must be widened to a whole-heap entry"
    );

    // The failed statement's hint must not mislabel this unrelated,
    // unhinted scan as ranged.
    tx.forall("audit").unwrap().count().unwrap();
    let audit_heap = db.extent_heap_ids("audit", false).unwrap()[0];
    let scans = tx.observed_scans();
    let audit_entry = scans.iter().find(|&&(h, _)| h == audit_heap).unwrap();
    assert!(
        !audit_entry.1,
        "stale range hint leaked into the next statement's scan entry"
    );
    tx.abort();
}

/// Extent scans borrow write-set states in place; only the index-probe
/// path clones overlay entries (into its selectivity-sized result). The
/// `query.overlay_clones` counter proves scans stopped copying the write
/// set on every pass.
#[test]
fn extent_scans_do_not_clone_the_write_set() {
    let db = stock_db();
    seed(&db, &[("a", 1), ("b", 2)]);

    let mut tx = db.begin();
    for i in 0..50 {
        tx.execute(&format!(
            r#"pnew stockitem (name = "w{i}", quantity = {i})"#
        ))
        .unwrap();
    }
    let before = db.telemetry().query.overlay_clones;
    // Ten full scans over a 50-object write set: the old overlay() path
    // would have cloned 500+ states; the streaming path clones none.
    for _ in 0..10 {
        assert_eq!(tx.forall("stockitem").unwrap().count().unwrap(), 52);
    }
    assert_eq!(
        db.telemetry().query.overlay_clones,
        before,
        "extent scans must not clone overlay states"
    );
    tx.abort();

    // The index-probe fold-in is the one remaining clone site.
    db.create_index("stockitem", "quantity").unwrap();
    let mut tx = db.begin();
    tx.execute(r#"pnew stockitem (name = "probe-me", quantity = 1)"#)
        .unwrap();
    let n = tx
        .forall("stockitem")
        .unwrap()
        .suchthat("quantity == 1")
        .unwrap()
        .count()
        .unwrap();
    assert_eq!(n, 2); // committed "a" + overlay "probe-me"
    assert!(
        db.telemetry().query.overlay_clones > before,
        "index probes still fold (and clone) matching overlay entries"
    );
    tx.abort();
}
